#!/usr/bin/env python3
"""Quickstart: the two headline systems through one client API.

The unified client API (:mod:`repro.api`) opens a *store* from a backend
spec, declares the consistency level each *session* needs, and exposes one
operation vocabulary everywhere — the same application code runs against
simulated Spanner-RSS, simulated Gryff-RSC, or a live cluster
(``open_store("live:cluster.json")``).

1. Run a read-write transaction and a read-only transaction against
   simulated Spanner-RSS and confirm the captured history satisfies the
   declared level (regular sequential serializability).
2. Run reads, writes, and an rmw against simulated Gryff-RSC and confirm
   regular sequential consistency — same surface, different backend.
3. Carry a session-context token from one session to another (the portable
   generalization of Spanner's export/import-context).

Usage:  python examples/quickstart.py
"""

from repro.api import ConsistencyLevel, open_store


def spanner_demo() -> None:
    print("== Spanner-RSS quickstart ==")
    store = open_store("sim-spanner")                  # Spanner-RSS
    alice = store.session("CA", name="alice", level=ConsistencyLevel.RSS)
    bob = store.session("VA", name="bob", level=ConsistencyLevel.RSS)

    def workload():
        # Alice adds a photo: a read-write transaction across two keys.
        reads, writes, commit_ts = yield from alice.txn(
            ["album:alice"],
            lambda values: {
                "album:alice": (values["album:alice"] or ()) + ("p1",),
                "photo:p1": "photo-bytes",
            },
        )
        print(f"  alice committed at ts={commit_ts:.1f}: wrote {sorted(writes)}")
        # Alice texts Bob a session token out of band; Bob resumes her
        # causal context and is guaranteed to observe her write.
        bob.resume(alice.session_token())
        album = yield from bob.read_only(["album:alice", "photo:p1"])
        print(f"  bob read album={album['album:alice']} photo={album['photo:p1']!r}")

    store.spawn(workload())
    store.run()
    result = store.check_consistency()
    print(f"  history has {len(store.history)} transactions; "
          f"RSS check: {'PASS' if result.satisfied else 'FAIL ' + result.reason}")
    print(f"  RO latency samples (ms): "
          f"{[round(s, 1) for s in store.recorder.samples('ro')]}")
    print()


def gryff_demo() -> None:
    print("== Gryff-RSC quickstart ==")
    store = open_store("sim-gryff")                    # Gryff-RSC
    writer = store.session("CA", name="writer", level="rsc")
    reader = store.session("JP", name="reader")        # defaults to native RSC

    def workload():
        yield from writer.write("greeting", "hello from CA")
        value = yield from reader.read("greeting")
        print(f"  reader in JP observed: {value!r}")
        old, new = yield from writer.rmw("counter", mode="increment", amount=5)
        print(f"  rmw moved counter {old} -> {new}")

    store.spawn(workload())
    store.run()
    result = store.check_consistency()
    print(f"  history has {len(store.history)} operations; "
          f"RSC check: {'PASS' if result.satisfied else 'FAIL ' + result.reason}")
    print()


if __name__ == "__main__":
    spanner_demo()
    gryff_demo()
