#!/usr/bin/env python3
"""Quickstart: the two headline systems in a few dozen lines.

1. Run a read-write transaction and a read-only transaction against a
   simulated Spanner-RSS deployment and confirm the deployment satisfies
   regular sequential serializability.
2. Run reads and writes against a simulated Gryff-RSC deployment and confirm
   it satisfies regular sequential consistency.

Usage:  python examples/quickstart.py
"""

from repro.gryff import GryffCluster, GryffConfig, GryffVariant
from repro.spanner import SpannerCluster, SpannerConfig, Variant


def spanner_demo() -> None:
    print("== Spanner-RSS quickstart ==")
    cluster = SpannerCluster(SpannerConfig(variant=Variant.SPANNER_RSS))
    alice = cluster.new_client("CA", name="alice")
    bob = cluster.new_client("VA", name="bob")

    def workload():
        # Alice adds a photo: a read-write transaction across two keys.
        reads, writes, commit_ts = yield from alice.read_write_transaction(
            ["album:alice"],
            lambda values: {
                "album:alice": (values["album:alice"] or ()) + ("p1",),
                "photo:p1": "photo-bytes",
            },
        )
        print(f"  alice committed at ts={commit_ts:.1f}: wrote {sorted(writes)}")
        # Bob views the album with a read-only transaction.
        album = yield from bob.read_only_transaction(["album:alice", "photo:p1"])
        print(f"  bob read album={album['album:alice']} photo={album['photo:p1']!r}")

    cluster.spawn(workload())
    cluster.run()
    result = cluster.check_consistency()
    print(f"  history has {len(cluster.history)} transactions; "
          f"RSS check: {'PASS' if result.satisfied else 'FAIL ' + result.reason}")
    print(f"  RO latency samples (ms): "
          f"{[round(s, 1) for s in cluster.recorder.samples('ro')]}")
    print()


def gryff_demo() -> None:
    print("== Gryff-RSC quickstart ==")
    cluster = GryffCluster(GryffConfig(variant=GryffVariant.GRYFF_RSC))
    writer = cluster.new_client("CA", name="writer")
    reader = cluster.new_client("JP", name="reader")

    def workload():
        yield from writer.write("greeting", "hello from CA")
        value = yield from reader.read("greeting")
        print(f"  reader in JP observed: {value!r}")
        old, new = yield from writer.rmw("counter", mode="increment", amount=5)
        print(f"  rmw moved counter {old} -> {new}")

    cluster.spawn(workload())
    cluster.run()
    result = cluster.check_consistency()
    print(f"  history has {len(cluster.history)} operations; "
          f"RSC check: {'PASS' if result.satisfied else 'FAIL ' + result.reason}")
    print()


if __name__ == "__main__":
    spanner_demo()
    gryff_demo()
