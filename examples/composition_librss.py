#!/usr/bin/env python3
"""Composing RSS services with libRSS (§4.1, Appendix C.4).

Two services — a Spanner-RSS key-value store and a messaging service — are
used by a Web server and an asynchronous worker.  Without a real-time fence
between the key-value write and the enqueue, the worker could dequeue a job
and still read stale data; libRSS inserts the fence automatically when the
Web server switches services, so invariant I2 holds.

The example runs the same interaction twice: once through libRSS (fenced) and
once bypassing it (unfenced), and reports how often the worker observed
missing photo data in each mode.

Usage:  python examples/composition_librss.py
"""

from repro.api import open_store
from repro.apps import MessageQueueClient, MessageQueueServer


def run(fenced: bool, uploads: int = 5) -> int:
    store = open_store("sim-spanner")                  # Spanner-RSS
    MessageQueueServer(store.env, store.network, name="mq", site="CA")
    web_kv = store.session("CA", name="web-kv")
    web_mq = MessageQueueClient(store.env, store.network, name="web-mq", site="CA")
    worker_kv = store.session("VA", name="worker-kv")
    worker_mq = MessageQueueClient(store.env, store.network, name="worker-mq",
                                   site="VA")
    missing = []

    def web_server():
        for index in range(uploads):
            photo = f"photo:{index}"
            yield from web_kv.write(photo, f"bytes-{photo}")
            if fenced:
                # libRSS would invoke this fence automatically on the service
                # switch; we call it directly to make the mechanism explicit.
                yield from web_kv.fence()
            yield from web_mq.enqueue("jobs", photo)

    def worker():
        done = 0
        while done < uploads:
            photo = yield from worker_mq.dequeue("jobs")
            if photo is None:
                yield store.env.timeout(20)
                continue
            values = yield from worker_kv.read_only([photo])
            if values[photo] is None:
                missing.append(photo)
            done += 1

    store.spawn(web_server())
    store.spawn(worker())
    store.run()
    return len(missing)


def main() -> None:
    fenced_missing = run(fenced=True)
    unfenced_missing = run(fenced=False)
    print("Composition of Spanner-RSS + messaging service (invariant I2):")
    print(f"  with real-time fences   : {fenced_missing} missing photo reads")
    print(f"  without real-time fences: {unfenced_missing} missing photo reads "
          f"(stale reads are possible, though they may not occur in every run)")
    print()
    print("With fences the composition guarantees RSS globally (Appendix C.4),")
    print("so the worker can never observe a dequeued job whose photo is missing.")


if __name__ == "__main__":
    main()
