#!/usr/bin/env python3
"""The photo-sharing application of §2.2 running on Spanner-RSS + messaging.

Three application servers (Alice's, Bob's, and a background worker) interact
with a Spanner-RSS key-value store and a messaging service.  libRSS inserts
real-time fences whenever a process switches services, which is what keeps
invariant I2 (a worker never dequeues a photo whose data is missing) intact
across the two services.

Usage:  python examples/photo_sharing_app.py
"""

from repro.api import open_store
from repro.apps import PhotoSharingApp, album_photos_all_present, worker_jobs_all_resolvable


def main() -> None:
    store = open_store("sim-spanner")                  # Spanner-RSS
    app = PhotoSharingApp(store)
    alice = app.new_web_server("CA", name="alice-web")
    bob = app.new_web_server("VA", name="bob-web")
    worker = app.new_web_server("IR", name="worker")

    def alice_uploads():
        for index in range(3):
            photo_id = f"p{index + 1}"
            yield from app.add_photo(alice, "alice", photo_id, f"bytes-of-{photo_id}")
            print(f"[{store.env.now:8.1f} ms] alice uploaded {photo_id}")

    def worker_loop():
        processed = 0
        while processed < 3:
            result = yield from app.process_next_job(worker)
            if result is None:
                yield store.env.timeout(50)
                continue
            photo_id, data = result
            processed += 1
            print(f"[{store.env.now:8.1f} ms] worker thumbnailed {photo_id} "
                  f"({len(data)} bytes)")

    def bob_views(delay):
        yield store.env.timeout(delay)
        view = yield from app.view_album(bob, "alice")
        print(f"[{store.env.now:8.1f} ms] bob sees album with "
              f"{sorted(view)} (all data present: "
              f"{all(d is not None for d in view.values())})")

    store.spawn(alice_uploads())
    store.spawn(worker_loop())
    store.spawn(bob_views(1500))
    store.spawn(bob_views(4000))
    store.run()

    print()
    print(f"I1 (albums reference only photos with data): "
          f"{'holds' if album_photos_all_present(app.album_views) else 'VIOLATED'}")
    print(f"I2 (worker jobs always resolve to photo data): "
          f"{'holds' if worker_jobs_all_resolvable(app.job_results) else 'VIOLATED'}")
    print(f"libRSS issued {app.librss.fences_issued()} real-time fences "
          f"across {len(app.librss.registered_services)} services")
    result = store.check_consistency()
    print(f"Spanner-RSS history satisfies RSS: {result.satisfied}")


if __name__ == "__main__":
    main()
