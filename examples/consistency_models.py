#!/usr/bin/env python3
"""Explore the consistency-model checkers on the paper's example executions.

Prints, for every Appendix A example execution (Figures 2 and 9-16), which
models admit it, and demonstrates the Lemma 1 transformation on Figure 2.

Usage:  python examples/consistency_models.py
"""

from repro.bench.appendix_a import appendix_a_report
from repro.core.examples import figure_2
from repro.core.transform import transform_to_strict
from repro.core.checkers import check_linearizability, check_rsc


def main() -> None:
    report = appendix_a_report()
    print(report["text"])
    print()
    if report["mismatches"]:
        print(f"MISMATCHES vs the paper: {report['mismatches']}")
    else:
        print("Every checker verdict matches the paper.")

    print()
    print("Lemma 1 transformation on the Figure 2 execution:")
    example = figure_2()
    print(example.history.describe())
    print(f"  linearizable? {bool(check_linearizability(example.history, example.spec))}"
          f"   RSC? {bool(check_rsc(example.history, example.spec))}")
    transformed = transform_to_strict(example.history, spec=example.spec)
    print("after transformation (operations rearranged into the witness order,")
    print("per-process order and results unchanged):")
    print(transformed.describe())
    print(f"  linearizable? {bool(check_linearizability(transformed, example.spec))}")


if __name__ == "__main__":
    main()
