#!/usr/bin/env python3
"""Figure 5 in miniature: Spanner vs Spanner-RSS read-only tail latency.

Runs the Retwis workload at a configurable Zipf skew against both variants
and prints the tail-latency comparison rows of Figure 5.

Usage:  python examples/spanner_tail_latency.py [skew] [duration_ms]
"""

import sys

from repro.bench.reporting import format_table
from repro.bench.spanner_experiments import figure5_experiment


def main() -> None:
    skew = float(sys.argv[1]) if len(sys.argv) > 1 else 0.7
    duration_ms = float(sys.argv[2]) if len(sys.argv) > 2 else 20_000.0
    print(f"Running Retwis at Zipf skew {skew} for {duration_ms:.0f} simulated ms "
          f"against Spanner and Spanner-RSS ...")
    outcome = figure5_experiment(
        skew, duration_ms=duration_ms, clients_per_site=6,
        session_arrival_rate_per_sec=2.0, num_keys=2_000, seed=3,
    )
    print(format_table(
        ["percentile", "Spanner (ms)", "Spanner-RSS (ms)", "reduction (%)"],
        [[f"p{row['fraction'] * 100:g}", row["spanner_ms"], row["spanner_rss_ms"],
          row["reduction_pct"]] for row in outcome["rows"]],
        title=f"Read-only transaction latency (Retwis, skew {skew})",
    ))
    spanner = outcome["results"]["spanner"]
    rss = outcome["results"]["spanner_rss"]
    print()
    print(f"Spanner    : {spanner['committed']} committed, "
          f"{spanner['blocked_fraction'] * 100:.1f}% of RO shard requests blocked")
    print(f"Spanner-RSS: {rss['committed']} committed, "
          f"{rss['blocked_fraction'] * 100:.1f}% of RO shard requests blocked, "
          f"{sum(s['ro_skipped_prepared'] for s in rss['shard_stats'].values())} "
          f"prepared transactions skipped")


if __name__ == "__main__":
    main()
