#!/usr/bin/env python3
"""Figure 7 in miniature: Gryff vs Gryff-RSC p99 read latency.

Sweeps the YCSB write ratio at a configurable conflict rate and prints the
p99 read latency of both variants.

Usage:  python examples/gryff_read_latency.py [conflict_rate] [duration_ms]
"""

import sys

from repro.bench.gryff_experiments import figure7_experiment
from repro.bench.reporting import format_table


def main() -> None:
    conflict_rate = float(sys.argv[1]) if len(sys.argv) > 1 else 0.10
    duration_ms = float(sys.argv[2]) if len(sys.argv) > 2 else 20_000.0
    print(f"Running YCSB with {conflict_rate * 100:.0f}% conflicts for "
          f"{duration_ms:.0f} simulated ms ...")
    rows = figure7_experiment(
        conflict_rate, write_ratios=(0.1, 0.3, 0.5, 0.7, 0.9),
        duration_ms=duration_ms, seed=4,
    )
    print(format_table(
        ["write ratio", "Gryff p99 (ms)", "Gryff-RSC p99 (ms)", "reduction (%)",
         "Gryff slow reads"],
        [[row["write_ratio"], row["gryff_p99_ms"], row["gryff_rsc_p99_ms"],
          row["reduction_pct"],
          f"{row['gryff_slow_read_fraction'] * 100:.1f}%"] for row in rows],
        title=f"p99 read latency (YCSB, {conflict_rate * 100:.0f}% conflicts)",
    ))
    print()
    print("Gryff-RSC reads always finish in one wide-area round trip, so its "
          "p99 stays at the quorum RTT while Gryff's grows with conflicts.")


if __name__ == "__main__":
    main()
