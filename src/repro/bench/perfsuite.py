"""Performance suite for the checker and simulation hot paths.

The suite measures three layers at several history sizes:

* **Constraint-edge derivation** — the sweep-line engine in
  :mod:`repro.core.orders` versus the naive quadratic reference loops
  (the seed implementation, kept as ``naive_*`` functions for exactly this
  comparison).
* **Serialization search** — exhaustive ``check_rss`` throughput on small
  synthetic histories (exercises the dense-int / memoized search).
* **Simulation kernel** — raw events/sec of the discrete-event engine on a
  timeout-ping workload and a store (mailbox) handoff workload.

``run_perf_suite`` returns a JSON-serializable payload;
``python -m repro perf`` and ``benchmarks/bench_perf_scaling.py`` are the
front ends.  The synthetic-history generator is deterministic so numbers are
comparable across commits (the committed seed baseline in
``benchmarks/BENCH_seed_baseline.json`` was produced by this same suite at
the seed commit).
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.bench.runner import ParallelRunner, default_jobs
from repro.core import orders as _orders
from repro.core.history import History
from repro.core.events import Operation
from repro.core.orders import naive_real_time_edges, naive_regular_constraint_edges
from repro.core.relations import CausalOrder, regular_constraint_edges
from repro.sim.engine import Environment, Store

__all__ = [
    "PERF_SCALES",
    "SEED_BASELINE_PATH",
    "synthetic_history",
    "bench_constraint_derivation",
    "bench_serialization_search",
    "bench_sim_kernel",
    "bench_metrics_overhead",
    "bench_streaming_checker",
    "bench_sweep_wall_clock",
    "bench_wire_codec",
    "bench_live_open_loop",
    "bench_fleet_routing",
    "run_perf_suite",
    "attach_baseline",
    "perf_report_rows",
]

#: The committed perf payload measured by this same suite at the seed commit
#: (quadratic edge derivation, dict-backed event kernel).
SEED_BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))),
    "benchmarks", "BENCH_seed_baseline.json",
)

#: History sizes exercised per scale.
PERF_SCALES: Dict[str, Dict[str, Any]] = {
    "quick": {
        "history_sizes": (200, 500, 1000),
        "sim_rounds": 200,
        "sim_procs": 100,
        "store_items": 5000,
        "search_checks": 30,
        "sweep_client_counts": (4, 8, 16),
        "sweep_duration_ms": 600.0,
        "streaming_sizes": (10_000, 100_000),
        "metrics_ops_per_client": 40,
        "metrics_clients": 4,
        "metrics_repeats": 2,
        "wire_messages": 2_000,
        "wire_batch": 64,
        "live_rate_per_s": 1_200.0,
        "live_duration_ms": 1_200.0,
        "live_clients": 8,
        "fleet_lookup_keys": 50_000,
        "fleet_ops_per_client": 40,
        "fleet_clients": 4,
        "fleet_repeats": 2,
        "fleet_migrations": 4,
        "fleet_migration_duration_ms": 1_500.0,
    },
    "full": {
        "history_sizes": (200, 500, 1000, 2000, 5000),
        "sim_rounds": 500,
        "sim_procs": 200,
        "store_items": 20000,
        "search_checks": 100,
        "sweep_client_counts": (4, 8, 16, 32),
        "sweep_duration_ms": 2_000.0,
        "streaming_sizes": (10_000, 100_000),
        "metrics_ops_per_client": 80,
        "metrics_clients": 4,
        "metrics_repeats": 3,
        "wire_messages": 8_000,
        "wire_batch": 64,
        "live_rate_per_s": 2_500.0,
        "live_duration_ms": 4_000.0,
        "live_clients": 16,
        "fleet_lookup_keys": 200_000,
        "fleet_ops_per_client": 80,
        "fleet_clients": 4,
        "fleet_repeats": 3,
        "fleet_migrations": 6,
        "fleet_migration_duration_ms": 3_000.0,
    },
}


# --------------------------------------------------------------------------- #
# Deterministic synthetic histories
# --------------------------------------------------------------------------- #
def synthetic_history(
    n_ops: int,
    n_processes: int = 8,
    n_keys: int = 32,
    write_ratio: float = 0.4,
    seed: int = 0,
    pending_mutations: int = 2,
) -> History:
    """A well-formed history with ``n_ops`` operations.

    Each process issues sequential operations with random durations and
    gaps; writes use globally unique values so reads-from is unambiguous.
    Reads observe the most recent write to their key (linearizable oracle),
    so the history is admitted by every model — which keeps the exhaustive
    checkers out of pathological backtracking while still exercising the
    edge-derivation layers fully.
    """
    rng = random.Random(seed)
    # Sequential intervals per process, then a global sweep by invocation time
    # applying writes atomically at invocation (a linearizable oracle).
    intervals = []
    clock = {f"P{i}": 0.0 for i in range(n_processes)}
    for _ in range(n_ops):
        process = f"P{rng.randrange(n_processes)}"
        start = clock[process] + rng.uniform(0.0, 3.0)
        end = start + rng.uniform(0.5, 4.0)
        intervals.append((start, end, process))
        clock[process] = end
    intervals.sort(key=lambda item: item[0])

    last_index_of = {}
    for index, (_, _, process) in enumerate(intervals):
        last_index_of[process] = index
    pending_indices = set(sorted(last_index_of.values(),
                                 reverse=True)[:pending_mutations])

    history = History()
    state: Dict[Any, Any] = {}
    counter = 0
    for index, (start, end, process) in enumerate(intervals):
        key = f"k{rng.randrange(n_keys)}"
        if index in pending_indices:
            counter += 1
            op = Operation.write(process, key, f"v{counter}", invoked_at=start,
                                 responded_at=None)
        elif rng.random() < write_ratio:
            counter += 1
            value = f"v{counter}"
            state[key] = value
            op = Operation.write(process, key, value, invoked_at=start,
                                 responded_at=end)
        else:
            op = Operation.read(process, key, state.get(key),
                                invoked_at=start, responded_at=end)
        history.add(op)
    return history


def _time(fn: Callable[[], Any], repeats: int = 3) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds.

    Floored at 1 ns so ratios computed from the result are always defined,
    even on a coarse-resolution timer.
    """
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return max(best, 1e-9)


# --------------------------------------------------------------------------- #
# Benchmarks
# --------------------------------------------------------------------------- #
def bench_constraint_derivation(history_sizes: Sequence[int],
                                seed: int = 7) -> List[Dict[str, Any]]:
    """Naive vs sweep-line derivation of the constraint edge sets."""
    rows = []
    for size in history_sizes:
        history = synthetic_history(size, seed=seed)
        ops = history.operations()
        repeats = 3 if size <= 500 else 1
        naive_rt_s = _time(lambda: naive_real_time_edges(history, ops), repeats)
        naive_reg_s = _time(lambda: naive_regular_constraint_edges(history), repeats)
        fast_rt_s = _time(lambda: _orders.real_time_edges(history, ops), repeats)
        fast_reg_s = _time(lambda: regular_constraint_edges(history), repeats)
        causal_s = _time(lambda: CausalOrder(history), repeats)
        rows.append({
            "ops": size,
            "naive_real_time_s": naive_rt_s,
            "naive_regular_s": naive_reg_s,
            "naive_real_time_ops_per_s": size / naive_rt_s,
            "fast_real_time_s": fast_rt_s,
            "fast_regular_s": fast_reg_s,
            "causal_build_s": causal_s,
            "fast_real_time_ops_per_s": size / fast_rt_s,
            "real_time_speedup": naive_rt_s / fast_rt_s,
            "regular_speedup": naive_reg_s / fast_reg_s,
        })
    return rows


def bench_serialization_search(n_checks: int, seed: int = 11) -> Dict[str, Any]:
    """Exhaustive check_rss throughput over small synthetic histories."""
    from repro.core.checkers import check_rss

    histories = [
        synthetic_history(10, n_processes=3, n_keys=3, seed=seed + i,
                          pending_mutations=1)
        for i in range(n_checks)
    ]
    for history in histories:  # warm caches outside the timed region
        history.operations()

    def run() -> None:
        for history in histories:
            result = check_rss(history)
            assert result.satisfied

    elapsed = _time(run, repeats=2)
    return {
        "checks": n_checks,
        "total_s": elapsed,
        "checks_per_s": n_checks / elapsed,
    }


def bench_sim_kernel(n_procs: int, n_rounds: int, store_items: int
                     ) -> Dict[str, Any]:
    """Raw kernel throughput: timeout ping and store handoff workloads."""
    counts: Dict[str, int] = {}

    def timeout_workload() -> None:
        env = Environment()

        def worker(env: Environment, delay: float):
            for _ in range(n_rounds):
                yield env.timeout(delay)

        for i in range(n_procs):
            env.process(worker(env, (i % 7) + 1))
        env.run()
        counts["timeout"] = env.events_scheduled

    def store_workload() -> None:
        env = Environment()
        store = Store(env)

        def producer(env: Environment):
            for i in range(store_items):
                store.put(i)
                yield env.timeout(1)

        def consumer(env: Environment):
            for _ in range(store_items):
                yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        counts["store"] = env.events_scheduled

    timeout_s = _time(timeout_workload, repeats=3)
    timeout_events = counts["timeout"]
    store_s = _time(store_workload, repeats=3)
    store_events = counts["store"]
    return {
        "timeout_events": timeout_events,
        "timeout_s": timeout_s,
        "timeout_events_per_s": timeout_events / timeout_s,
        "store_events": store_events,
        "store_s": store_s,
        "store_events_per_s": store_events / store_s,
        "events_per_s": (timeout_events + store_events) / (timeout_s + store_s),
    }


def _invocation_witness(history: History) -> List[Operation]:
    """The linearizable-oracle witness of a synthetic history: operations in
    invocation order (the generator applies writes at invocation, so this
    order replays legally and respects every RSC constraint)."""
    return sorted((op for op in history if op.is_complete),
                  key=lambda op: (op.invoked_at, op.op_id))


def _traced_peak_mb(fn: Callable[[], Any]) -> float:
    """Peak traced Python heap (MB) allocated while running ``fn``."""
    import tracemalloc

    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1e6


def bench_streaming_checker(sizes: Sequence[int] = (10_000, 100_000),
                            min_epoch_ops: int = 64,
                            seed: int = 23) -> List[Dict[str, Any]]:
    """Streaming (epoch-windowed) vs batch witness checking.

    Both sides validate the same witness construction on the same synthetic
    history (model: RSC).  Wall time is measured without tracing; the
    ``*_peak_mb`` columns are the peak *traced Python heap allocated by the
    check itself* in a second, tracemalloc-instrumented pass — the shared
    input history is excluded from both sides, so the columns compare the
    checkers' working sets: whole-history structures for batch, one epoch
    plus the carried frontier state for streaming.
    """
    from repro.core.checkers.streaming import (
        StreamingWitnessChecker,
        history_events,
        replay_events,
    )
    from repro.core.checkers.witness import check_with_witness
    from repro.core.specification import RegisterSpec

    rows = []
    for size in sizes:
        history = synthetic_history(size, seed=seed, pending_mutations=0)
        # Events are prepared outside the measured region: a live deployment
        # streams them from the wire/trace, so materializing them is not
        # part of the checker's working set.
        events = history_events(history)

        def run_batch() -> None:
            result = check_with_witness(history, _invocation_witness(history),
                                        model="rsc", spec=RegisterSpec())
            assert result.satisfied, result.reason

        report_box: Dict[str, Any] = {}

        def run_streaming() -> None:
            checker = StreamingWitnessChecker(
                _invocation_witness, model="rsc", spec=RegisterSpec(),
                min_epoch_ops=min_epoch_ops)
            report = replay_events(events, checker)
            assert report.satisfied, report.first_violation
            report_box["report"] = report

        batch_s = _time(run_batch, repeats=1)
        stream_s = _time(run_streaming, repeats=1)
        batch_peak_mb = _traced_peak_mb(run_batch)
        stream_peak_mb = _traced_peak_mb(run_streaming)
        report = report_box["report"]
        rows.append({
            "ops": size,
            "min_epoch_ops": min_epoch_ops,
            "epochs": report.epochs,
            "max_segment_ops": report.max_segment_ops,
            "batch_s": batch_s,
            "stream_s": stream_s,
            "batch_ops_per_s": size / batch_s,
            "stream_ops_per_s": size / stream_s,
            "batch_peak_mb": batch_peak_mb,
            "stream_peak_mb": stream_peak_mb,
            "peak_mb_ratio": stream_peak_mb / max(batch_peak_mb, 1e-9),
        })
    return rows


def bench_metrics_overhead(ops_per_client: int = 40, num_clients: int = 4,
                           repeats: int = 2, seed: int = 31) -> Dict[str, Any]:
    """Live Gryff ops/s with the metrics registry detached vs attached.

    Runs the same fixed-op closed-loop load (3 in-process replicas, real
    asyncio TCP) twice per repeat — once with ``metrics=None`` everywhere
    (the default, uninstrumented path) and once with one
    :class:`~repro.obs.MetricsRegistry` instrumenting the server process
    *and* the load's client transport — and reports the best throughput of
    each side plus their ratio.  The instrumented side also renders the
    registry once per run, so the scrape cost is inside the measurement.

    The numbers are honest live-loop throughputs on whatever machine runs
    the suite: the loop is I/O-bound, so the ratio hovers around 1.0 and is
    only loosely bounded in CI (see ``benchmarks/bench_perf_scaling.py``).
    """
    import asyncio

    from repro.net.cluster import LiveProcess
    from repro.net.load import run_load
    from repro.net.spec import ClusterSpec

    async def one_run(registry) -> float:
        spec = ClusterSpec.gryff(num_replicas=3, base_port=0)
        server = LiveProcess(spec, metrics=registry)
        await server.start()
        try:
            summary = await run_load(
                spec, num_clients=num_clients, duration_ms=None,
                ops_per_client=ops_per_client, write_ratio=0.5,
                conflict_rate=0.2, seed=seed, metrics=registry)
        finally:
            await server.stop()
        if registry is not None:
            registry.render()
        assert summary["ops"] == num_clients * ops_per_client
        return summary["throughput_ops_per_s"]

    def best(with_registry: bool) -> float:
        top = 0.0
        for _ in range(repeats):
            if with_registry:
                from repro.obs.registry import MetricsRegistry

                registry = MetricsRegistry()
            else:
                registry = None
            top = max(top, asyncio.run(one_run(registry)))
        return top

    off = best(False)
    on = best(True)
    return {
        "ops": num_clients * ops_per_client,
        "clients": num_clients,
        "repeats": repeats,
        "registry_off_ops_per_s": off,
        "registry_on_ops_per_s": on,
        "throughput_ratio": on / max(off, 1e-9),
    }


def _wire_sample_messages(count: int, seed: int = 13) -> List[Any]:
    """Deterministic messages shaped like live Gryff/Spanner RPC traffic.

    The mix mirrors what a YCSB run puts on the wire: small read requests,
    replies carrying carstamps, write rounds with dependency lists, and the
    occasional larger Spanner-style prepare with a key/value map — so the
    codec comparison reflects real frame contents, not toy payloads.
    """
    from repro.sim.network import Message

    rng = random.Random(seed)
    replicas = ["replica1", "replica2", "replica3"]
    clients = [f"client{i}@CA" for i in range(1, 5)]
    messages: List[Any] = []
    for index in range(count):
        key = f"user:{rng.randrange(1000):04d}"
        carstamp = [rng.randrange(8), rng.randrange(64), rng.choice(replicas)]
        shape = index % 4
        if shape == 0:
            kind, payload = "read1", {
                "key": key, "op_id": index, "client": rng.choice(clients)}
        elif shape == 1:
            kind, payload = "read1-reply", {
                "key": key, "op_id": index, "value": f"v-{index:08d}",
                "carstamp": carstamp}
        elif shape == 2:
            kind, payload = "write2", {
                "key": key, "op_id": index, "value": f"v-{index:08d}",
                "carstamp": carstamp,
                "deps": [[rng.randrange(8), rng.randrange(64),
                          rng.choice(replicas)] for _ in range(2)]}
        else:
            kind, payload = "prepare", {
                "txn_id": index, "coordinator": rng.choice(replicas),
                "writes": {f"{key}:{j}": f"v-{index}-{j}" for j in range(3)},
                "timestamp": rng.random() * 1e4, "read_only": False}
        messages.append(Message(
            src=rng.choice(clients if shape == 0 else replicas),
            dst=rng.choice(replicas), kind=kind, payload=payload,
            send_time=float(index), msg_id=index))
    return messages


def bench_wire_codec(num_messages: int = 2_000, batch_size: int = 64,
                     repeats: int = 3, seed: int = 13) -> Dict[str, Any]:
    """Encode/decode throughput and wire size: JSON v1 vs binary v2.

    Encodes the same deterministic message sample with both codecs in
    transport-sized batches (the v1 path frames each message individually,
    exactly as the transport's JSON fallback does; the v2 path emits one
    batch frame via a warm :class:`~repro.net.wire.BinaryEncoder`), then
    decodes the resulting byte stream through a fresh
    :class:`~repro.net.wire.FrameDecoder` (the binary stream is prefixed
    with the encoder's HELLO snapshot, as on a reconnect).  Best-of-repeats
    throughputs plus bytes/message for each codec.
    """
    from repro.net.wire import (BinaryEncoder, FrameDecoder, encode_frame,
                                message_to_frame)

    messages = _wire_sample_messages(num_messages, seed=seed)
    batches = [messages[i:i + batch_size]
               for i in range(0, len(messages), batch_size)]

    def timed(fn) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    # --- encode ----------------------------------------------------------
    json_frames: List[bytes] = []

    def encode_json() -> None:
        json_frames.clear()
        for batch in batches:
            json_frames.extend(encode_frame(message_to_frame(m))
                               for m in batch)

    warm = BinaryEncoder()
    for batch in batches:          # warm the intern table once
        warm.encode_batch(batch)
    binary_frames: List[bytes] = []

    def encode_binary() -> None:
        binary_frames.clear()
        binary_frames.extend(warm.encode_batch(batch) for batch in batches)

    json_encode_s = timed(encode_json)
    binary_encode_s = timed(encode_binary)
    json_bytes = sum(len(f) for f in json_frames)
    binary_hello = warm.hello_frame()
    binary_bytes = sum(len(f) for f in binary_frames)

    # --- decode ----------------------------------------------------------
    json_stream = b"".join(json_frames)
    binary_stream = binary_hello + b"".join(binary_frames)

    def decode(stream: bytes, expect: int) -> None:
        decoder = FrameDecoder()
        records = decoder.feed(stream)   # HELLO updates state, no record
        assert len(records) == expect, (len(records), expect)

    json_decode_s = timed(lambda: decode(json_stream, num_messages))
    binary_decode_s = timed(lambda: decode(binary_stream, num_messages))

    n = float(num_messages)
    return {
        "messages": num_messages,
        "batch_size": batch_size,
        "repeats": repeats,
        "json": {
            "encode_ops_per_s": n / json_encode_s,
            "decode_ops_per_s": n / json_decode_s,
            "bytes_per_op": json_bytes / n,
        },
        "binary": {
            "encode_ops_per_s": n / binary_encode_s,
            "decode_ops_per_s": n / binary_decode_s,
            "bytes_per_op": binary_bytes / n,
            "hello_bytes": len(binary_hello),
        },
        "size_ratio_json_over_binary": json_bytes / max(binary_bytes, 1),
    }


def bench_live_open_loop(rate_per_s: float = 1_200.0,
                         duration_ms: float = 1_200.0,
                         num_clients: int = 8,
                         codecs: Sequence[str] = ("binary", "json"),
                         seed: int = 47) -> Dict[str, Any]:
    """Open-loop YCSB against an in-process 3-replica Gryff-RSC cluster.

    One run per codec at the same requested arrival rate; each row records
    the offered/achieved accounting from the
    :class:`~repro.workloads.clients.OpenLoopDriver` and the
    coordinated-omission-correct response percentiles.  The numbers are
    honest live-loop measurements on whatever machine runs the suite (both
    cluster and clients share this process), so CI bounds them only
    loosely; the committed ``BENCH_perf.json`` captures the reference
    machine.
    """
    import asyncio

    from repro.net.cluster import LiveProcess
    from repro.net.load import run_load
    from repro.net.spec import ClusterSpec

    async def one_run(codec: str) -> Dict[str, Any]:
        spec = ClusterSpec.gryff(num_replicas=3, base_port=0)
        server = LiveProcess(spec)
        await server.start()
        try:
            summary = await run_load(
                spec, num_clients=num_clients, duration_ms=duration_ms,
                rate=rate_per_s, write_ratio=0.5, conflict_rate=0.2,
                seed=seed, codec=codec)
        finally:
            await server.stop()
        stats = summary["open_loop"]
        row: Dict[str, Any] = {
            "ops": summary["ops"],
            "throughput_ops_per_s": summary["throughput_ops_per_s"],
            "requested_rate_per_s": stats["requested_rate_per_s"],
            "achieved_rate_per_s": stats["achieved_rate_per_s"],
            "abandoned": stats["abandoned"],
            "backlog_peak": stats["backlog_peak"],
            "response_ms": {},
        }
        for category, pct in summary["categories"].items():
            row["response_ms"][category] = {
                "p50": pct["p50"], "p99": pct["p99"]}
        return row

    return {
        "rate_per_s": rate_per_s,
        "duration_ms": duration_ms,
        "clients": num_clients,
        "workload": "ycsb",
        "protocol": "gryff-rsc",
        "codecs": {codec: asyncio.run(one_run(codec)) for codec in codecs},
    }


def _nearest_rank(ordered: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list."""
    if not ordered:
        return 0.0
    index = max(0, min(len(ordered) - 1,
                       int(fraction * len(ordered) + 0.999999) - 1))
    return ordered[index]


def bench_fleet_routing(lookup_keys: int = 50_000,
                        ops_per_client: int = 40,
                        num_clients: int = 4,
                        repeats: int = 2,
                        num_migrations: int = 4,
                        migration_duration_ms: float = 1_500.0,
                        seed: int = 53) -> Dict[str, Any]:
    """Fleet-layer cost: ring lookups, routing overhead, migration pauses.

    Three sections:

    * ``ring`` — raw consistent-hash placement lookups/s (blake2b point
      hash + binary search over the range table) on an 8-group placement.
    * ``routing`` — the degenerate single-group :class:`~repro.api.store.
      FleetStore` versus a plain :class:`~repro.api.store.LiveStore` on the
      same closed-loop Gryff workload (same seed, same 3-replica cluster
      shape).  The fleet layer adds one ring lookup and a dict update per
      op and *zero* wire traffic, so the ops-weighted p99 ratio sits near
      1.0; CI bounds it loosely (live loops are I/O-bound and noisy).
    * ``migration`` — write-pause percentiles across ``num_migrations``
      online splits executed under load on a live 2-group fleet: each
      pause is the fence→flip window during which writes to the moving
      range are frozen (the paper-facing "availability dip").
    """
    import asyncio
    import tempfile

    from repro.api.store import FleetStore, LiveStore
    from repro.fleet.migration import MigrationPlan
    from repro.fleet.ring import PlacementMap
    from repro.fleet.spec import FleetSpec
    from repro.net.cluster import LiveProcess
    from repro.net.load import run_load
    from repro.net.spec import ClusterSpec

    # --- ring lookups -----------------------------------------------------
    placement = PlacementMap.build([f"g{i}" for i in range(8)], seed=1)
    keys = [f"user:{i:07d}" for i in range(lookup_keys)]

    def lookup_all() -> None:
        owner = placement.owner
        for key in keys:
            owner(key)

    lookup_s = _time(lookup_all, repeats=3)
    ring_row = {
        "groups": 8,
        "ranges": len(placement.ranges()),
        "lookups": lookup_keys,
        "lookup_s": lookup_s,
        "lookups_per_s": lookup_keys / lookup_s,
    }

    # --- routing overhead (1-group fleet vs plain LiveStore) --------------
    async def one_run(fleet: bool) -> Dict[str, Any]:
        if fleet:
            spec = FleetSpec.build(protocol="gryff-rsc", num_groups=1,
                                   base_port=0)
            server = LiveProcess(spec.merged_spec(),
                                 node_configs=spec.node_configs())
        else:
            spec = ClusterSpec.gryff(num_replicas=3, base_port=0)
            server = LiveProcess(spec)
        await server.start()
        try:
            summary = await run_load(
                spec, num_clients=num_clients, duration_ms=None,
                ops_per_client=ops_per_client, write_ratio=0.5,
                conflict_rate=0.2, seed=seed)
        finally:
            await server.stop()
        assert summary["ops"] == num_clients * ops_per_client
        return summary

    def best_run(fleet: bool) -> Dict[str, Any]:
        top: Optional[Dict[str, Any]] = None
        for _ in range(repeats):
            summary = asyncio.run(one_run(fleet))
            if top is None or (summary["throughput_ops_per_s"]
                               > top["throughput_ops_per_s"]):
                top = summary
        return top

    def weighted_p99(summary: Dict[str, Any]) -> float:
        total = ops = 0.0
        for pct in summary["categories"].values():
            total += pct["count"] * pct["p99"]
            ops += pct["count"]
        return total / max(ops, 1.0)

    plain = best_run(fleet=False)
    fleet = best_run(fleet=True)
    plain_p99 = weighted_p99(plain)
    fleet_p99 = weighted_p99(fleet)
    routing_row = {
        "ops": num_clients * ops_per_client,
        "clients": num_clients,
        "repeats": repeats,
        "livestore_ops_per_s": plain["throughput_ops_per_s"],
        "fleetstore_ops_per_s": fleet["throughput_ops_per_s"],
        "throughput_ratio": (fleet["throughput_ops_per_s"]
                             / max(plain["throughput_ops_per_s"], 1e-9)),
        "livestore_p99_ms": plain_p99,
        "fleetstore_p99_ms": fleet_p99,
        "p99_overhead_ratio": fleet_p99 / max(plain_p99, 1e-9),
    }

    # --- migration pauses -------------------------------------------------
    async def migration_run(journal: str) -> Dict[str, Any]:
        spec = FleetSpec.build(protocol="gryff-rsc", num_groups=2,
                               base_port=0, placement_seed=2)
        # Evenly spaced splits, each sending its half-range to whichever
        # group does NOT own it at that point in the schedule (tracked on a
        # rolling copy, since every split changes ownership downstream).
        from repro.fleet.ring import POINT_SPACE

        step = migration_duration_ms / (num_migrations + 1)
        rolling = spec.placement.copy()
        plans = []
        for i in range(num_migrations):
            frac = (2 * i + 1) / (2 * num_migrations)
            owner = rolling.owner_of_point(int(frac * POINT_SPACE))
            dst = "g1" if owner == "g0" else "g0"
            plan = MigrationPlan.parse(
                f"{(i + 1) * step:.0f}:split:{frac:.6f}:{dst}")
            lo, hi = plan.resolve(rolling)
            rolling.move(lo, hi, dst)
            plans.append(plan)
        server = LiveProcess(spec.merged_spec(),
                             node_configs=spec.node_configs())
        await server.start()
        try:
            return await run_load(
                spec, num_clients=num_clients,
                duration_ms=migration_duration_ms + 400.0, seed=seed,
                write_ratio=0.5, conflict_rate=0.2,
                migrations=plans, migration_journal=journal)
        finally:
            await server.stop()

    with tempfile.TemporaryDirectory(prefix="repro-bench-fleet-") as tmp:
        summary = asyncio.run(migration_run(os.path.join(tmp, "mig.journal")))
    migrations = summary["migration"]["migrations"]
    pauses = sorted(m["pause_ms"] for m in migrations)
    copied = sum(m.get("keys_copied", 0) for m in migrations)
    migration_row = {
        "planned": num_migrations,
        "completed": len(migrations),
        "crashed": summary["migration"]["crashed"],
        "placement_epoch": summary["migration"]["placement_epoch"],
        "ops_under_load": summary["ops"],
        "keys_copied": copied,
        "pause_ms": {
            "p50": _nearest_rank(pauses, 0.50),
            "p99": _nearest_rank(pauses, 0.99),
            "max": pauses[-1] if pauses else 0.0,
        },
        "client_pauses": summary["migration"]["client_pauses"],
    }

    return {"ring": ring_row, "routing": routing_row,
            "migration": migration_row}


def bench_sweep_wall_clock(client_counts: Sequence[int] = (4, 8, 16),
                           duration_ms: float = 600.0,
                           jobs: Optional[int] = None) -> Dict[str, Any]:
    """Serial vs parallel wall clock of a quick-scale Figure 6 sweep.

    Runs the same (client-count × variant) grid once at ``jobs=1`` (the old
    serial driver behavior) and once across ``jobs`` worker processes, and
    records the wall-clock speedup plus an aggregate-equality check — the
    parallel run must produce exactly the same trial payloads.  The cache is
    disabled for both runs so the comparison measures computation only.
    """
    from repro.bench.spanner_experiments import figure6_sweep

    jobs = jobs if jobs is not None else default_jobs()
    sweep = figure6_sweep(client_counts=tuple(client_counts),
                          duration_ms=duration_ms)
    serial = ParallelRunner(jobs=1).run(sweep)
    row: Dict[str, Any] = {
        "trials": len(sweep.trials),
        "client_counts": list(client_counts),
        "duration_ms": duration_ms,
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "serial_wall_s": serial.wall_clock_s,
    }
    if jobs > 1:
        parallel = ParallelRunner(jobs=jobs).run(sweep)
        row["parallel_wall_s"] = parallel.wall_clock_s
        row["speedup"] = serial.wall_clock_s / max(parallel.wall_clock_s, 1e-9)
        row["results_match"] = parallel.data() == serial.data()
    else:
        row["parallel_wall_s"] = None
        row["speedup"] = 1.0
        row["results_match"] = True
    return row


def run_perf_suite(scale: str = "quick",
                   jobs: Optional[int] = None) -> Dict[str, Any]:
    """Run every perf benchmark at ``scale`` and return the payload."""
    if scale not in PERF_SCALES:
        raise ValueError(f"unknown perf scale {scale!r}; use one of {sorted(PERF_SCALES)}")
    params = PERF_SCALES[scale]
    return {
        "schema": "bench-perf/6",
        "scale": scale,
        "sweep_engine": True,
        "constraints": bench_constraint_derivation(params["history_sizes"]),
        "search": bench_serialization_search(params["search_checks"]),
        "sim": bench_sim_kernel(params["sim_procs"], params["sim_rounds"],
                                params["store_items"]),
        "streaming": bench_streaming_checker(params["streaming_sizes"]),
        "metrics_overhead": bench_metrics_overhead(
            params["metrics_ops_per_client"], params["metrics_clients"],
            repeats=params["metrics_repeats"]),
        "wire_codec": bench_wire_codec(params["wire_messages"],
                                       params["wire_batch"]),
        "live": bench_live_open_loop(params["live_rate_per_s"],
                                     params["live_duration_ms"],
                                     params["live_clients"]),
        "fleet": bench_fleet_routing(
            params["fleet_lookup_keys"], params["fleet_ops_per_client"],
            params["fleet_clients"], repeats=params["fleet_repeats"],
            num_migrations=params["fleet_migrations"],
            migration_duration_ms=params["fleet_migration_duration_ms"]),
        "sweep_wall_clock": bench_sweep_wall_clock(
            params["sweep_client_counts"], params["sweep_duration_ms"],
            jobs=jobs),
    }


def attach_baseline(payload: Dict[str, Any],
                    baseline_path: Optional[str] = None) -> Dict[str, Any]:
    """Attach the committed seed-commit measurements and derived speedups.

    The constraint-derivation speedups are already apples-to-apples (the
    ``naive_*`` functions *are* the seed code, timed in the same run); the
    simulation-kernel speedup needs the seed numbers, which no longer exist
    in-tree and are read from the committed baseline JSON.
    """
    path = baseline_path or SEED_BASELINE_PATH
    if not os.path.exists(path):
        payload["baseline"] = None
        return payload
    with open(path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    payload["baseline"] = baseline
    speedups: Dict[str, Any] = {}
    base_sim = baseline.get("sim") or {}
    cur_sim = payload["sim"]
    for metric in ("timeout_events_per_s", "store_events_per_s", "events_per_s"):
        base_value = base_sim.get(metric)
        cur_value = cur_sim.get(metric)
        if base_value and cur_value:
            speedups[f"sim_{metric}"] = cur_value / base_value
    base_search = (baseline.get("search") or {}).get("checks_per_s")
    cur_search = payload["search"].get("checks_per_s")
    if base_search and cur_search:
        speedups["search_checks_per_s"] = cur_search / base_search
    base_rows = {row["ops"]: row for row in baseline.get("constraints", ())}
    for row in payload["constraints"]:
        base_row = base_rows.get(row["ops"])
        if not base_row:
            continue
        # Seed production path == naive loops; compare against our fast path.
        speedups[f"real_time_edges@{row['ops']}"] = (
            base_row["naive_real_time_s"] / row["fast_real_time_s"])
        speedups[f"regular_edges@{row['ops']}"] = (
            base_row["naive_regular_s"] / row["fast_regular_s"])
        if base_row.get("causal_build_s") and row.get("causal_build_s"):
            speedups[f"causal_build@{row['ops']}"] = (
                base_row["causal_build_s"] / row["causal_build_s"])
    payload["speedups_vs_seed"] = speedups
    return payload


# --------------------------------------------------------------------------- #
# Reporting
# --------------------------------------------------------------------------- #
def perf_report_rows(payload: Dict[str, Any]) -> List[List[Any]]:
    """Flatten a perf payload into ``[metric, value]`` rows for format_table."""
    rows: List[List[Any]] = []
    for row in payload["constraints"]:
        size = row["ops"]
        rows.append([f"real-time edges naive @ {size} ops (s)",
                     f"{row['naive_real_time_s']:.4f}"])
        rows.append([f"real-time edges sweep @ {size} ops (s)",
                     f"{row['fast_real_time_s']:.4f}"])
        rows.append([f"real-time speedup @ {size} ops",
                     f"{row['real_time_speedup']:.1f}x"])
        rows.append([f"regular speedup @ {size} ops",
                     f"{row['regular_speedup']:.1f}x"])
    search = payload["search"]
    rows.append(["rss checks/s", f"{search['checks_per_s']:.1f}"])
    sim = payload["sim"]
    rows.append(["sim timeout events/s", f"{sim['timeout_events_per_s']:,.0f}"])
    rows.append(["sim store events/s", f"{sim['store_events_per_s']:,.0f}"])
    rows.append(["sim combined events/s", f"{sim['events_per_s']:,.0f}"])
    for row in payload.get("streaming", ()):
        size = row["ops"]
        rows.append([f"stream check @ {size} ops (ops/s)",
                     f"{row['stream_ops_per_s']:,.0f}"])
        rows.append([f"batch check @ {size} ops (ops/s)",
                     f"{row['batch_ops_per_s']:,.0f}"])
        rows.append([f"stream peak heap @ {size} ops (MB)",
                     f"{row['stream_peak_mb']:.2f} "
                     f"(batch {row['batch_peak_mb']:.2f}, "
                     f"{row['epochs']} epochs, "
                     f"peak epoch {row['max_segment_ops']} ops)"])
    metrics = payload.get("metrics_overhead")
    if metrics:
        rows.append([f"live ops/s, registry off ({metrics['ops']} ops)",
                     f"{metrics['registry_off_ops_per_s']:,.0f}"])
        rows.append(["live ops/s, registry on",
                     f"{metrics['registry_on_ops_per_s']:,.0f}"])
        rows.append(["metrics throughput ratio (on/off)",
                     f"{metrics['throughput_ratio']:.3f}"])
    wire = payload.get("wire_codec")
    if wire:
        for codec in ("json", "binary"):
            side = wire[codec]
            rows.append([f"wire {codec} encode (msgs/s)",
                         f"{side['encode_ops_per_s']:,.0f}"])
            rows.append([f"wire {codec} decode (msgs/s)",
                         f"{side['decode_ops_per_s']:,.0f}"])
            rows.append([f"wire {codec} bytes/msg",
                         f"{side['bytes_per_op']:.1f}"])
        rows.append(["wire size ratio (json/binary)",
                     f"{wire['size_ratio_json_over_binary']:.2f}x"])
    live = payload.get("live")
    if live:
        for codec, row in live["codecs"].items():
            rows.append([f"live open-loop {codec} @ {live['rate_per_s']:,.0f}/s "
                         "achieved (ops/s)",
                         f"{row['achieved_rate_per_s']:,.0f}"])
            for category, pct in sorted(row["response_ms"].items()):
                rows.append([f"live open-loop {codec} {category} response "
                             "p50/p99 (ms)",
                             f"{pct['p50']:.2f} / {pct['p99']:.2f}"])
    fleet = payload.get("fleet")
    if fleet:
        ring = fleet["ring"]
        rows.append([f"fleet ring lookups/s ({ring['groups']} groups)",
                     f"{ring['lookups_per_s']:,.0f}"])
        routing = fleet["routing"]
        rows.append(["fleet routing p99 overhead (1-group vs plain)",
                     f"{routing['p99_overhead_ratio']:.3f}x "
                     f"({routing['fleetstore_p99_ms']:.2f} ms vs "
                     f"{routing['livestore_p99_ms']:.2f} ms)"])
        rows.append(["fleet routing throughput ratio",
                     f"{routing['throughput_ratio']:.3f}"])
        mig = fleet["migration"]
        rows.append([f"fleet migration pause p50/p99/max (ms, "
                     f"{mig['completed']} splits)",
                     f"{mig['pause_ms']['p50']:.2f} / "
                     f"{mig['pause_ms']['p99']:.2f} / "
                     f"{mig['pause_ms']['max']:.2f}"])
    sweep = payload.get("sweep_wall_clock")
    if sweep:
        rows.append([f"sweep serial wall clock ({sweep['trials']} trials, s)",
                     f"{sweep['serial_wall_s']:.2f}"])
        if sweep.get("parallel_wall_s") is not None:
            rows.append([f"sweep parallel wall clock (--jobs {sweep['jobs']}, s)",
                         f"{sweep['parallel_wall_s']:.2f}"])
            rows.append(["sweep parallel speedup", f"{sweep['speedup']:.2f}x"])
            rows.append(["sweep parallel results match serial",
                         "yes" if sweep["results_match"] else "NO"])
    for name, value in (payload.get("speedups_vs_seed") or {}).items():
        rows.append([f"vs seed: {name}", f"{value:.2f}x"])
    return rows
