"""Table 1: invariants and anomalies per consistency model.

The report replays the photo-sharing scenario executions of
:mod:`repro.apps.photo_sharing` through the transactional model checkers and
assembles the same rows as the paper's Table 1:

* I1, I2 — a check mark means every violation scenario is *rejected* by the
  model (the invariant holds);
* A1, A2, A3 — "never" means the anomaly scenario is rejected, "always" means
  it is admitted even after the conflicting write completes, "temporarily"
  means it is admitted only while the write is still in flight.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.apps.photo_sharing import Table1Scenario, table1_scenarios
from repro.core.checkers import TRANSACTIONAL_MODELS
from repro.bench.reporting import format_table
from repro.bench.runner import SweepSpec, run_sweep

__all__ = ["table1_report", "model_trial", "table1_sweep", "TABLE1_MODELS",
           "PAPER_TABLE1"]

#: The models compared in Table 1, in the paper's order.
TABLE1_MODELS = ["strict_serializability", "rss", "po_serializability"]

#: The verdicts printed in the paper's Table 1.
PAPER_TABLE1 = {
    "strict_serializability": {"I1": "yes", "I2": "yes", "A1": "never",
                               "A2": "never", "A3": "never"},
    "rss": {"I1": "yes", "I2": "yes", "A1": "never",
            "A2": "never", "A3": "temporarily"},
    "po_serializability": {"I1": "yes", "I2": "no", "A1": "never",
                           "A2": "always", "A3": "always"},
}


def _verdicts_for_model(model: str, scenarios: List[Table1Scenario]) -> Dict[str, str]:
    checker = TRANSACTIONAL_MODELS[model]
    admitted = {
        scenario.name: bool(checker(scenario.history, scenario.spec))
        for scenario in scenarios
    }
    verdicts = {
        "I1": "no" if admitted["i1_violation"] else "yes",
        "I2": "no" if admitted["i2_violation"] else "yes",
        "A1": "possible" if admitted["a1_lost_photo"] else "never",
        "A2": "always" if admitted["a2_completed_write_invisible"] else "never",
    }
    during = admitted["a3_during_write"]
    after = admitted["a3_after_write_completes"]
    if after:
        verdicts["A3"] = "always"
    elif during:
        verdicts["A3"] = "temporarily"
    else:
        verdicts["A3"] = "never"
    return verdicts


def model_trial(params: Dict[str, Any]) -> Dict[str, Any]:
    """Runner trial: Table 1 verdicts of one model over all scenarios."""
    model = params["model"]
    return {"model": model,
            "verdicts": _verdicts_for_model(model, table1_scenarios())}


def table1_sweep() -> SweepSpec:
    return SweepSpec.grid("table1", "table1_model",
                          axes={"model": TABLE1_MODELS})


def table1_report(jobs: Optional[int] = 1, resume: bool = False,
                  cache_dir: Optional[str] = None) -> Dict[str, Any]:
    """Recompute Table 1 from the checkers and compare to the paper.

    Sub-second workload, so ``jobs`` defaults to 1 (pool startup would
    dominate); pass ``jobs=N`` to fan the models out anyway.
    """
    outcome = run_sweep(table1_sweep(), jobs=jobs, resume=resume,
                        cache_dir=cache_dir)
    computed: Dict[str, Dict[str, str]] = {
        trial["model"]: trial["verdicts"] for trial in outcome.data()
    }
    matches = {
        model: computed[model] == PAPER_TABLE1[model] for model in TABLE1_MODELS
    }
    headers = ["Consistency", "I1", "I2", "A1", "A2", "A3", "matches paper"]
    rows = [
        [model] + [computed[model][column] for column in ("I1", "I2", "A1", "A2", "A3")]
        + ["yes" if matches[model] else "NO"]
        for model in TABLE1_MODELS
    ]
    text = format_table(headers, rows, title="Table 1 — invariants and anomalies")
    return {"computed": computed, "paper": PAPER_TABLE1, "matches": matches,
            "text": text}
