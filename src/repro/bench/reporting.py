"""Plain-text table rendering and JSON archiving for experiment reports."""

from __future__ import annotations

import json
from typing import Any, Iterable, List, Sequence

__all__ = ["format_table", "format_float", "write_json_report"]


def write_json_report(path: str, payload: Any) -> None:
    """Archive an experiment payload as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=str)
        handle.write("\n")


def format_float(value: Any, digits: int = 1) -> str:
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: str = "") -> str:
    """Render a fixed-width text table."""
    rendered_rows: List[List[str]] = [[format_float(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(str(cell).ljust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(render_row(row))
    return "\n".join(lines)
