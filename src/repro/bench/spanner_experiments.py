"""Spanner / Spanner-RSS experiment drivers (Figures 5 and 6).

``run_retwis_experiment`` reproduces the §6.1 setup: three shards with
leaders in CA/VA/IR, Retwis over Zipfian keys, partly-open clients in every
data center.  ``figure5_experiment`` runs both variants at one skew and
returns the read-only-transaction tail-latency comparison.

``run_load_experiment`` reproduces the §6.2 setup: a single data center,
eight shards, zero TrueTime error, closed-loop clients with a uniform
workload; ``figure6_experiment`` sweeps the number of clients and reports
throughput versus median latency for both variants.

Both figure drivers execute their (variant, parameter) grids through
:mod:`repro.bench.runner`: ``jobs=1`` reproduces the old serial in-process
behavior bit-for-bit, ``jobs=N`` fans the independent trials across a
process pool, and ``resume=True`` reuses cached trial results.  The trial
functions (``retwis_trial`` / ``load_trial``) return compact picklable
summaries — percentiles and counters, never histories — which is all the
figures need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence

from repro.api import open_store, reset_session
from repro.api.executors import make_retwis_executor as _api_make_retwis_executor
from repro.bench.runner import SweepSpec, run_sweep
from repro.core.history import History
from repro.sim.stats import LatencyRecorder, Percentiles
from repro.spanner.client import TransactionAborted  # noqa: F401  (re-export)
from repro.spanner.config import SpannerConfig, Variant
from repro.workloads.clients import ClosedLoopDriver, PartlyOpenDriver
from repro.workloads.retwis import RetwisWorkload

__all__ = [
    "SpannerExperimentResult",
    "run_retwis_experiment",
    "retwis_trial",
    "figure5_sweep",
    "figure5_experiment",
    "run_load_experiment",
    "load_trial",
    "figure6_sweep",
    "figure6_experiment",
    "FIGURE5_FRACTIONS",
]

#: The y-axis gridlines of Figure 5.
FIGURE5_FRACTIONS = (0.5, 0.9, 0.99, 0.995, 0.999)


@dataclass
class SpannerExperimentResult:
    """Outcome of one Spanner / Spanner-RSS run."""

    variant: Variant
    config: SpannerConfig
    recorder: LatencyRecorder
    shard_stats: Dict[str, Dict[str, int]]
    committed: int
    aborted_attempts: int
    duration_ms: float
    consistency_ok: Optional[bool] = None
    history: Optional[History] = None

    def ro_percentiles(self) -> Percentiles:
        return self.recorder.percentiles("ro")

    def rw_percentiles(self) -> Percentiles:
        return self.recorder.percentiles("rw")

    def ro_cdf(self, fractions: Sequence[float] = FIGURE5_FRACTIONS):
        return self.recorder.cdf("ro", fractions)

    def throughput(self) -> float:
        return self.recorder.throughput()

    def blocked_fraction(self) -> float:
        requests = sum(stats["ro_requests"] for stats in self.shard_stats.values())
        blocked = sum(stats["ro_blocked"] for stats in self.shard_stats.values())
        return blocked / requests if requests else 0.0


def __getattr__(name):
    if name == "make_retwis_executor":
        # Deprecated alias: the unified executor runs Retwis against any
        # session with the ``multi_key_txn`` capability.
        import warnings

        warnings.warn(
            "repro.bench.spanner_experiments.make_retwis_executor is "
            "deprecated; use repro.api.make_retwis_executor",
            DeprecationWarning, stacklevel=2)
        return _api_make_retwis_executor
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def run_retwis_experiment(
    variant: Variant,
    zipf_skew: float,
    duration_ms: float = 30_000.0,
    clients_per_site: int = 4,
    session_arrival_rate_per_sec: float = 1.2,
    continue_probability: float = 0.9,
    think_time_ms: float = 0.0,
    num_keys: int = 10_000,
    seed: int = 1,
    record_history: bool = False,
    check_consistency: bool = False,
    config_overrides: Optional[Dict[str, Any]] = None,
) -> SpannerExperimentResult:
    """Run the Retwis workload against one variant (§6.1 setup)."""
    overrides = dict(config_overrides or {})
    config = SpannerConfig(variant=variant, seed=seed, num_keys=num_keys, **overrides)
    store = open_store("sim-spanner", config=config)
    workload_by_session: Dict[str, RetwisWorkload] = {}
    pairs = []
    for site_index, site in enumerate(config.sites):
        for client_index in range(clients_per_site):
            session = store.session(site, record_history=record_history)
            workload = RetwisWorkload(
                num_keys=num_keys, zipf_skew=zipf_skew,
                seed=seed * 1000 + site_index * 100 + client_index,
                value_tag=f"{session.name}-",
            )
            workload_by_session[session.name] = workload
            pairs.append((session, workload))

    executor = _api_make_retwis_executor(workload_by_session)
    driver = PartlyOpenDriver(
        store.env, pairs, executor,
        arrival_rate_per_client=session_arrival_rate_per_sec / 1000.0,
        duration_ms=duration_ms,
        continue_probability=continue_probability,
        think_time_ms=think_time_ms,
        reset_session=reset_session,
        seed=seed,
    )
    driver.start()
    store.run()

    consistency_ok = None
    if check_consistency and record_history:
        consistency_ok = bool(store.check_consistency())
    return SpannerExperimentResult(
        variant=variant,
        config=config,
        recorder=store.recorder,
        shard_stats=store.cluster.shard_stats(),
        committed=store.cluster.total_committed(),
        aborted_attempts=sum(s.aborted_attempts for s in store.sessions),
        duration_ms=store.env.now,
        consistency_ok=consistency_ok,
        history=store.history if record_history else None,
    )


def _spanner_summary(result: SpannerExperimentResult,
                     cdf_fractions: Sequence[float] = FIGURE5_FRACTIONS,
                     ) -> Dict[str, Any]:
    """Compact, picklable summary of one Spanner run (what the figures use)."""
    recorder = result.recorder
    ro = recorder.samples("ro")
    rw = recorder.samples("rw")
    all_samples = ro + rw
    return {
        "variant": result.variant.value,
        "committed": result.committed,
        "aborted_attempts": result.aborted_attempts,
        "duration_ms": result.duration_ms,
        "throughput": recorder.throughput(),
        "blocked_fraction": result.blocked_fraction(),
        "counts": {category: recorder.count(category)
                   for category in recorder.categories()},
        "ro_cdf_ms": {str(fraction): (recorder.quantile("ro", fraction * 100.0)
                                      if ro else 0.0)
                      for fraction in cdf_fractions},
        "ro_p50_ms": recorder.quantile("ro", 50.0) if ro else 0.0,
        "rw_p50_ms": recorder.quantile("rw", 50.0) if rw else 0.0,
        "overall_p50_ms": (sorted(all_samples)[len(all_samples) // 2]
                           if all_samples else 0.0),
        "shard_stats": result.shard_stats,
        "consistency_ok": result.consistency_ok,
    }


def retwis_trial(params: Dict[str, Any]) -> Dict[str, Any]:
    """Runner trial: one §6.1 Retwis run → compact summary."""
    params = dict(params)
    variant = Variant(params.pop("variant"))
    cdf_fractions = params.pop("cdf_fractions", FIGURE5_FRACTIONS)
    result = run_retwis_experiment(variant, **params)
    return _spanner_summary(result, cdf_fractions)


def figure5_sweep(zipf_skew: float, seed: int = 1, **kwargs) -> SweepSpec:
    """The Figure 5 grid: both variants at one skew."""
    base = dict(kwargs)
    base["zipf_skew"] = zipf_skew
    return SweepSpec.grid(
        "figure5", "spanner_retwis",
        axes={"variant": [Variant.SPANNER.value, Variant.SPANNER_RSS.value]},
        base=base, seed=seed,
    )


def figure5_experiment(zipf_skew: float, jobs: Optional[int] = None,
                       resume: bool = False, cache_dir: Optional[str] = None,
                       seed: int = 1, **kwargs) -> Dict[str, Any]:
    """Figure 5: RO-transaction tail latency, Spanner vs Spanner-RSS."""
    sweep = figure5_sweep(zipf_skew, seed=seed, **kwargs)
    outcome = run_sweep(sweep, jobs=jobs, resume=resume, cache_dir=cache_dir)
    spanner, spanner_rss = outcome.data()
    rows = []
    for fraction in FIGURE5_FRACTIONS:
        spanner_value = spanner["ro_cdf_ms"][str(fraction)]
        rss_value = spanner_rss["ro_cdf_ms"][str(fraction)]
        reduction = (1.0 - rss_value / spanner_value) * 100.0 if spanner_value else 0.0
        rows.append({
            "fraction": fraction,
            "spanner_ms": spanner_value,
            "spanner_rss_ms": rss_value,
            "reduction_pct": reduction,
        })
    return {"skew": zipf_skew,
            "results": {"spanner": spanner, "spanner_rss": spanner_rss},
            "rows": rows}


# --------------------------------------------------------------------------- #
# Figure 6: throughput vs median latency under high load
# --------------------------------------------------------------------------- #
def run_load_experiment(
    variant: Variant,
    num_clients: int,
    duration_ms: float = 5_000.0,
    num_shards: int = 8,
    num_keys: int = 5_000,
    server_cpu_ms: float = 0.05,
    seed: int = 1,
) -> SpannerExperimentResult:
    """Run the §6.2 high-load setup: one data center, uniform keys, ε = 0."""
    config = SpannerConfig(
        variant=variant,
        num_shards=num_shards,
        num_keys=num_keys,
        sites=["DC"],
        leader_sites=["DC"],
        truetime_epsilon_ms=0.0,
        jitter_ms=0.0,
        server_cpu_ms=server_cpu_ms,
        seed=seed,
    )
    store = open_store("sim-spanner", config=config)
    workload_by_session: Dict[str, RetwisWorkload] = {}
    pairs = []
    for index in range(num_clients):
        session = store.session("DC", record_history=False)
        workload = RetwisWorkload(num_keys=num_keys, zipf_skew=0.0,
                                  seed=seed * 500 + index,
                                  value_tag=f"{session.name}-")
        workload_by_session[session.name] = workload
        pairs.append((session, workload))
    executor = _api_make_retwis_executor(workload_by_session)
    driver = ClosedLoopDriver(
        store.env, pairs, executor, duration_ms=duration_ms,
    )
    driver.start()
    store.run()
    return SpannerExperimentResult(
        variant=variant,
        config=config,
        recorder=store.recorder,
        shard_stats=store.cluster.shard_stats(),
        committed=store.cluster.total_committed(),
        aborted_attempts=sum(s.aborted_attempts for s in store.sessions),
        duration_ms=store.env.now,
    )


def load_trial(params: Dict[str, Any]) -> Dict[str, Any]:
    """Runner trial: one §6.2 high-load run → compact summary."""
    params = dict(params)
    variant = Variant(params.pop("variant"))
    result = run_load_experiment(variant, **params)
    return _spanner_summary(result)


def figure6_sweep(client_counts: Sequence[int] = (4, 8, 16, 32, 64),
                  seed: int = 1, **kwargs) -> SweepSpec:
    """The Figure 6 grid: client counts × both variants."""
    return SweepSpec.grid(
        "figure6", "spanner_load",
        axes={"num_clients": list(client_counts),
              "variant": [Variant.SPANNER.value, Variant.SPANNER_RSS.value]},
        base=dict(kwargs), seed=seed,
    )


def figure6_experiment(client_counts: Sequence[int] = (4, 8, 16, 32, 64),
                       jobs: Optional[int] = None, resume: bool = False,
                       cache_dir: Optional[str] = None, seed: int = 1,
                       **kwargs) -> List[Dict[str, Any]]:
    """Figure 6: throughput vs p50 latency as closed-loop clients increase."""
    sweep = figure6_sweep(client_counts, seed=seed, **kwargs)
    outcome = run_sweep(sweep, jobs=jobs, resume=resume, cache_dir=cache_dir)
    summaries = outcome.data()
    rows = []
    for index, count in enumerate(client_counts):
        row: Dict[str, Any] = {"clients": count}
        for offset, label in ((0, "spanner"), (1, "spanner_rss")):
            summary = summaries[index * 2 + offset]
            row[f"{label}_throughput"] = summary["throughput"]
            row[f"{label}_p50_ms"] = summary["ro_p50_ms"]
            row[f"{label}_overall_p50_ms"] = summary["overall_p50_ms"]
        rows.append(row)
    return rows
