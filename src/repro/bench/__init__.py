"""Experiment drivers that regenerate the paper's tables and figures.

Each module corresponds to one part of the evaluation:

* :mod:`repro.bench.spanner_experiments` — Figures 5 and 6 (Retwis tail
  latency, high-load throughput).
* :mod:`repro.bench.gryff_experiments` — Figure 7 and the §7.4 overhead
  comparison (YCSB p99 read latency).
* :mod:`repro.bench.table1` — Table 1 (invariants and anomalies per model).
* :mod:`repro.bench.appendix_a` — the Appendix A model-comparison figures.
* :mod:`repro.bench.reporting` — plain-text table rendering.

The drivers execute their trial grids through :mod:`repro.bench.runner`,
which fans independent trials across a process pool (``jobs=N``), falls back
to a bit-identical serial path at ``jobs=1``, and can resume interrupted
sweeps from an on-disk trial cache (``resume=True``).

The ``benchmarks/`` directory wraps these drivers in pytest-benchmark cases,
one per table/figure.
"""

from repro.bench.reporting import format_table
from repro.bench.runner import (
    ParallelRunner,
    SweepOutcome,
    SweepSpec,
    TrialResult,
    TrialSpec,
    derive_seed,
    run_sweep,
)
from repro.bench.spanner_experiments import (
    SpannerExperimentResult,
    figure5_experiment,
    figure6_experiment,
    run_load_experiment,
    run_retwis_experiment,
)
from repro.bench.gryff_experiments import (
    GryffExperimentResult,
    figure7_experiment,
    overhead_experiment,
    run_ycsb_experiment,
)
from repro.bench.table1 import table1_report
from repro.bench.appendix_a import appendix_a_report

__all__ = [
    "format_table",
    "ParallelRunner",
    "SweepOutcome",
    "SweepSpec",
    "TrialResult",
    "TrialSpec",
    "derive_seed",
    "run_sweep",
    "SpannerExperimentResult",
    "run_retwis_experiment",
    "figure5_experiment",
    "run_load_experiment",
    "figure6_experiment",
    "GryffExperimentResult",
    "run_ycsb_experiment",
    "figure7_experiment",
    "overhead_experiment",
    "table1_report",
    "appendix_a_report",
]
