"""Quantifying the anomalies RSS / RSC allow (§3, §4).

RSS and RSC relax some of strict serializability's / linearizability's
real-time guarantees, so applications may observe *new* anomalies: a read may
miss a write that some other, causally unrelated process has already
observed.  The paper argues these anomalies are only possible within short
time windows — essentially while the conflicting write is still in flight —
so they should go unnoticed in practice.

This module measures those windows from recorded histories:

* :func:`spanner_completed_write_misses` / :func:`gryff_completed_write_misses`
  — the number of reads that failed to observe a *completed* conflicting
  write.  This is anomaly A2 of Table 1 and must be zero under RSS / RSC.
* :func:`spanner_in_flight_miss_windows` — for every read-only transaction
  that missed a conflicting write which was still in flight (the A3
  "temporarily" case), the remaining lifetime of that write after the read
  returned.  The anomaly is only observable during that window, so its
  distribution quantifies the "short time window" claim of §3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.events import OpType, Operation
from repro.core.history import History
from repro.sim.stats import Percentiles

__all__ = [
    "MissWindowReport",
    "spanner_in_flight_miss_windows",
    "spanner_completed_write_misses",
    "gryff_completed_write_misses",
]


@dataclass
class MissWindowReport:
    """Distribution of in-flight miss windows (ms)."""

    reads_measured: int
    misses: int
    percentiles: Optional[Percentiles]
    max_window_ms: float

    def summary_rows(self) -> List[List]:
        rows = [
            ["read-only transactions measured", self.reads_measured],
            ["reads that missed an in-flight write", self.misses],
            ["max anomaly window (ms)", self.max_window_ms],
        ]
        if self.percentiles is not None:
            rows.insert(2, ["median anomaly window (ms)", self.percentiles.p50])
        return rows


def _commit_ts(op: Operation) -> float:
    return op.meta.get("commit_ts", 0.0)


def _observed_version_ts(history: History, key, observed_value) -> float:
    if observed_value is None:
        return 0.0
    writers = history.writers_of(key, observed_value)
    return max((_commit_ts(w) for w in writers), default=0.0)


def spanner_in_flight_miss_windows(history: History) -> MissWindowReport:
    """Measure how long missed in-flight writes remained observable gaps.

    For each complete read-only transaction R and each conflicting read-write
    transaction W that (a) had already been invoked when R responded, (b)
    eventually committed with a timestamp at or below R's read timestamp era,
    and (c) whose value R did not observe, the anomaly window is
    ``W.responded_at - R.responded_at`` — once W completes, the regular
    real-time constraint forces every later conflicting read to observe it,
    so the anomaly cannot be observed after that point.
    """
    windows: List[float] = []
    reads = [op for op in history if op.op_type == OpType.RO_TXN and op.is_complete]
    writes = [op for op in history if op.op_type == OpType.RW_TXN and op.is_complete]
    for read in reads:
        for write in writes:
            overlap = set(write.write_set) & set(read.read_set)
            if not overlap:
                continue
            if write.invoked_at >= read.responded_at:
                continue  # the write started after the read finished
            if write.responded_at <= read.invoked_at:
                continue  # completed writes are covered by the A2 check
            missed = False
            for key in overlap:
                observed_ts = _observed_version_ts(history, key, read.read_set[key])
                if observed_ts < _commit_ts(write):
                    missed = True
                    break
            if missed:
                windows.append(max(0.0, write.responded_at - read.responded_at))
    return MissWindowReport(
        reads_measured=len(reads),
        misses=len(windows),
        percentiles=Percentiles.from_samples(windows) if windows else None,
        max_window_ms=max(windows) if windows else 0.0,
    )


def spanner_completed_write_misses(history: History) -> int:
    """Count RO transactions missing a conflicting write that completed
    before they started (anomaly A2; must be zero under RSS)."""
    misses = 0
    writes = [op for op in history if op.op_type == OpType.RW_TXN and op.is_complete]
    for op in history:
        if op.op_type != OpType.RO_TXN or not op.is_complete:
            continue
        for write in writes:
            if write.responded_at >= op.invoked_at:
                continue
            overlap = set(write.write_set) & set(op.read_set)
            if not overlap:
                continue
            for key in overlap:
                observed_ts = _observed_version_ts(history, key, op.read_set[key])
                if observed_ts < _commit_ts(write):
                    misses += 1
                    break
    return misses


def gryff_completed_write_misses(history: History) -> int:
    """Count Gryff reads missing a conflicting write that completed before
    they started (must be zero under RSC)."""
    misses = 0
    writes = [op for op in history
              if op.op_type in (OpType.WRITE, OpType.RMW) and op.is_complete]
    for op in history:
        if op.op_type != OpType.READ or not op.is_complete:
            continue
        read_cs = tuple(op.meta.get("carstamp", (0, 0, "")))
        for write in writes:
            if write.key != op.key or write.responded_at >= op.invoked_at:
                continue
            write_cs = tuple(write.meta.get("carstamp", (0, 0, "")))
            if write_cs > read_cs:
                misses += 1
                break
    return misses
