"""Gryff / Gryff-RSC experiment drivers (Figure 7 and §7.4).

``run_ycsb_experiment`` reproduces the §7.2 setup: five replicas, one per
Table 2 region, sixteen closed-loop clients spread evenly over the regions,
a YCSB read/write mix with a configurable conflict rate.
``figure7_experiment`` sweeps the write ratio at a fixed conflict rate and
reports p99 read latency for Gryff and Gryff-RSC.  ``overhead_experiment``
reproduces §7.4: no wide-area emulation, 10% conflicts, 50/50 and 95/5 mixes,
throughput and median latency within a few percent across variants.

The sweep drivers (``figure7_experiment`` / ``overhead_experiment``) run
their (write-ratio, variant) grids through :mod:`repro.bench.runner` —
``jobs=1`` is bit-identical to the old serial loops, ``jobs=N`` spreads the
independent trials across worker processes, and ``resume=True`` reuses
cached trial results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.api import open_store
from repro.api.executors import ycsb_executor as _api_ycsb_executor
from repro.bench.runner import SweepSpec, run_sweep
from repro.core.history import History
from repro.gryff.config import GryffConfig, GryffVariant
from repro.sim.stats import LatencyRecorder, Percentiles, percentile
from repro.workloads.clients import ClosedLoopDriver
from repro.workloads.ycsb import YcsbWorkload

__all__ = [
    "GryffExperimentResult",
    "run_ycsb_experiment",
    "ycsb_trial",
    "figure7_sweep",
    "figure7_experiment",
    "overhead_sweep",
    "overhead_experiment",
]


@dataclass
class GryffExperimentResult:
    """Outcome of one Gryff / Gryff-RSC run."""

    variant: GryffVariant
    config: GryffConfig
    recorder: LatencyRecorder
    replica_stats: Dict[str, Dict[str, int]]
    reads_fast: int
    reads_slow: int
    duration_ms: float
    consistency_ok: Optional[bool] = None
    history: Optional[History] = None

    def read_percentiles(self) -> Percentiles:
        return self.recorder.percentiles("read")

    def write_percentiles(self) -> Percentiles:
        return self.recorder.percentiles("write")

    def p99_read_ms(self) -> float:
        samples = self.recorder.samples("read")
        return percentile(samples, 99.0) if samples else 0.0

    def p999_read_ms(self) -> float:
        samples = self.recorder.samples("read")
        return percentile(samples, 99.9) if samples else 0.0

    def throughput(self) -> float:
        return self.recorder.throughput()

    def slow_read_fraction(self) -> float:
        total = self.reads_fast + self.reads_slow
        return self.reads_slow / total if total else 0.0


def __getattr__(name):
    if name == "ycsb_executor":
        # Deprecated alias: the unified executor runs YCSB against *any*
        # backend session.
        import warnings

        warnings.warn(
            "repro.bench.gryff_experiments.ycsb_executor is deprecated; "
            "use repro.api.ycsb_executor", DeprecationWarning, stacklevel=2)
        return _api_ycsb_executor
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def run_ycsb_experiment(
    variant: GryffVariant,
    write_ratio: float,
    conflict_rate: float,
    num_clients: int = 16,
    duration_ms: float = 60_000.0,
    wide_area: bool = True,
    server_cpu_ms: float = 0.0,
    seed: int = 1,
    record_history: bool = False,
    check_consistency: bool = False,
) -> GryffExperimentResult:
    """Run the YCSB workload against one variant (§7.2 / §7.4 setup)."""
    config = GryffConfig(variant=variant, wide_area=wide_area,
                         server_cpu_ms=server_cpu_ms, seed=seed)
    store = open_store("sim-gryff", config=config)
    pairs = []
    for index in range(num_clients):
        site = config.sites[index % len(config.sites)]
        session = store.session(site, record_history=record_history)
        pairs.append((session, YcsbWorkload(
            client_id=session.name, write_ratio=write_ratio,
            conflict_rate=conflict_rate, seed=seed * 1000 + index,
        )))
    driver = ClosedLoopDriver(
        store.env, pairs, _api_ycsb_executor, duration_ms=duration_ms,
    )
    driver.start()
    store.run()

    consistency_ok = None
    if check_consistency and record_history:
        consistency_ok = bool(store.check_consistency())
    return GryffExperimentResult(
        variant=variant,
        config=config,
        recorder=store.recorder,
        replica_stats=store.cluster.replica_stats(),
        reads_fast=sum(session.reads_fast for session in store.sessions),
        reads_slow=sum(session.reads_slow for session in store.sessions),
        duration_ms=store.env.now,
        consistency_ok=consistency_ok,
        history=store.history if record_history else None,
    )


def _gryff_summary(result: GryffExperimentResult) -> Dict[str, Any]:
    """Compact, picklable summary of one Gryff run (what the figures use)."""
    recorder = result.recorder
    reads = recorder.samples("read")
    writes = recorder.samples("write")
    combined = sorted(reads + writes)
    return {
        "variant": result.variant.value,
        "duration_ms": result.duration_ms,
        "throughput": recorder.throughput(),
        "counts": {category: recorder.count(category)
                   for category in recorder.categories()},
        "read_p99_ms": recorder.quantile("read", 99.0) if reads else 0.0,
        "read_p999_ms": recorder.quantile("read", 99.9) if reads else 0.0,
        "read_p50_ms": recorder.quantile("read", 50.0) if reads else 0.0,
        "combined_p50_ms": combined[len(combined) // 2] if combined else 0.0,
        "reads_fast": result.reads_fast,
        "reads_slow": result.reads_slow,
        "slow_read_fraction": result.slow_read_fraction(),
        "replica_stats": result.replica_stats,
        "consistency_ok": result.consistency_ok,
    }


def ycsb_trial(params: Dict[str, Any]) -> Dict[str, Any]:
    """Runner trial: one §7.2 / §7.4 YCSB run → compact summary."""
    params = dict(params)
    variant = GryffVariant(params.pop("variant"))
    result = run_ycsb_experiment(variant, **params)
    return _gryff_summary(result)


def figure7_sweep(conflict_rate: float,
                  write_ratios: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
                  seed: int = 1, **kwargs) -> SweepSpec:
    """The Figure 7 grid: write ratios × both variants at one conflict rate."""
    base = dict(kwargs)
    base["conflict_rate"] = conflict_rate
    return SweepSpec.grid(
        "figure7", "gryff_ycsb",
        axes={"write_ratio": list(write_ratios),
              "variant": [GryffVariant.GRYFF.value, GryffVariant.GRYFF_RSC.value]},
        base=base, seed=seed,
    )


def figure7_experiment(conflict_rate: float,
                       write_ratios: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
                       jobs: Optional[int] = None, resume: bool = False,
                       cache_dir: Optional[str] = None, seed: int = 1,
                       **kwargs) -> List[Dict[str, Any]]:
    """Figure 7: p99 read latency vs write ratio at one conflict rate."""
    sweep = figure7_sweep(conflict_rate, write_ratios, seed=seed, **kwargs)
    outcome = run_sweep(sweep, jobs=jobs, resume=resume, cache_dir=cache_dir)
    summaries = outcome.data()
    rows = []
    for index, write_ratio in enumerate(write_ratios):
        gryff = summaries[index * 2]
        rsc = summaries[index * 2 + 1]
        gryff_p99 = gryff["read_p99_ms"]
        rsc_p99 = rsc["read_p99_ms"]
        reduction = (1.0 - rsc_p99 / gryff_p99) * 100.0 if gryff_p99 else 0.0
        rows.append({
            "conflict_rate": conflict_rate,
            "write_ratio": write_ratio,
            "gryff_p99_ms": gryff_p99,
            "gryff_rsc_p99_ms": rsc_p99,
            "reduction_pct": reduction,
            "gryff_slow_read_fraction": gryff["slow_read_fraction"],
            "gryff_p999_ms": gryff["read_p999_ms"],
            "gryff_rsc_p999_ms": rsc["read_p999_ms"],
        })
    return rows


def overhead_sweep(write_ratios: Sequence[float] = (0.5, 0.05),
                   conflict_rate: float = 0.10,
                   num_clients: int = 16,
                   duration_ms: float = 5_000.0,
                   server_cpu_ms: float = 0.05,
                   seed: int = 1) -> SweepSpec:
    """The §7.4 grid: write ratios × both variants, no wide-area links."""
    return SweepSpec.grid(
        "overhead", "gryff_ycsb",
        axes={"write_ratio": list(write_ratios),
              "variant": [GryffVariant.GRYFF.value, GryffVariant.GRYFF_RSC.value]},
        base={"conflict_rate": conflict_rate, "num_clients": num_clients,
              "duration_ms": duration_ms, "wide_area": False,
              "server_cpu_ms": server_cpu_ms},
        seed=seed,
    )


def overhead_experiment(write_ratios: Sequence[float] = (0.5, 0.05),
                        conflict_rate: float = 0.10,
                        num_clients: int = 16,
                        duration_ms: float = 5_000.0,
                        server_cpu_ms: float = 0.05,
                        seed: int = 1,
                        jobs: Optional[int] = None, resume: bool = False,
                        cache_dir: Optional[str] = None) -> List[Dict[str, Any]]:
    """§7.4: Gryff-RSC's throughput/latency overhead without wide-area links."""
    sweep = overhead_sweep(write_ratios, conflict_rate, num_clients,
                           duration_ms, server_cpu_ms, seed)
    outcome = run_sweep(sweep, jobs=jobs, resume=resume, cache_dir=cache_dir)
    summaries = outcome.data()
    rows = []
    for index, write_ratio in enumerate(write_ratios):
        row: Dict[str, Any] = {"write_ratio": write_ratio,
                               "conflict_rate": conflict_rate}
        for offset, label in ((0, "gryff"), (1, "gryff_rsc")):
            summary = summaries[index * 2 + offset]
            row[f"{label}_throughput"] = summary["throughput"]
            row[f"{label}_p50_ms"] = summary["combined_p50_ms"]
        gryff_throughput = row["gryff_throughput"]
        if gryff_throughput:
            row["throughput_delta_pct"] = (
                (row["gryff_rsc_throughput"] - gryff_throughput)
                / gryff_throughput * 100.0
            )
        else:
            row["throughput_delta_pct"] = 0.0
        rows.append(row)
    return rows
