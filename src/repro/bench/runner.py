"""Parallel experiment orchestration.

Every figure/table of the paper is a grid of *independent, deterministic*
trials — (variant, skew, client-count, seed) combinations whose simulations
share no state.  This module runs such grids across a process pool so a
paper-scale sweep saturates every core instead of one:

* :class:`TrialSpec` — one trial: a registered *trial type* (a pure function
  from a parameter dict to a compact, picklable result dict), its
  parameters, and its seed.
* :class:`SweepSpec` — a named, ordered collection of trials, usually built
  with :meth:`SweepSpec.grid` (cartesian product over parameter axes).
* :class:`ParallelRunner` — executes a sweep with ``jobs`` worker processes
  (default ``os.cpu_count()``).  ``jobs=1`` is a serial in-process fallback
  that is bit-identical to running the trial functions directly, which is
  exactly what the pre-orchestrator drivers did.  Results always come back
  in trial order, so aggregation is independent of completion order.
* **Results cache** — with ``resume=True`` (or an explicit ``cache_dir``)
  each finished trial is written to
  ``<cache_dir>/<sweep>/<spec-hash>.<code-tag>.json`` keyed on the trial's
  content hash (experiment + params + seed) and a code-version tag, so an
  interrupted sweep resumes instead of recomputing.

Trial functions are addressed as ``"module.path:function"`` dotted paths
(with short aliases in :data:`TRIAL_TYPES`), so worker processes can resolve
them by import regardless of the multiprocessing start method.

Determinism notes: trial functions must derive all randomness from
``params`` (seeds included).  :func:`derive_seed` gives a stable,
platform-independent per-trial seed from a base seed and the trial's
coordinates for sweeps that need distinct seeds per cell.
"""

from __future__ import annotations

import glob
import hashlib
import importlib
import json
import os
import time
import warnings
from concurrent.futures import Future, ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from itertools import product
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "TRIAL_TYPES",
    "register_trial",
    "resolve_trial",
    "derive_seed",
    "default_jobs",
    "TrialSpec",
    "TrialResult",
    "SweepSpec",
    "SweepOutcome",
    "ParallelRunner",
    "run_sweep",
    "DEFAULT_CACHE_DIR",
    "code_version_tag",
]

#: Short aliases for the in-tree trial functions (resolved lazily by import,
#: so this table creates no import cycles).
TRIAL_TYPES: Dict[str, str] = {
    "spanner_retwis": "repro.bench.spanner_experiments:retwis_trial",
    "spanner_load": "repro.bench.spanner_experiments:load_trial",
    "gryff_ycsb": "repro.bench.gryff_experiments:ycsb_trial",
    "appendix_a_example": "repro.bench.appendix_a:example_trial",
    "table1_model": "repro.bench.table1:model_trial",
}

#: Default on-disk location of the resume cache (overridable via the
#: ``REPRO_CACHE_DIR`` environment variable or the ``cache_dir`` argument).
DEFAULT_CACHE_DIR = ".repro_cache"

#: Bump when the cached result format changes.
CACHE_SCHEMA = "repro-trial/1"


def register_trial(name: str, target: str) -> None:
    """Register a short alias for a ``"module:function"`` trial target."""
    if ":" not in target:
        raise ValueError(f"trial target must be 'module:function', got {target!r}")
    TRIAL_TYPES[name] = target


def resolve_trial(experiment: str) -> Callable[[Dict[str, Any]], Dict[str, Any]]:
    """Resolve a trial type (alias or dotted path) to its function."""
    target = TRIAL_TYPES.get(experiment, experiment)
    if ":" not in target:
        raise KeyError(f"unknown trial type {experiment!r} "
                       f"(known: {sorted(TRIAL_TYPES)})")
    module_name, _, attr = target.partition(":")
    module = importlib.import_module(module_name)
    fn = getattr(module, attr)
    if not callable(fn):
        raise TypeError(f"trial target {target!r} is not callable")
    return fn


def derive_seed(base_seed: int, *coordinates: Any) -> int:
    """A stable 63-bit seed derived from a base seed and trial coordinates.

    Uses SHA-256 over a canonical JSON encoding, so the derivation is
    identical across processes, platforms, and ``PYTHONHASHSEED`` values.
    """
    payload = json.dumps([base_seed, list(coordinates)], sort_keys=True,
                         separators=(",", ":"), default=str)
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def default_jobs() -> int:
    """The default worker count: ``REPRO_JOBS`` env var or ``os.cpu_count()``.

    The default is clamped to the available cores — oversubscribing a grid
    of CPU-bound simulations only adds scheduler thrash (PR 2's committed
    ``BENCH_perf.json`` measured exactly that on a 1-core container).  An
    *explicit* ``jobs=`` argument is honored but warned about
    (:class:`ParallelRunner`).
    """
    cores = os.cpu_count() or 1
    env = os.environ.get("REPRO_JOBS")
    if env:
        requested = max(1, int(env))
        if requested > cores:
            warnings.warn(
                f"REPRO_JOBS={requested} exceeds the {cores} available "
                f"core(s); clamping to {cores}",
                RuntimeWarning, stacklevel=2)
            return cores
        return requested
    return cores


#: Sentinel distinguishing frozen dicts from frozen lists, so a parameter
#: that happens to be a list of (str, value) pairs round-trips as a list.
_DICT_TAG = "__dict__"


def _freeze(value: Any) -> Any:
    """Canonicalize a JSON-able parameter value into a hashable form."""
    if isinstance(value, Mapping):
        return (_DICT_TAG,
                tuple(sorted((str(k), _freeze(v)) for k, v in value.items())))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"trial parameters must be JSON-able scalars/lists/dicts, "
                    f"got {type(value).__name__}: {value!r}")


def _thaw(value: Any) -> Any:
    if isinstance(value, tuple):
        if len(value) == 2 and value[0] == _DICT_TAG and isinstance(value[1], tuple):
            return {k: _thaw(v) for k, v in value[1]}
        return [_thaw(item) for item in value]
    return value


@dataclass(frozen=True)
class TrialSpec:
    """One independent trial of an experiment grid."""

    experiment: str
    params: Tuple[Any, ...] = ()
    seed: int = 0

    @classmethod
    def make(cls, experiment: str, params: Optional[Mapping[str, Any]] = None,
             seed: int = 0) -> "TrialSpec":
        return cls(experiment=experiment, params=_freeze(params or {}), seed=seed)

    def param_dict(self) -> Dict[str, Any]:
        return _thaw(self.params) if self.params else {}

    def key(self) -> str:
        """Content hash of (experiment, params, seed) — the cache key."""
        payload = json.dumps(
            {"experiment": self.experiment, "params": self.param_dict(),
             "seed": self.seed},
            sort_keys=True, separators=(",", ":"), default=str)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


@dataclass
class TrialResult:
    """Compact outcome of one trial (always picklable/JSON-able)."""

    spec: TrialSpec
    data: Dict[str, Any]
    elapsed_s: float = 0.0
    cached: bool = False
    worker_pid: int = 0


@dataclass(frozen=True)
class SweepSpec:
    """A named, ordered set of trials (one experiment grid)."""

    name: str
    trials: Tuple[TrialSpec, ...]

    @classmethod
    def grid(cls, name: str, experiment: str,
             axes: Mapping[str, Sequence[Any]],
             base: Optional[Mapping[str, Any]] = None,
             seed: int = 0,
             derive_seeds: bool = False) -> "SweepSpec":
        """Cartesian product over ``axes`` (in the given axis order).

        ``base`` parameters are shared by every trial.  With
        ``derive_seeds=True`` each trial gets a distinct deterministic seed
        from :func:`derive_seed`; otherwise every trial uses ``seed`` (trial
        functions may still fold per-trial parameters into their own seeds,
        as the paper's drivers do).
        """
        names = list(axes)
        trials = []
        for values in product(*(axes[axis] for axis in names)):
            params = dict(base or {})
            params.update(zip(names, values))
            trial_seed = derive_seed(seed, *values) if derive_seeds else seed
            trials.append(TrialSpec.make(experiment, params, seed=trial_seed))
        return cls(name=name, trials=tuple(trials))

    @classmethod
    def of(cls, name: str, trials: Iterable[TrialSpec]) -> "SweepSpec":
        return cls(name=name, trials=tuple(trials))

    def key(self) -> str:
        payload = json.dumps([t.key() for t in self.trials],
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


@dataclass
class SweepOutcome:
    """All trial results of one sweep plus orchestration metadata."""

    sweep: SweepSpec
    results: List[TrialResult]
    jobs: int
    wall_clock_s: float
    cache_hits: int = 0
    cache_misses: int = 0

    def data(self) -> List[Dict[str, Any]]:
        """The trial payloads, in trial order."""
        return [result.data for result in self.results]


def _execute_trial(spec: TrialSpec) -> Tuple[Dict[str, Any], float, int]:
    """Run one trial (worker-side entry point; must stay module-level so it
    is picklable under every multiprocessing start method)."""
    fn = resolve_trial(spec.experiment)
    params = spec.param_dict()
    params["seed"] = spec.seed
    started = time.perf_counter()
    data = fn(params)
    elapsed = time.perf_counter() - started
    if not isinstance(data, dict):
        raise TypeError(f"trial {spec.experiment!r} returned "
                        f"{type(data).__name__}, expected dict")
    return data, elapsed, os.getpid()


def code_version_tag() -> str:
    """A tag identifying the code revision, for cache keys.

    Priority: ``REPRO_CODE_TAG`` env var, then the git commit of the source
    tree, then ``"unversioned"``.  Cached results from other revisions are
    simply not reused.
    """
    env = os.environ.get("REPRO_CODE_TAG")
    if env:
        return env
    try:
        import subprocess

        root = os.path.dirname(os.path.abspath(__file__))
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=root,
            capture_output=True, text=True, timeout=5, check=False)
        if out.returncode == 0 and out.stdout.strip():
            tag = out.stdout.strip()
            # Uncommitted changes run different code than the commit says:
            # suffix a digest of the working-tree diff so results computed
            # by two different dirty states are never confused.
            diff = subprocess.run(
                ["git", "status", "--porcelain"], cwd=root,
                capture_output=True, text=True, timeout=5, check=False)
            if diff.returncode != 0:
                return tag + "-dirty"
            if diff.stdout.strip():
                patch = subprocess.run(
                    ["git", "diff", "HEAD"], cwd=root,
                    capture_output=True, text=True, timeout=5, check=False)
                digest = hashlib.sha256(
                    (diff.stdout + patch.stdout).encode("utf-8")).hexdigest()[:8]
                tag += f"-dirty-{digest}"
            return tag
    except Exception:
        pass
    return "unversioned"


class ParallelRunner:
    """Executes :class:`SweepSpec` grids across a process pool.

    * ``jobs=1`` (or a single-trial sweep) runs serially in-process —
      bit-identical to calling the trial functions directly.
    * ``jobs>1`` fans trials out over ``concurrent.futures
      .ProcessPoolExecutor``; results are collected in submission order.
    * ``resume=True`` enables the on-disk results cache: completed trials
      are loaded from ``cache_dir`` when their (spec hash, seed, code tag)
      matches, and every freshly computed trial is written back, so an
      interrupted sweep continues where it stopped.
    """

    def __init__(self, jobs: Optional[int] = None,
                 resume: bool = False,
                 cache_dir: Optional[str] = None,
                 code_tag: Optional[str] = None,
                 progress: Optional[Callable[[TrialResult, int, int], None]] = None):
        cores = os.cpu_count() or 1
        if jobs is not None and jobs > cores:
            warnings.warn(
                f"--jobs {jobs} exceeds the {cores} available core(s); "
                f"workers will contend for CPU instead of running faster",
                RuntimeWarning, stacklevel=2)
        self.jobs = max(1, jobs if jobs is not None else default_jobs())
        self.resume = resume or cache_dir is not None
        self.cache_dir = (cache_dir or os.environ.get("REPRO_CACHE_DIR")
                          or DEFAULT_CACHE_DIR)
        self._code_tag = code_tag
        self.progress = progress

    @property
    def code_tag(self) -> str:
        if self._code_tag is None:
            self._code_tag = code_version_tag()
        return self._code_tag

    # ------------------------------------------------------------- #
    # Cache plumbing
    # ------------------------------------------------------------- #
    def _cache_path(self, sweep: SweepSpec, spec: TrialSpec) -> str:
        return os.path.join(self.cache_dir, sweep.name,
                            f"{spec.key()}.{self.code_tag}.json")

    def _cache_load(self, sweep: SweepSpec, spec: TrialSpec
                    ) -> Optional[TrialResult]:
        path = self._cache_path(sweep, spec)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if entry.get("schema") != CACHE_SCHEMA or "data" not in entry:
            return None
        return TrialResult(spec=spec, data=entry["data"],
                           elapsed_s=entry.get("elapsed_s", 0.0), cached=True)

    def _cache_store(self, sweep: SweepSpec, spec: TrialSpec,
                     result: TrialResult) -> None:
        path = self._cache_path(sweep, spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA,
            "experiment": spec.experiment,
            "params": spec.param_dict(),
            "seed": spec.seed,
            "code_tag": self.code_tag,
            "elapsed_s": result.elapsed_s,
            "data": result.data,
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(entry, handle, indent=2, default=str)
            handle.write("\n")
        os.replace(tmp, path)

    # ------------------------------------------------------------- #
    def run(self, sweep: SweepSpec) -> SweepOutcome:
        """Execute every trial; results come back in trial order."""
        started = time.perf_counter()
        total = len(sweep.trials)
        results: List[Optional[TrialResult]] = [None] * total
        pending: List[int] = []
        hits = 0
        for index, spec in enumerate(sweep.trials):
            cached = self._cache_load(sweep, spec) if self.resume else None
            if cached is not None:
                results[index] = cached
                hits += 1
                self._report(cached, index, total)
            else:
                pending.append(index)

        if pending:
            if self.jobs <= 1 or len(pending) == 1:
                try:
                    for index in pending:
                        self._finish(sweep, results, index,
                                     _execute_trial(sweep.trials[index]), total)
                except (KeyboardInterrupt, SystemExit):
                    # Every finished trial is already cached (``_finish``
                    # stores before returning); just drop stray temp files.
                    self._remove_stale_tmp(sweep)
                    raise
            else:
                workers = min(self.jobs, len(pending))
                pool = ProcessPoolExecutor(max_workers=workers)
                try:
                    # Consume in completion order so finished trials reach
                    # the resume cache immediately (an interrupt then loses
                    # only in-flight trials); `results` is indexed, so the
                    # returned ordering stays deterministic regardless.
                    futures = {pool.submit(_execute_trial,
                                           sweep.trials[index]): index
                               for index in pending}
                    for future in as_completed(futures):
                        self._finish(sweep, results, futures[future],
                                     future.result(), total)
                except (KeyboardInterrupt, SystemExit):
                    # Graceful shutdown: flush every already-completed trial
                    # to the resume cache, cancel the rest without blocking
                    # on in-flight work, and remove half-written temp files
                    # so ``--resume`` restarts from a clean cache.  The
                    # finally block keeps the cleanup running even if a
                    # second interrupt lands mid-flush.
                    try:
                        self._flush_completed(sweep, results, futures)
                    finally:
                        pool.shutdown(wait=False, cancel_futures=True)
                        self._remove_stale_tmp(sweep)
                    raise
                except BaseException:
                    # A trial raised (or a cache write failed): don't leak
                    # the pool the way a bare re-raise would.
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
                else:
                    pool.shutdown()

        wall = time.perf_counter() - started
        final = [result for result in results if result is not None]
        assert len(final) == total
        return SweepOutcome(sweep=sweep, results=final, jobs=self.jobs,
                            wall_clock_s=wall, cache_hits=hits,
                            cache_misses=len(pending))

    def _flush_completed(self, sweep: SweepSpec,
                         results: List[Optional[TrialResult]],
                         futures: Dict["Future", int]) -> None:
        """Store results of futures that finished but were never consumed
        (an interrupt landed between their completion and ``as_completed``).

        Deliberately bypasses the progress callback: this runs during
        interrupt handling, and user callbacks must not re-raise there.
        """
        for future, index in futures.items():
            if results[index] is not None or not future.done() or future.cancelled():
                continue
            try:
                data, elapsed, pid = future.result(timeout=0)
            except BaseException:
                continue  # the trial itself failed; nothing to cache
            result = TrialResult(spec=sweep.trials[index], data=data,
                                 elapsed_s=elapsed, worker_pid=pid)
            if self.resume:
                try:
                    self._cache_store(sweep, sweep.trials[index], result)
                except Exception:
                    pass  # a cache-write failure must not mask the interrupt
            results[index] = result

    def _remove_stale_tmp(self, sweep: SweepSpec) -> None:
        """Delete this process's interrupted ``.tmp.<pid>`` cache files
        (atomic renames mean our own surviving temp file is always garbage;
        other processes sharing the cache dir own their pid-suffixed files)."""
        if not self.resume:
            return
        pattern = os.path.join(self.cache_dir, sweep.name,
                               f"*.tmp.{os.getpid()}")
        for path in glob.glob(pattern):
            try:
                os.remove(path)
            except OSError:
                pass

    def _finish(self, sweep: SweepSpec, results: List[Optional[TrialResult]],
                index: int, payload: Tuple[Dict[str, Any], float, int],
                total: int) -> None:
        data, elapsed, pid = payload
        result = TrialResult(spec=sweep.trials[index], data=data,
                             elapsed_s=elapsed, worker_pid=pid)
        if self.resume:
            self._cache_store(sweep, sweep.trials[index], result)
        results[index] = result
        self._report(result, index, total)

    def _report(self, result: TrialResult, index: int, total: int) -> None:
        if self.progress is not None:
            self.progress(result, index, total)


def run_sweep(sweep: SweepSpec, jobs: Optional[int] = None,
              resume: bool = False, cache_dir: Optional[str] = None,
              progress: Optional[Callable[[TrialResult, int, int], None]] = None,
              ) -> SweepOutcome:
    """One-shot convenience wrapper around :class:`ParallelRunner`."""
    runner = ParallelRunner(jobs=jobs, resume=resume, cache_dir=cache_dir,
                            progress=progress)
    return runner.run(sweep)
