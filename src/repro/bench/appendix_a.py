"""Appendix A: the example executions separating RSS/RSC from proximal models.

For every example execution (Figures 2 and 9–16) the report runs every model
checker the paper gives a verdict for and compares against the paper.  The
per-example checks are independent, so the report runs them as one sweep
through :mod:`repro.bench.runner` (``jobs=1`` reproduces the serial order).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.bench.reporting import format_table
from repro.bench.runner import SweepSpec, TrialSpec, run_sweep

__all__ = ["appendix_a_report", "example_trial", "appendix_a_sweep"]


def example_trial(params: Dict[str, Any]) -> Dict[str, Any]:
    """Runner trial: verdicts of every relevant checker on one example."""
    from repro.core.checkers import MODELS
    from repro.core.examples import all_examples

    name = params["example"]
    example = next(ex for ex in all_examples() if ex.name == name)
    verdicts: Dict[str, Dict[str, bool]] = {}
    for model, expected in sorted(example.expectations.items()):
        checker = MODELS[model]
        got = bool(checker(example.history, example.spec))
        verdicts[model] = {"expected": expected, "computed": got}
    return {"example": name, "verdicts": verdicts}


def appendix_a_sweep() -> SweepSpec:
    from repro.core.examples import all_examples

    return SweepSpec.of("appendix_a", (
        TrialSpec.make("appendix_a_example", {"example": example.name})
        for example in all_examples()
    ))


def appendix_a_report(jobs: Optional[int] = 1, resume: bool = False,
                      cache_dir: Optional[str] = None) -> Dict[str, Any]:
    """Recompute the Appendix A allowed/forbidden matrix.

    Sub-second workload, so ``jobs`` defaults to 1 (pool startup would
    dominate); pass ``jobs=N`` to fan the examples out anyway.
    """
    outcome = run_sweep(appendix_a_sweep(), jobs=jobs, resume=resume,
                        cache_dir=cache_dir)
    rows: List[List[Any]] = []
    mismatches: List[str] = []
    details: Dict[str, Dict[str, Dict[str, bool]]] = {}
    for trial in outcome.data():
        name = trial["example"]
        verdicts = trial["verdicts"]
        for model in sorted(verdicts):
            expected = verdicts[model]["expected"]
            got = verdicts[model]["computed"]
            if got != expected:
                mismatches.append(f"{name}/{model}")
            rows.append([
                name,
                model,
                "allowed" if expected else "forbidden",
                "allowed" if got else "forbidden",
                "yes" if got == expected else "NO",
            ])
        details[name] = verdicts
    text = format_table(
        ["execution", "model", "paper", "computed", "matches"], rows,
        title="Appendix A — example executions vs consistency models",
    )
    return {"details": details, "mismatches": mismatches, "text": text}
