"""Appendix A: the example executions separating RSS/RSC from proximal models.

For every example execution (Figures 2 and 9–16) the report runs every model
checker the paper gives a verdict for and compares against the paper.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.examples import PaperExample, all_examples
from repro.core.checkers import MODELS
from repro.bench.reporting import format_table

__all__ = ["appendix_a_report"]


def appendix_a_report() -> Dict[str, Any]:
    """Recompute the Appendix A allowed/forbidden matrix."""
    rows: List[List[Any]] = []
    mismatches: List[str] = []
    details: Dict[str, Dict[str, Dict[str, bool]]] = {}
    for example in all_examples():
        verdicts: Dict[str, Dict[str, bool]] = {}
        for model, expected in sorted(example.expectations.items()):
            checker = MODELS[model]
            got = bool(checker(example.history, example.spec))
            verdicts[model] = {"expected": expected, "computed": got}
            if got != expected:
                mismatches.append(f"{example.name}/{model}")
            rows.append([
                example.name,
                model,
                "allowed" if expected else "forbidden",
                "allowed" if got else "forbidden",
                "yes" if got == expected else "NO",
            ])
        details[example.name] = verdicts
    text = format_table(
        ["execution", "model", "paper", "computed", "matches"], rows,
        title="Appendix A — example executions vs consistency models",
    )
    return {"details": details, "mismatches": mismatches, "text": text}
