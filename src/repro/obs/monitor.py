"""The ``repro monitor`` correctness sidecar.

A monitor tails a live trace (rotated sets included) through
:func:`~repro.net.recorder.follow_trace_records`, drives the streaming
consistency checker continuously, and turns the paper's guarantee into an
*operational* signal:

* its own ``/metrics`` endpoint reports the last verdict, the first
  violating epoch, checker lag (wall-clock age of the oldest record not
  yet covered by a closed epoch), and peak heap;
* the first epoch that violates the declared model *outside every known
  fault window* emits one structured alert record (schema
  ``repro-alert/1``), stops the follow loop, and exits non-zero — the
  sidecar contract a supervisor restarts/pages on;
* violations *inside* a declared fault window are expected (the chaos
  engine's own judging rule) and only counted.

Fault windows are scenario-relative millisecond intervals anchored at the
first timestamped record of the trace — the same anchoring the chaos
engine uses (``run_start`` is sampled just before the first operation;
every catalog window carries slack well above the anchoring error).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.http import MetricsServer
from repro.obs.instrument import instrument_checker
from repro.obs.registry import MetricsRegistry

__all__ = ["ALERT_SCHEMA", "MonitorReport", "run_monitor"]

ALERT_SCHEMA = "repro-alert/1"

#: Record fields that carry a trace timestamp, by record type.
_TIME_FIELDS = {"inv": "invoked_at", "op": "invoked_at", "abandon": "at"}


class _ViolationStop(Exception):
    """Internal: the first out-of-window violation ends the follow loop."""


@dataclass
class MonitorReport:
    """Everything one monitor run observed, plus its exit code."""

    trace: str
    protocol: Optional[str] = None
    model: Optional[str] = None
    records: int = 0
    ops_checked: int = 0
    epochs: int = 0
    satisfied: bool = True
    violations: List[str] = field(default_factory=list)
    violations_outside_windows: List[str] = field(default_factory=list)
    fault_windows: List[Tuple[float, float]] = field(default_factory=list)
    alert: Optional[Dict[str, Any]] = None
    interrupted: bool = False
    exit_code: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace": self.trace,
            "protocol": self.protocol,
            "model": self.model,
            "records": self.records,
            "operations": self.ops_checked,
            "epochs": self.epochs,
            "satisfied": self.satisfied,
            "violations": list(self.violations),
            "violations_outside_windows":
                list(self.violations_outside_windows),
            "fault_windows": [list(w) for w in self.fault_windows],
            "alert": self.alert,
            "interrupted": self.interrupted,
            "exit_code": self.exit_code,
        }


class _MetricsThread(threading.Thread):
    """Serve /metrics on a private asyncio loop beside the follow loop.

    The follow loop is a synchronous generator (it blocks in ``sleep``
    between polls), so the endpoint gets its own thread + event loop —
    scrapes stay responsive however long the checker chews on an epoch.
    """

    def __init__(self, registry: MetricsRegistry, host: str, port: int):
        super().__init__(name="repro-monitor-metrics", daemon=True)
        self._registry = registry
        self._host = host
        self._port = port
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self.bound_port: Optional[int] = None
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as exc:  # pragma: no cover - defensive
            self.error = exc
            self._ready.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        server = MetricsServer(self._registry, host=self._host,
                               port=self._port)
        try:
            self.bound_port = await server.start()
        except OSError as exc:
            self.error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._shutdown.wait()
        await server.close()

    def start_and_wait(self) -> int:
        self.start()
        self._ready.wait(timeout=10.0)
        if self.error is not None:
            raise RuntimeError(
                f"cannot serve monitor metrics: {self.error}")
        if self.bound_port is None:
            raise RuntimeError("monitor metrics endpoint did not start")
        return self.bound_port

    def stop(self) -> None:
        if self._loop is not None and self._shutdown is not None:
            self._loop.call_soon_threadsafe(self._shutdown.set)
        self.join(timeout=5.0)


def _record_time(record: Dict[str, Any]) -> Optional[float]:
    fname = _TIME_FIELDS.get(record.get("type"))
    if fname is None:
        return None
    value = record.get(fname)
    return float(value) if value is not None else None


def _overlaps(start: Optional[float], end: Optional[float],
              windows: Sequence[Tuple[float, float]]) -> bool:
    lo = start if start is not None else 0.0
    hi = end if end is not None else float("inf")
    return any(lo <= w_end and hi >= w_start for w_start, w_end in windows)


def run_monitor(
    trace,
    *,
    protocol: Optional[str] = None,
    model: Optional[str] = None,
    min_epoch_ops: int = 64,
    poll_interval: float = 0.2,
    max_poll_interval: Optional[float] = 2.0,
    backoff: float = 2.0,
    idle_timeout: Optional[float] = None,
    stop: Optional[Callable[[], bool]] = None,
    fault_windows: Sequence[Tuple[float, float]] = (),
    metrics_port: Optional[int] = None,
    metrics_host: str = "127.0.0.1",
    registry: Optional[MetricsRegistry] = None,
    alert_path: Optional[str] = None,
    on_verdict: Optional[Callable[[Any], None]] = None,
    _clock: Callable[[], float] = time.time,
) -> MonitorReport:
    """Tail ``trace`` and check it continuously; see the module docstring.

    ``trace`` is one path or a sequence of paths; several traces (one per
    load generator of a fleet run) are merged by timestamp into the single
    global record stream the checker consumes
    (:func:`~repro.net.recorder.merge_record_streams`).  ``fault_windows``
    are scenario-relative ``(start_ms, end_ms)`` intervals anchored at the
    trace's first timestamped record.  ``metrics_port`` (0 = ephemeral)
    serves the monitor's own ``/metrics``; the bound server runs until the
    monitor returns.  Exit codes in the report: 0 clean, 1 out-of-window
    violation (``alert`` is set), 2 unusable trace.
    """
    from repro.net.check import (
        check_record_stream,
        default_model_for,
        streaming_checker_for,
    )
    from repro.net.recorder import follow_trace_records, merge_record_streams

    traces = [trace] if isinstance(trace, str) else list(trace)
    trace_label = traces[0] if len(traces) == 1 else ",".join(traces)
    report = MonitorReport(trace=trace_label, protocol=protocol, model=model)
    registry = registry if registry is not None else MetricsRegistry()

    # Checker-lag bookkeeping: the wall instant the oldest record not yet
    # covered by a closed epoch was seen by the monitor.
    state = {"pending": 0, "pending_since": 0.0, "anchor": None}
    windows_relative = [(float(s), float(e)) for s, e in fault_windows]
    windows_absolute: List[Tuple[float, float]] = []

    def lag_seconds() -> float:
        if state["pending"] == 0:
            return 0.0
        return max(0.0, _clock() - state["pending_since"])

    records_total = registry.counter(
        "repro_monitor_records_total", "Trace records the monitor consumed.")
    alerts_total = registry.counter(
        "repro_monitor_alerts_total", "Out-of-window violation alerts.")
    registry.gauge(
        "repro_monitor_following", "1 while the follow loop is running.",
    ).set_function(lambda: 1.0)

    def observed(stream):
        for record in stream:
            report.records += 1
            records_total.inc()
            stamp = _record_time(record)
            if stamp is not None and state["anchor"] is None:
                state["anchor"] = stamp
                windows_absolute.extend(
                    (stamp + s, stamp + e) for s, e in windows_relative)
                report.fault_windows = [
                    (round(s, 3), round(e, 3)) for s, e in windows_absolute]
            if record.get("type") in _TIME_FIELDS:
                if state["pending"] == 0:
                    state["pending_since"] = _clock()
                state["pending"] += 1
            yield record

    closing = [False]

    def handle_verdict(verdict: Any) -> None:
        state["pending"] = 0
        if on_verdict is not None:
            on_verdict(verdict)
        if verdict.satisfied is not False:
            return
        report.violations.append(verdict.describe())
        if _overlaps(verdict.start_time, verdict.end_time, windows_absolute):
            return
        report.violations_outside_windows.append(verdict.describe())
        if report.alert is not None:
            return
        alerts_total.inc()
        report.alert = {
            "type": "alert",
            "schema": ALERT_SCHEMA,
            "trace": trace_label,
            "protocol": report.protocol,
            "model": verdict.model,
            "epoch": {
                "index": verdict.index,
                "ops": verdict.ops,
                "start_time": verdict.start_time,
                "end_time": verdict.end_time,
                "reason": verdict.reason,
                "op_ids": sorted(verdict.op_ids)[:64],
            },
            "fault_windows": [list(w) for w in windows_absolute],
            "wall_time": _clock(),
        }
        _emit_alert(report.alert, alert_path)
        if not closing[0]:
            raise _ViolationStop

    metrics_thread: Optional[_MetricsThread] = None
    if metrics_port is not None:
        metrics_thread = _MetricsThread(registry, metrics_host, metrics_port)
        metrics_thread.start_and_wait()

    checker = None
    try:
        if len(traces) == 1:
            records = iter(follow_trace_records(
                traces[0], poll_interval=poll_interval,
                idle_timeout=idle_timeout, stop=stop,
                max_poll_interval=max_poll_interval, backoff=backoff))
        else:
            records = iter(merge_record_streams(
                traces, poll_interval=poll_interval,
                idle_timeout=idle_timeout, stop=stop,
                max_poll_interval=max_poll_interval, backoff=backoff))
        try:
            first = next(records, None)
            if first is not None:
                declared = None
                if first.get("type") == "meta":
                    report.protocol = report.protocol or first.get("protocol")
                    declared = first.get("model") or _declared_model(first)
                if not report.protocol:
                    report.exit_code = 2
                    return report
                report.model = (model or declared
                                or default_model_for(report.protocol))
                checker = streaming_checker_for(
                    report.protocol, report.model,
                    min_epoch_ops=min_epoch_ops, on_verdict=handle_verdict)
                instrument_checker(registry, checker,
                                   lag_seconds=lag_seconds)
                check_record_stream(
                    observed(itertools.chain([first], records)), checker)
        except _ViolationStop:
            pass
        except KeyboardInterrupt:
            report.interrupted = True
        if checker is None:
            report.exit_code = 2
            return report
        # The close-time final epoch may still produce the first violation;
        # the flag keeps its callback from raising mid-close.
        closing[0] = True
        stream_report = checker.close()
        report.ops_checked = stream_report.ops_checked
        report.epochs = stream_report.epochs
        report.satisfied = stream_report.satisfied
        report.exit_code = 1 if report.alert is not None else 0
        return report
    finally:
        if metrics_thread is not None:
            metrics_thread.stop()


def _declared_model(meta: Dict[str, Any]) -> Optional[str]:
    """The checker model for the trace's declared consistency level."""
    level = meta.get("level")
    if not level:
        return None
    from repro.api.levels import ConsistencyLevel

    try:
        return ConsistencyLevel.parse(level).checker_model
    except ValueError:
        return None


def _emit_alert(alert: Dict[str, Any], alert_path: Optional[str]) -> None:
    line = json.dumps(alert, sort_keys=True)
    if alert_path:
        with open(alert_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
    print(f"repro-monitor ALERT {line}", file=sys.stderr, flush=True)
