"""A dependency-free metrics registry with Prometheus text exposition.

Three metric kinds, mirroring the subset of the Prometheus data model the
runtime needs:

* :class:`Counter` — a monotonically increasing total.  Besides ``inc()``,
  a counter may be bound to a *collector callback* reading an existing
  monotonic attribute at scrape time (``set_function``) — the pattern every
  hot-path integer in the codebase already follows (``messages_sent``,
  ``stats["commits"]``, ``FaultController.dropped``), which is what makes
  instrumentation zero-overhead: nothing new runs per operation, the
  registry reads the numbers the code was already keeping when scraped.
* :class:`Gauge` — a value that goes up and down (queue depth, checker lag,
  active faults), settable directly or via a callback.
* :class:`WindowedHistogram` — latency percentiles over the *current
  observation window*, built on
  :meth:`repro.sim.stats.LatencyRecorder.window_snapshot`: each scrape
  reports streaming p50/p95/p99 of the samples since the previous scrape
  (rendered as a Prometheus summary) plus cumulative ``_count``/``_sum``,
  and then resets the window — per-interval percentiles never re-sort the
  whole run's samples.

A scrape (:meth:`MetricsRegistry.render`) never raises on a broken
collector: a callback whose underlying object died (a crashed node mid
chaos scenario) is skipped for that scrape and the endpoint stays
scrapeable; ``render_errors`` counts the skips.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.stats import LatencyRecorder

__all__ = ["Counter", "Gauge", "WindowedHistogram", "MetricsRegistry"]

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _format_labels(key: _LabelKey, extra: Sequence[Tuple[str, str]] = ()
                   ) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label_value(value)}"'
                     for name, value in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


class _Metric:
    """Common bookkeeping: name, help text, per-labelset values/callbacks."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._values: Dict[_LabelKey, float] = {}
        self._callbacks: Dict[_LabelKey, Callable[[], float]] = {}

    def set_function(self, fn: Callable[[], float], **labels: Any) -> None:
        """Bind a labelset to a collector callback evaluated at scrape time."""
        self._callbacks[_label_key(labels)] = fn

    def value(self, **labels: Any) -> Optional[float]:
        """The labelset's current value (callbacks are evaluated)."""
        key = _label_key(labels)
        fn = self._callbacks.get(key)
        if fn is not None:
            return float(fn())
        return self._values.get(key)

    def _samples(self, errors: List[int]) -> List[Tuple[_LabelKey, float]]:
        samples: Dict[_LabelKey, float] = dict(self._values)
        for key, fn in self._callbacks.items():
            try:
                samples[key] = float(fn())
            except Exception:
                # The collector's object is gone (crashed node mid-scenario);
                # the scrape must survive it.
                errors[0] += 1
                samples.pop(key, None)
        return sorted(samples.items())

    def render(self, errors: List[int]) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for key, value in self._samples(errors):
            lines.append(f"{self.name}{_format_labels(key)} "
                         f"{_format_value(value)}")
        return lines

    def as_dict(self, errors: List[int]) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "values": {_format_labels(key) or "": value
                       for key, value in self._samples(errors)},
        }


class Counter(_Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)


class WindowedHistogram:
    """Windowed latency percentiles rendered as a Prometheus summary.

    ``observe`` records into a private :class:`LatencyRecorder` (one
    category per labelset); a scrape reports the window's streaming
    p50/p95/p99 plus cumulative ``_count``/``_sum`` and (by default via
    :meth:`MetricsRegistry.render`) resets the window, so each scrape
    interval gets its own percentiles without re-sorting history.
    """

    kind = "summary"
    _QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._recorder = LatencyRecorder()
        self._categories: Dict[str, _LabelKey] = {}
        self._totals: Dict[str, Tuple[int, float]] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        category = _format_labels(key) or ""
        self._categories.setdefault(category, key)
        self._recorder.record_latency(category, value)
        count, total = self._totals.get(category, (0, 0.0))
        self._totals[category] = (count + 1, total + value)

    def set_function(self, fn: Callable[[], float], **labels: Any) -> None:
        raise TypeError("histograms are observation-driven; use observe()")

    def value(self, **labels: Any) -> Optional[float]:
        """Cumulative observation count for the labelset."""
        category = _format_labels(_label_key(labels)) or ""
        totals = self._totals.get(category)
        return float(totals[0]) if totals else None

    def reset_window(self) -> None:
        self._recorder.reset_window()

    def render(self, errors: List[int]) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for category in sorted(self._categories):
            key = self._categories[category]
            window = self._recorder.window_snapshot(category)
            if window is not None:
                for quantile, field in self._QUANTILES:
                    labels = _format_labels(key, [("quantile", quantile)])
                    lines.append(f"{self.name}{labels} "
                                 f"{_format_value(window[field])}")
            count, total = self._totals.get(category, (0, 0.0))
            suffix = _format_labels(key)
            lines.append(f"{self.name}_count{suffix} {count}")
            lines.append(f"{self.name}_sum{suffix} {_format_value(total)}")
        return lines

    def as_dict(self, errors: List[int]) -> Dict[str, Any]:
        values: Dict[str, Any] = {}
        for category in sorted(self._categories):
            count, total = self._totals.get(category, (0, 0.0))
            entry: Dict[str, Any] = {"count": count, "sum": total}
            window = self._recorder.window_snapshot(category)
            if window is not None:
                entry["window"] = window
            values[category] = entry
        return {"type": self.kind, "values": values}


class MetricsRegistry:
    """A named collection of metrics with one text exposition endpoint.

    ``counter``/``gauge``/``histogram`` are get-or-create (idempotent by
    name), so independent subsystems can instrument the same family —
    re-registering with a different kind raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}
        #: Collector callbacks skipped across all scrapes so far.
        self.render_errors = 0

    # -------------------------------------------------------------- #
    def _get_or_create(self, name: str, help: str, cls) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help=help)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}")
        if help and not metric.help:
            metric.help = help
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, help, Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, help, Gauge)

    def histogram(self, name: str, help: str = "") -> WindowedHistogram:
        return self._get_or_create(name, help, WindowedHistogram)

    def get(self, name: str) -> Optional[Any]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    # -------------------------------------------------------------- #
    def render(self, reset_windows: bool = True) -> str:
        """The registry in Prometheus text exposition format (0.0.4).

        ``reset_windows`` starts a fresh histogram observation window after
        rendering (the /metrics endpoints' behavior: each scrape interval
        gets its own percentiles); pass ``False`` for a read-only peek.
        """
        errors = [0]
        lines: List[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].render(errors))
        if reset_windows:
            for metric in self._metrics.values():
                if isinstance(metric, WindowedHistogram):
                    metric.reset_window()
        self.render_errors += errors[0]
        return "\n".join(lines) + ("\n" if lines else "")

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot (``repro load --json`` metrics section).

        Histogram windows are left intact — reading the dict is a peek,
        not a scrape.
        """
        errors = [0]
        payload = {name: metric.as_dict(errors)
                   for name, metric in sorted(self._metrics.items())}
        self.render_errors += errors[0]
        return payload
