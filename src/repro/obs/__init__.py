"""Production observability: metrics, /metrics endpoints, and the monitor.

The package is deliberately layered so each piece is usable alone:

* :mod:`repro.obs.registry` — dependency-free counters, gauges, and
  windowed histograms with Prometheus text exposition;
* :mod:`repro.obs.http` — a stdlib-asyncio ``/metrics`` endpoint;
* :mod:`repro.obs.instrument` — scrape-time collectors binding the
  registry to transports, protocol nodes, WALs, leases, fault
  controllers, and streaming checkers;
* :mod:`repro.obs.backpressure` — admission control for new sessions
  driven by checker lag / queue depth;
* :mod:`repro.obs.monitor` — the ``repro monitor`` correctness sidecar.

Attaching a registry is always opt-in; with none attached every runtime
code path is byte-identical to the uninstrumented build.
"""

from repro.obs.backpressure import AdmissionController, BackpressureError
from repro.obs.http import CONTENT_TYPE, MetricsServer, scrape
from repro.obs.instrument import (
    instrument_checker,
    instrument_fault_controller,
    instrument_node,
    instrument_process,
    instrument_transport,
    peak_rss_bytes,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    MetricsRegistry,
    WindowedHistogram,
)

__all__ = [
    "AdmissionController",
    "BackpressureError",
    "CONTENT_TYPE",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "MetricsServer",
    "WindowedHistogram",
    "instrument_checker",
    "instrument_fault_controller",
    "instrument_node",
    "instrument_process",
    "instrument_transport",
    "peak_rss_bytes",
    "scrape",
]
