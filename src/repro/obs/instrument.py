"""Wiring between the metrics registry and the runtime's hot paths.

Almost everything here is a *scrape-time collector*: the runtime already
keeps the interesting numbers (``LiveTransport.messages_sent``,
``node.stats["commits"]``, ``FaultController.dropped``,
``WriteAheadLog.seq``, ``LeaderLease.transitions``), so instrumentation
binds registry metrics to callbacks that read them when ``/metrics`` is
scraped.  Nothing new runs per operation — the zero-overhead-when-disabled
guarantee is structural, not best-effort.

The two exceptions, where a value must be *measured* rather than read:

* WAL append latency — :attr:`WriteAheadLog.on_append_latency` is set to a
  histogram observer (the attribute is ``None`` by default and the append
  path skips timing entirely in that case);
* streaming-checker verdicts — the checker's ``on_verdict`` callback is
  wrapped to count epochs by outcome.

Every ``instrument_*`` function accepts either the object itself or a
zero-argument *getter* for it: chaos scenarios replace processes and node
objects on crash/restart, and a getter reading through the owning dict
keeps following the live instance.  A getter whose target is mid-restart
may raise; the registry skips that collector for the scrape and the
endpoint stays up.
"""

from __future__ import annotations

import resource
from typing import Any, Callable, Optional

from repro.obs.registry import MetricsRegistry

__all__ = [
    "instrument_transport",
    "instrument_node",
    "instrument_fault_controller",
    "instrument_checker",
    "instrument_fleet",
    "instrument_process",
    "peak_rss_bytes",
]


def _getter(target: Any) -> Callable[[], Any]:
    """Normalize object-or-getter arguments to a getter."""
    return target if callable(target) else (lambda: target)


def peak_rss_bytes() -> float:
    """This process's peak resident set size in bytes."""
    # ru_maxrss is kilobytes on Linux (bytes on macOS; the factor is only
    # cosmetic there and these metrics are best-effort).
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024.0


def instrument_transport(registry: MetricsRegistry, transport: Any,
                         node: str = "process") -> None:
    """Bind a :class:`~repro.net.transport.LiveTransport`'s counters."""
    get = _getter(transport)
    messages = registry.counter(
        "repro_transport_messages_total",
        "Protocol messages through the transport by direction.")
    messages.set_function(lambda: get().messages_sent,
                          node=node, direction="out")
    messages.set_function(lambda: get().messages_received,
                          node=node, direction="in")
    wire_bytes = registry.counter(
        "repro_transport_bytes_total",
        "Wire bytes (length prefix + JSON or binary body) by direction.")
    wire_bytes.set_function(lambda: get().bytes_sent,
                            node=node, direction="out")
    wire_bytes.set_function(lambda: get().bytes_received,
                            node=node, direction="in")
    frames = registry.counter(
        "repro_transport_frames_total",
        "Wire frames by direction; one v2 batch frame carries many "
        "messages, so frames out / messages framed is the batching factor.")
    frames.set_function(lambda: get().frames_sent,
                        node=node, direction="out")
    frames.set_function(lambda: get().frames_received,
                        node=node, direction="in")
    registry.counter(
        "repro_transport_batches_total",
        "Batch writes (one flush each) on outbound channels.",
    ).set_function(lambda: get().batches_sent, node=node)
    registry.counter(
        "repro_transport_messages_framed_total",
        "Messages carried by outbound frames (local loopback excluded).",
    ).set_function(lambda: get().messages_framed, node=node)
    registry.counter(
        "repro_transport_reconnects_total",
        "Successful redials of previously connected peer channels.",
    ).set_function(lambda: get().reconnects, node=node)
    registry.gauge(
        "repro_transport_queue_depth",
        "Messages queued toward peers but not yet written to a socket.",
    ).set_function(lambda: get().queue_depth(), node=node)


def instrument_node(registry: MetricsRegistry, name: str,
                    node: Any) -> None:
    """Bind one protocol node's op counters, WAL, and lease.

    Works for both :class:`~repro.gryff.replica.GryffReplica` and
    :class:`~repro.spanner.shard.ShardLeader` — whatever keys the node's
    ``stats`` dict carries become ``op=`` labels.  Pass a getter to follow
    crash/restart replacements of the node object.
    """
    get = _getter(node)
    current = get()
    ops = registry.counter(
        "repro_node_ops_total",
        "Protocol operations handled by each node, by type.")
    for key in sorted(getattr(current, "stats", {})):
        ops.set_function(
            (lambda k: lambda: get().stats[k])(key), node=name, op=key)
    if getattr(current, "wal", None) is not None:
        registry.counter(
            "repro_wal_appends_total",
            "Durable WAL records appended (monotonic across checkpoints).",
        ).set_function(lambda: get().wal.seq, node=name)
        histogram = registry.histogram(
            "repro_wal_append_latency_ms",
            "Write+flush+fsync latency of one WAL append, milliseconds.")
        current.wal.on_append_latency = (
            lambda ms: histogram.observe(ms, node=name))
    if getattr(current, "lease", None) is not None:
        registry.gauge(
            "repro_lease_term",
            "Current lease term of the shard's leader lease.",
        ).set_function(lambda: get().lease.term, node=name)
        registry.counter(
            "repro_lease_transitions_total",
            "Lease holder changes (acquisitions and failovers).",
        ).set_function(lambda: len(get().lease.transitions), node=name)


def instrument_fault_controller(registry: MetricsRegistry,
                                faults: Any) -> None:
    """Bind a :class:`~repro.chaos.faults.FaultController`'s state."""
    get = _getter(faults)
    injected = registry.counter(
        "repro_faults_injected_total",
        "Messages dropped or delayed by the fault controller.")
    injected.set_function(lambda: get().dropped, effect="dropped")
    injected.set_function(lambda: get().delayed, effect="delayed")
    registry.gauge(
        "repro_faults_active",
        "Whether any fault (partition, isolation, rule) is installed.",
    ).set_function(lambda: float(get().active))
    installed = registry.gauge(
        "repro_faults_installed",
        "Installed fault state by kind (partitions, isolated names, rules).")
    for kind in ("partitions", "isolated", "rules"):
        installed.set_function(
            (lambda k: lambda: get().gauges()[k])(kind), kind=kind)


def instrument_checker(registry: MetricsRegistry, checker: Any,
                       lag_seconds: Optional[Callable[[], float]] = None
                       ) -> None:
    """Bind a streaming checker: verdict counters + stream gauges.

    Wraps the checker's existing ``on_verdict`` callback (preserving it) to
    count epochs by outcome and track the last/violating epoch index.
    ``lag_seconds`` — supplied by whoever owns the wall clock for the
    record stream (the monitor sidecar, the live load pipeline) — becomes
    the ``repro_checker_lag_seconds`` gauge.
    """
    verdicts = registry.counter(
        "repro_checker_epoch_verdicts_total",
        "Closed epochs by verdict outcome.")
    last_epoch = registry.gauge(
        "repro_checker_last_epoch",
        "Index of the most recently closed epoch (-1 before the first).")
    last_epoch.set(-1)
    violating = registry.gauge(
        "repro_checker_violating_epoch",
        "Index of the first violating epoch (-1 while clean).")
    violating.set(-1)
    last_ok = registry.gauge(
        "repro_checker_last_verdict_ok",
        "1 when the most recent epoch satisfied the model, else 0.")
    previous = checker._on_verdict

    def _counting(verdict: Any) -> None:
        verdicts.inc(outcome="ok" if verdict.satisfied else "violation")
        last_epoch.set(verdict.index)
        last_ok.set(1.0 if verdict.satisfied else 0.0)
        if not verdict.satisfied and violating.value() == -1:
            violating.set(verdict.index)
        if previous is not None:
            previous(verdict)

    checker._on_verdict = _counting
    stream = checker._stream
    registry.counter(
        "repro_checker_ops_total",
        "Operations folded into the streaming checker.",
    ).set_function(lambda: stream.ops_seen)
    registry.counter(
        "repro_checker_epochs_total",
        "Quiescent epochs cut by the segment stream.",
    ).set_function(lambda: stream.segments_emitted)
    registry.gauge(
        "repro_checker_max_epoch_ops",
        "Largest epoch the checker has had to verify at once.",
    ).set_function(lambda: stream.max_segment_ops)
    registry.gauge(
        "repro_process_peak_rss_bytes",
        "Peak resident set size of the observing process.",
    ).set_function(peak_rss_bytes)
    if lag_seconds is not None:
        registry.gauge(
            "repro_checker_lag_seconds",
            "Wall-clock age of the oldest record not yet covered by a "
            "closed epoch.",
        ).set_function(lag_seconds)


def instrument_fleet(registry: MetricsRegistry, store: Any,
                     controller: Any = None) -> None:
    """Bind a :class:`~repro.api.store.FleetStore`'s routing state.

    All scrape-time collectors over the store's live
    :class:`~repro.fleet.ring.PlacementMap` and
    :class:`~repro.fleet.client.OpTracker`; ``controller`` (a
    :class:`~repro.fleet.migration.MigrationController`, optional) adds the
    migration progress counters.
    """
    get = _getter(store)
    registry.gauge(
        "repro_fleet_placement_epoch",
        "Version of the live placement map (bumped by each range flip).",
    ).set_function(lambda: get().placement.version)
    registry.gauge(
        "repro_fleet_groups",
        "Shard groups in the fleet topology.",
    ).set_function(lambda: len(get().fleet.groups))
    registry.gauge(
        "repro_fleet_placement_ranges",
        "Contiguous ranges in the live placement map.",
    ).set_function(lambda: len(get().placement.ranges()))
    routed = registry.counter(
        "repro_fleet_routed_ops_total",
        "Client operations routed to each owning group.")
    for gid in get().fleet.group_ids():
        routed.set_function(
            (lambda g: lambda: get().tracker.routed_ops.get(g, 0))(gid),
            group=gid)
    registry.gauge(
        "repro_fleet_frozen",
        "1 while any range is fenced for a migration flip, else 0.",
    ).set_function(lambda: float(get().placement.has_frozen()))
    registry.gauge(
        "repro_fleet_inflight_ops",
        "Client operations currently holding a drain token.",
    ).set_function(lambda: len(get().tracker.active_tokens()))
    registry.counter(
        "repro_fleet_mirrored_installs_total",
        "Dual-write installs clients performed during migration windows.",
    ).set_function(lambda: get().tracker.mirrored_installs)
    registry.counter(
        "repro_fleet_client_pauses_total",
        "Operations that waited at a migration fence.",
    ).set_function(lambda: len(get().tracker.client_pause_ms))
    if controller is not None:
        get_controller = _getter(controller)
        registry.counter(
            "repro_fleet_migrations_total",
            "Key-range migrations completed by the controller.",
        ).set_function(lambda: len(get_controller().migrations))
        registry.gauge(
            "repro_fleet_last_migration_pause_ms",
            "Freeze-to-unfreeze pause of the most recent migration, ms.",
        ).set_function(
            lambda: (get_controller().migrations[-1]["pause_ms"]
                     if get_controller().migrations else 0.0))


def instrument_process(registry: MetricsRegistry, process: Any,
                       label: Optional[str] = None) -> None:
    """Wire one :class:`~repro.net.cluster.LiveProcess` end to end.

    Pass a getter to follow a process slot that chaos may kill and
    rebuild (the fresh instance's transport, nodes, and WALs are picked up
    at the next scrape; the WAL latency observer re-attaches to whatever
    WAL the *current* node object carries).
    """
    get = _getter(process)
    current = get()
    if label is None:
        label = ("+".join(current.host_names) if current.host_names
                 else "client")
    instrument_transport(registry, lambda: get().transport, node=label)
    for name in list(current.nodes):
        instrument_node(registry, name,
                        (lambda n: lambda: get().nodes[n])(name))
    if current.transport.faults is not None:
        instrument_fault_controller(
            registry, lambda: get().transport.faults)
