"""Admission control driven by observability signals.

The monitor sidecar proves the cluster is still upholding its declared
consistency level, but proof lags reality: if the checker falls behind
(verdict lag grows) or the transport backs up (send queues deepen), the
cluster is accepting work faster than it can either serve or *verify* it.
:class:`AdmissionController` turns those two signals into an admission
decision for **new sessions** — existing sessions keep running; the store
simply refuses (or delays) new entrants until the cluster catches up.

The hook sits in :meth:`repro.api.store.LiveStore.session`: a store's
``admission`` attribute is ``None`` by default (the zero-overhead pattern —
no controller, no check, byte-identical behavior), and when set the store
calls :meth:`admit` before minting each session.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

__all__ = ["BackpressureError", "AdmissionController"]


class BackpressureError(RuntimeError):
    """A new session was shed because the cluster is overloaded."""

    def __init__(self, reason: str):
        super().__init__(f"admission refused: {reason}")
        self.reason = reason


class AdmissionController:
    """Shed or delay new sessions when observability signals cross thresholds.

    ``checker_lag_s`` and ``queue_depth`` are zero-argument callables read at
    admission time (the same scrape-time collector style the metrics
    registry uses); either may be ``None`` when that signal is unavailable.
    ``delay`` — an optional callable invoked with the overload reason —
    turns shedding into cooperative delay: when it is set, :meth:`admit`
    calls it instead of raising, and the caller (e.g. a load generator's
    think-time hook) decides how to back off.
    """

    def __init__(self,
                 max_checker_lag_s: Optional[float] = None,
                 max_queue_depth: Optional[int] = None,
                 checker_lag_s: Optional[Callable[[], float]] = None,
                 queue_depth: Optional[Callable[[], int]] = None,
                 delay: Optional[Callable[[str], None]] = None):
        self.max_checker_lag_s = max_checker_lag_s
        self.max_queue_depth = max_queue_depth
        self.checker_lag_s = checker_lag_s
        self.queue_depth = queue_depth
        self.delay = delay
        #: Sessions refused (raised) / delayed (handed to ``delay``).
        self.shed = 0
        self.delayed = 0
        self.admitted = 0

    def overloaded(self) -> Optional[str]:
        """The active overload reason, or ``None`` when within thresholds."""
        if (self.max_checker_lag_s is not None
                and self.checker_lag_s is not None):
            lag = self.checker_lag_s()
            if lag > self.max_checker_lag_s:
                return (f"checker lag {lag:.1f}s exceeds "
                        f"{self.max_checker_lag_s:.1f}s")
        if self.max_queue_depth is not None and self.queue_depth is not None:
            depth = self.queue_depth()
            if depth > self.max_queue_depth:
                return (f"transport queue depth {depth} exceeds "
                        f"{self.max_queue_depth}")
        return None

    def admit(self) -> None:
        """Gate one new session: pass, delay, or raise
        :class:`BackpressureError`."""
        reason = self.overloaded()
        if reason is None:
            self.admitted += 1
            return
        if self.delay is not None:
            self.delayed += 1
            self.delay(reason)
            return
        self.shed += 1
        raise BackpressureError(reason)

    def counters(self) -> Dict[str, int]:
        return {"admitted": self.admitted, "shed": self.shed,
                "delayed": self.delayed}
