"""A minimal /metrics HTTP endpoint on ``asyncio.start_server``.

Serves one :class:`~repro.obs.registry.MetricsRegistry` in Prometheus text
exposition format.  Deliberately tiny — HTTP/1.0 semantics, one request per
connection, two routes — because the only clients are a scraper and
``curl``; anything richer would drag in dependencies the repo does not
have.

Routes:

* ``GET /metrics`` — the registry rendered as text 0.0.4.  Each scrape
  resets histogram observation windows, so consecutive scrapes report
  per-interval percentiles.
* ``GET /healthz`` — ``ok`` (liveness for the CI smoke job).
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.obs.registry import MetricsRegistry

__all__ = ["MetricsServer", "CONTENT_TYPE", "scrape"]

#: Prometheus text exposition content type (format version 0.0.4).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_MAX_REQUEST_BYTES = 16 * 1024


class MetricsServer:
    """Serve a registry's /metrics over a loopback HTTP endpoint."""

    def __init__(self, registry: MetricsRegistry, host: str = "127.0.0.1",
                 port: int = 0):
        self.registry = registry
        self.host = host
        self.port = port          # 0 → ephemeral; updated by start()
        self._server: Optional[asyncio.AbstractServer] = None
        #: Requests served (any route), for tests and self-observation.
        self.requests = 0

    async def start(self) -> int:
        """Bind and start serving; returns the bound port."""
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def close(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    # ------------------------------------------------------------------ #
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request_line = await reader.readline()
            # Drain headers so well-behaved clients aren't reset mid-send.
            drained = len(request_line)
            while drained < _MAX_REQUEST_BYTES:
                line = await reader.readline()
                drained += len(line)
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) >= 2 else ""
            method = parts[0] if parts else ""
            if method not in ("GET", "HEAD"):
                status, body = "405 Method Not Allowed", b"method not allowed\n"
            elif path.split("?", 1)[0] == "/metrics":
                status = "200 OK"
                body = self.registry.render(reset_windows=True).encode("utf-8")
            elif path.split("?", 1)[0] == "/healthz":
                status, body = "200 OK", b"ok\n"
            else:
                status, body = "404 Not Found", b"not found\n"
            self.requests += 1
            header = (
                f"HTTP/1.0 {status}\r\n"
                f"Content-Type: {CONTENT_TYPE}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            ).encode("latin-1")
            writer.write(header + (b"" if method == "HEAD" else body))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass


async def scrape(host: str, port: int, path: str = "/metrics",
                 timeout: float = 5.0) -> str:
    """Fetch one endpoint's body (test/CI helper; no HTTP client deps)."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout)
    try:
        writer.write(f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n"
                     .encode("latin-1"))
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown
            pass
    text = raw.decode("utf-8", "replace")
    head, sep, body = text.partition("\r\n\r\n")
    if not sep:
        head, _, body = text.partition("\n\n")
    status = head.splitlines()[0] if head else ""
    if " 200 " not in f" {status} ":
        raise RuntimeError(f"scrape failed: {status!r}")
    return body
