"""A small deterministic discrete-event simulation kernel.

The kernel is intentionally modeled after SimPy's API so that protocol code
reads like the pseudocode in the paper: a protocol step is a generator that
``yield``\\ s events (timeouts, other processes, store gets, or plain events
triggered by message handlers) and resumes when they fire.

The kernel is fully deterministic: given the same sequence of scheduled events
and the same random seed in the workload, two runs produce identical traces.
Ties in simulated time are broken by scheduling priority and then by insertion
order.

Example
-------
>>> env = Environment()
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a", 5))
>>> _ = env.process(worker(env, "b", 3))
>>> env.run()
>>> log
[(3, 'b'), (5, 'a')]
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimulationError",
    "Interrupt",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Store",
    "Environment",
    "NORMAL",
    "URGENT",
]

#: Scheduling priority for ordinary events.
NORMAL = 1
#: Scheduling priority for events that must run before ordinary ones at the
#: same simulated time (used internally for process resumption).
URGENT = 0


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts untriggered.  Calling :meth:`succeed` or :meth:`fail`
    schedules it; once the environment pops it from the queue it is
    *processed* and its callbacks run.  Each callback receives the event.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled (succeeded or failed)."""
        return self._scheduled

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self._scheduled:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, delay=delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0) -> "Event":
        """Trigger the event with an exception to be raised in waiters."""
        if self._scheduled:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self, delay=delay)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run immediately at the current time.
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires ``delay`` simulated time units in the future."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class Process(Event):
    """Wraps a generator and drives it by resuming on yielded events.

    The process itself is an event that succeeds with the generator's return
    value (or fails with the exception that escaped the generator).
    """

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send"):
            raise SimulationError("process() requires a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        init = Event(env)
        init._ok = True
        init._value = None
        env.schedule(init, priority=URGENT)
        init.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            return
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.defused = True  # type: ignore[attr-defined]
        self.env.schedule(event, priority=URGENT)
        event.add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            return
        self.env._active_process = self
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                setattr(event, "defused", True)
                target = self._generator.throw(event._value)
        except StopIteration as exc:
            self.env._active_process = None
            self._ok = True
            self._value = exc.value
            self.env.schedule(self, priority=URGENT)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into waiters
            self.env._active_process = None
            self._ok = False
            self._value = exc
            self.env.schedule(self, priority=URGENT)
            return
        self.env._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded a non-event: {target!r} (did you forget env.timeout?)"
            )
        self._target = target
        target.add_callback(self._resume)


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._pending = len(self._events)
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            event.add_callback(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self._events if e.processed and e._ok is not None}

    def _check(self, event: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AnyOf(_Condition):
    """Succeeds as soon as any of the given events succeeds (or fails)."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._ok is False:
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Succeeds once all of the given events have succeeded."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._ok is False:
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class Store:
    """An unbounded FIFO queue with blocking ``get``.

    Used as a mailbox for simulated nodes: message handlers ``put`` items and
    node processes ``yield store.get()``.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Append an item, waking the oldest waiting getter if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def peek_all(self) -> list[Any]:
        """Return currently queued items without removing them."""
        return list(self._items)


class Environment:
    """The simulation clock and event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    def schedule(self, event: Event, delay: float = 0, priority: int = NORMAL) -> None:
        """Place a triggered event on the queue ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError("cannot schedule in the past")
        event._scheduled = True
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._counter), event)
        )

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` simulated time units."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def store(self) -> Store:
        return Store(self)

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        time, _, _, event = heapq.heappop(self._queue)
        if time < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = time
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not getattr(event, "defused", False) and not callbacks:
            # An unhandled failure with nobody waiting: surface it.
            raise event._value

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the simulated time at which the run stopped.
        """
        processed = 0
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self._now = until
                break
            if max_events is not None and processed >= max_events:
                break
            self.step()
            processed += 1
        if until is not None and self._now < until and not self._queue:
            self._now = until
        return self._now
