"""A small deterministic discrete-event simulation kernel.

The kernel is intentionally modeled after SimPy's API so that protocol code
reads like the pseudocode in the paper: a protocol step is a generator that
``yield``\\ s events (timeouts, other processes, store gets, or plain events
triggered by message handlers) and resumes when they fire.

The kernel is fully deterministic: given the same sequence of scheduled events
and the same random seed in the workload, two runs produce identical traces.
Ties in simulated time are broken by scheduling priority and then by insertion
order.

The hot path is *slotted*: every kernel object declares ``__slots__``, the
scheduling counter is a plain int, the run loop is inlined, and timeouts
consumed by a single waiting process are recycled through a per-environment
free list instead of being reallocated (millions of them per simulated
experiment).  A recycled timeout is indistinguishable from a fresh one with
one documented caveat: do not read a timeout's ``value`` in a *later*
process step than the one the timeout resumed (protocol code always uses
``value = yield env.timeout(...)``, which is safe).

A failed event must be consumed: if no waiting process (or condition)
defuses the failure by the time its callbacks have run, :meth:`Environment.step`
re-raises it — failures can no longer be silently swallowed just because an
unrelated callback was attached.

The event machinery (``Event``/``Process``/``Store``/conditions) is
scheduler-agnostic: :class:`repro.net.realtime.RealtimeEnvironment` subclasses
:class:`Environment` and pumps the same queue from the asyncio loop against
the wall clock, which is how the live cluster runtime executes these
generators over real sockets.

Example
-------
>>> env = Environment()
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a", 5))
>>> _ = env.process(worker(env, "b", 3))
>>> env.run()
>>> log
[(3, 'b'), (5, 'a')]
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimulationError",
    "Interrupt",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Store",
    "Environment",
    "NORMAL",
    "URGENT",
]

#: Scheduling priority for ordinary events.
NORMAL = 1
#: Scheduling priority for events that must run before ordinary ones at the
#: same simulated time (used internally for process resumption).
URGENT = 0


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts untriggered.  Calling :meth:`succeed` or :meth:`fail`
    schedules it; once the environment pops it from the queue it is
    *processed* and its callbacks run.  Each callback receives the event.

    ``defused`` records that some waiter consumed a failure (a process the
    exception was thrown into, or a condition that absorbed it); the
    environment re-raises failures that are still live after processing.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._scheduled = False
        self.defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled (succeeded or failed)."""
        return self._scheduled

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self._scheduled:
            raise SimulationError("event already triggered")
        if delay < 0:
            raise SimulationError("cannot schedule in the past")
        self._ok = True
        self._value = value
        # Inlined Environment.schedule: succeed() is the hottest trigger path
        # (every message delivery and store hand-off goes through it).
        env = self.env
        self._scheduled = True
        env._counter = count = env._counter + 1
        heapq.heappush(env._queue, (env._now + delay, NORMAL, count, self))
        return self

    def fail(self, exception: BaseException, delay: float = 0) -> "Event":
        """Trigger the event with an exception to be raised in waiters."""
        if self._scheduled:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self, delay=delay)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run immediately at the current time.
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires ``delay`` simulated time units in the future.

    Instances created through :meth:`Environment.timeout` may be recycled
    from the environment's free list once processed (see the module
    docstring for the single usage caveat this implies).
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class Process(Event):
    """Wraps a generator and drives it by resuming on yielded events.

    The process itself is an event that succeeds with the generator's return
    value (or fails with the exception that escaped the generator).
    """

    __slots__ = ("_generator", "_target", "_resume_cb")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send"):
            raise SimulationError("process() requires a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        # One bound method for the process's lifetime instead of a fresh
        # allocation at every yield.
        self._resume_cb = self._resume
        init = Event(env)
        init._ok = True
        init._value = None
        env.schedule(init, priority=URGENT)
        init.add_callback(self._resume_cb)

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            return
        # Detach from whatever the process was waiting on: if the old target
        # fires later, it must not resume the process a second time at the
        # wrong yield point.
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
            if not target.callbacks and type(target) is _StoreGet:
                store = target.store
                if not target._scheduled:
                    # An abandoned getter must leave the queue, or the next
                    # put() would hand its item to a dead event.
                    try:
                        store._getters.remove(target)
                    except ValueError:
                        pass
                elif target._ok:
                    # The getter already holds an item that no waiter will
                    # ever receive: hand it to the next getter, or put it
                    # back at the head of the queue.
                    if store._getters:
                        store._getters.popleft().succeed(target._value)
                    else:
                        store._items.appendleft(target._value)
        self._target = None
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.defused = True
        self.env.schedule(event, priority=URGENT)
        event.add_callback(self._resume_cb)

    def _resume(self, event: Event) -> None:
        if self._ok is not None:  # no longer alive
            return
        env = self.env
        env._active_process = self
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                # This process consumes the failure by having it thrown in.
                event.defused = True
                target = self._generator.throw(event._value)
        except StopIteration as exc:
            env._active_process = None
            self._ok = True
            self._value = exc.value
            env.schedule(self, priority=URGENT)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into waiters
            env._active_process = None
            self._ok = False
            self._value = exc
            env.schedule(self, priority=URGENT)
            return
        env._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded a non-event: {target!r} (did you forget env.timeout?)"
            )
        self._target = target
        callbacks = target.callbacks  # inlined add_callback
        if callbacks is None:
            self._resume(target)
        else:
            callbacks.append(self._resume_cb)


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("_events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._pending = len(self._events)
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            event.add_callback(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self._events if e.processed and e._ok is not None}

    def _check(self, event: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AnyOf(_Condition):
    """Succeeds as soon as any of the given events succeeds (or fails)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if event._ok is False:
                # A member failing after the condition already fired lost the
                # race; the waiter has moved on, so consume the failure.
                event.defused = True
            return
        if event._ok is False:
            # The failure is absorbed into (and re-raised through) the
            # condition, so the member event itself is consumed.
            event.defused = True
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Succeeds once all of the given events have succeeded."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if event._ok is False:
                event.defused = True
            return
        if event._ok is False:
            event.defused = True
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class _StoreGet(Event):
    """A store-get event; recyclable through the environment's free list
    under the same single-process-waiter gate as timeouts.  Keeps a
    back-reference to its store so an interrupted waiter can be purged from
    the getter queue instead of silently swallowing the next item."""

    __slots__ = ("store",)


class Store:
    """An unbounded FIFO queue with blocking ``get``.

    Used as a mailbox for simulated nodes: message handlers ``put`` items and
    node processes ``yield store.get()``.
    """

    __slots__ = ("env", "_items", "_getters")

    def __init__(self, env: "Environment"):
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Append an item, waking the oldest waiting getter if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        env = self.env
        pool = env._get_pool
        if pool:
            event = pool.pop()
            event.callbacks = []
            event._value = None
            event._ok = None
            event._scheduled = False
            event.defused = False
        else:
            event = _StoreGet(env)
        event.store = self
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def peek_all(self) -> list[Any]:
        """Return currently queued items without removing them."""
        return list(self._items)


class Environment:
    """The simulation clock and event queue."""

    __slots__ = ("_now", "_queue", "_counter", "_active_process", "_timeout_pool",
                 "_get_pool")

    #: Upper bound on the per-environment timeout free list.
    POOL_LIMIT = 512

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._counter = 0
        self._active_process: Optional[Process] = None
        self._timeout_pool: list[Timeout] = []
        self._get_pool: list[_StoreGet] = []

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    @property
    def events_scheduled(self) -> int:
        """Total number of events scheduled so far (monotonic counter)."""
        return self._counter

    def schedule(self, event: Event, delay: float = 0, priority: int = NORMAL) -> None:
        """Place a triggered event on the queue ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError("cannot schedule in the past")
        event._scheduled = True
        self._counter = count = self._counter + 1
        heapq.heappush(self._queue, (self._now + delay, priority, count, event))

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` simulated time units.

        Reuses a processed timeout from the free list when one is available
        (the run loop recycles timeouts whose only waiter was a process).
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay}")
            timeout = pool.pop()
            timeout.callbacks = []
            timeout._value = value
            timeout._ok = True
            timeout._scheduled = True
            timeout.defused = False
            timeout.delay = delay
            self._counter = count = self._counter + 1
            heapq.heappush(self._queue, (self._now + delay, NORMAL, count, timeout))
            return timeout
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def store(self) -> Store:
        return Store(self)

    def _recycle(self, event: Event, callbacks: list) -> None:
        """Return a processed timeout or store-get event to its free list
        when provably safe: its only waiter was a process that has already
        been resumed."""
        if len(callbacks) != 1:
            return
        if getattr(callbacks[0], "__func__", None) is not Process._resume:
            return
        cls = event.__class__
        if cls is Timeout:
            if len(self._timeout_pool) < self.POOL_LIMIT:
                self._timeout_pool.append(event)
        elif cls is _StoreGet:
            if len(self._get_pool) < self.POOL_LIMIT:
                self._get_pool.append(event)

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        time, _, _, event = heapq.heappop(self._queue)
        if time < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = time
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event.defused:
            # An unhandled failure that no process consumed: surface it
            # (even if unrelated callbacks were attached).
            raise event._value
        self._recycle(event, callbacks)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the simulated time at which the run stopped.  This loop is
        the kernel's hot path: it inlines :meth:`step` (minus the redundant
        monotonicity check — ``schedule`` already rejects negative delays)
        and recycles single-waiter timeouts in place.
        """
        queue = self._queue
        timeout_pool = self._timeout_pool
        get_pool = self._get_pool
        pool_limit = self.POOL_LIMIT
        heappop = heapq.heappop
        timeout_class = Timeout
        get_class = _StoreGet
        resume = Process._resume
        processed = 0
        while queue:
            if until is not None and queue[0][0] > until:
                self._now = until
                break
            if max_events is not None and processed >= max_events:
                break
            time, _, _, event = heappop(queue)
            self._now = time
            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if event._ok is False and not event.defused:
                raise event._value
            if (
                len(callbacks) == 1
                and getattr(callbacks[0], "__func__", None) is resume
            ):
                cls = event.__class__
                if cls is timeout_class:
                    if len(timeout_pool) < pool_limit:
                        timeout_pool.append(event)
                elif cls is get_class:
                    if len(get_pool) < pool_limit:
                        get_pool.append(event)
            processed += 1
        if until is not None and self._now < until and not queue:
            self._now = until
        return self._now
