"""Simulated clocks.

Two abstractions are provided:

* :class:`LocalClock` — a per-process clock with bounded offset from the
  global simulated time.  Application processes in the formal model (§3.1)
  have access only to a local clock with no drift/skew guarantees; the offset
  models that.
* :class:`TrueTime` — Spanner's TrueTime interval API.  ``now()`` returns an
  interval ``[earliest, latest]`` guaranteed to contain the true (simulated)
  time, with half-width equal to the configured uncertainty ``epsilon``
  (10 ms at p99.9 in the paper's deployment).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.sim.engine import Environment

__all__ = ["LocalClock", "TrueTimeInterval", "TrueTime"]


class LocalClock:
    """A local clock offset from simulated real time by a fixed skew."""

    def __init__(self, env: Environment, offset: float = 0.0):
        self.env = env
        self.offset = offset

    def now(self) -> float:
        """Return the local clock reading (true time plus the skew)."""
        return self.env.now + self.offset


@dataclass(frozen=True)
class TrueTimeInterval:
    """The ``[earliest, latest]`` interval returned by ``TT.now()``."""

    earliest: float
    latest: float

    def __post_init__(self) -> None:
        if self.earliest > self.latest:
            raise ValueError("earliest must not exceed latest")

    @property
    def width(self) -> float:
        return self.latest - self.earliest

    def contains(self, t: float) -> bool:
        return self.earliest <= t <= self.latest


class TrueTime:
    """Simulated TrueTime.

    The true time is the environment clock.  ``now()`` returns an interval
    centred (approximately) on the true time whose width is at most
    ``2 * epsilon``.  When ``jitter_rng`` is provided, the instantaneous
    uncertainty varies between ``min_epsilon`` and ``epsilon`` to emulate the
    sawtooth behaviour of the real implementation; the invariant that the true
    time lies inside the returned interval always holds.
    """

    def __init__(
        self,
        env: Environment,
        epsilon: float = 10.0,
        min_epsilon: Optional[float] = None,
        jitter_rng: Optional[random.Random] = None,
    ):
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.env = env
        self.epsilon = epsilon
        self.min_epsilon = epsilon if min_epsilon is None else min_epsilon
        if self.min_epsilon < 0 or self.min_epsilon > epsilon:
            raise ValueError("min_epsilon must be in [0, epsilon]")
        self._rng = jitter_rng
        #: Clock-skew perturbation (chaos engine): the local oscillator reads
        #: ``true time + offset_ms``.  While ``|offset_ms| <= epsilon`` the
        #: returned interval still contains the true time and TrueTime's
        #: contract — hence the protocol's safety — is preserved; beyond
        #: epsilon the contract is broken on purpose.
        self.offset_ms = 0.0

    def _instantaneous_epsilon(self) -> float:
        if self._rng is None or self.min_epsilon == self.epsilon:
            return self.epsilon
        return self._rng.uniform(self.min_epsilon, self.epsilon)

    def now(self) -> TrueTimeInterval:
        """Return the TrueTime interval for the current instant."""
        eps = self._instantaneous_epsilon()
        t = self.env.now + self.offset_ms
        return TrueTimeInterval(earliest=t - eps, latest=t + eps)

    def after(self, t: float) -> bool:
        """TT.after(t): true if ``t`` has definitely passed."""
        return self.now().earliest > t

    def before(self, t: float) -> bool:
        """TT.before(t): true if ``t`` has definitely not arrived."""
        return self.now().latest < t

    def wait_until_after(self, t: float):
        """Generator: block until ``TT.after(t)`` holds (commit wait)."""
        while not self.after(t):
            remaining = t - self.now().earliest
            yield self.env.timeout(max(remaining, 1e-9))
