"""Wide-area network model.

The network delivers messages between named nodes with a one-way delay equal
to half the configured round-trip time between the nodes' sites, plus optional
jitter and a per-message processing overhead.  Channels between a pair of
nodes are FIFO (matching the formal model in Appendix C.1.4): jittered delays
are clamped so that messages on the same channel are never reordered.

The paper's two topologies are provided as helpers:

* :func:`spanner_wan` — CA / VA / IR, RTTs 62 / 136 / 68 ms (§6).
* :func:`gryff_wan` — CA / VA / IR / OR / JP, Table 2 RTT matrix (§7.2).

Transport contract: protocol nodes use only ``register(name, endpoint)``,
``send(src, dst, kind, payload)``, and ``node(name)`` (for the peer's
``site``) — the interface documented by
:class:`repro.net.transport.TransportBase`.  :class:`Network` is the
simulated implementation; :class:`repro.net.transport.LiveTransport` carries
the same messages over real asyncio TCP, so the protocol state machines run
unmodified in either world.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.sim.engine import Environment

__all__ = [
    "Message",
    "LatencyMatrix",
    "Network",
    "spanner_wan",
    "gryff_wan",
    "single_dc",
    "SPANNER_RTT_MS",
    "GRYFF_RTT_MS",
]

#: Round-trip times used by the Spanner evaluation (§6): CA-VA 62 ms,
#: CA-IR 136 ms, VA-IR 68 ms.
SPANNER_RTT_MS: Dict[Tuple[str, str], float] = {
    ("CA", "VA"): 62.0,
    ("CA", "IR"): 136.0,
    ("VA", "IR"): 68.0,
}

#: Table 2 of the paper — emulated round-trip latencies in ms.
GRYFF_RTT_MS: Dict[Tuple[str, str], float] = {
    ("CA", "CA"): 0.2,
    ("VA", "VA"): 0.2,
    ("IR", "IR"): 0.2,
    ("OR", "OR"): 0.2,
    ("JP", "JP"): 0.2,
    ("CA", "VA"): 72.0,
    ("CA", "IR"): 151.0,
    ("CA", "OR"): 59.0,
    ("CA", "JP"): 113.0,
    ("VA", "IR"): 88.0,
    ("VA", "OR"): 93.0,
    ("VA", "JP"): 162.0,
    ("IR", "OR"): 145.0,
    ("IR", "JP"): 220.0,
    ("OR", "JP"): 121.0,
}


@dataclass
class Message:
    """A message in flight.

    Attributes
    ----------
    src, dst:
        Node names.
    kind:
        Message type tag used for handler dispatch.
    payload:
        Arbitrary message body (dict by convention).
    send_time, deliver_time:
        Simulated times recorded by the network for tracing.
    """

    src: str
    dst: str
    kind: str
    payload: Any
    send_time: float = 0.0
    deliver_time: float = 0.0
    msg_id: int = 0


class LatencyMatrix:
    """Symmetric site-to-site RTT matrix with a local (same-site) RTT."""

    def __init__(
        self,
        rtt_ms: Dict[Tuple[str, str], float],
        local_rtt_ms: float = 0.2,
    ):
        self._rtt: Dict[Tuple[str, str], float] = {}
        self.local_rtt_ms = local_rtt_ms
        sites = set()
        for (a, b), rtt in rtt_ms.items():
            sites.add(a)
            sites.add(b)
            self._rtt[(a, b)] = rtt
            self._rtt[(b, a)] = rtt
        self.sites = sorted(sites)

    def rtt(self, a: str, b: str) -> float:
        """Round-trip time between sites ``a`` and ``b`` in ms."""
        if a == b:
            return self._rtt.get((a, b), self.local_rtt_ms)
        try:
            return self._rtt[(a, b)]
        except KeyError as exc:
            raise KeyError(f"no RTT configured between {a!r} and {b!r}") from exc

    def one_way(self, a: str, b: str) -> float:
        """One-way delay between sites ``a`` and ``b`` in ms."""
        return self.rtt(a, b) / 2.0


def spanner_wan(local_rtt_ms: float = 0.2) -> LatencyMatrix:
    """The 3-site WAN used in the Spanner evaluation (§6.1)."""
    return LatencyMatrix(SPANNER_RTT_MS, local_rtt_ms=local_rtt_ms)


def gryff_wan() -> LatencyMatrix:
    """The 5-site WAN of Table 2 used in the Gryff evaluation (§7.2)."""
    return LatencyMatrix(GRYFF_RTT_MS, local_rtt_ms=0.2)


def single_dc(sites: Optional[list[str]] = None, rtt_ms: float = 0.2) -> LatencyMatrix:
    """A single-data-center topology (used for the overhead experiments)."""
    sites = sites or ["DC"]
    matrix: Dict[Tuple[str, str], float] = {}
    for i, a in enumerate(sites):
        for b in sites[i:]:
            matrix[(a, b)] = rtt_ms
    return LatencyMatrix(matrix, local_rtt_ms=rtt_ms)


class Network:
    """Delivers messages between registered nodes with WAN latencies."""

    def __init__(
        self,
        env: Environment,
        latency: LatencyMatrix,
        jitter_ms: float = 0.0,
        processing_ms: float = 0.0,
        seed: int = 0,
    ):
        self.env = env
        self.latency = latency
        self.jitter_ms = jitter_ms
        self.processing_ms = processing_ms
        self._rng = random.Random(seed)
        self._nodes: Dict[str, "NetworkEndpoint"] = {}
        self._next_msg_id = 0
        #: Per-channel earliest allowed delivery time, enforcing FIFO order.
        self._channel_clock: Dict[Tuple[str, str], float] = {}
        self.messages_sent = 0
        self.bytes_proxy = 0
        self.trace: Optional[list[Message]] = None
        #: Optional :class:`~repro.chaos.faults.FaultController` (duck-typed:
        #: anything with ``fate(src, dst, kind) -> Fate``).  ``None`` keeps
        #: the send path — including its RNG draws — exactly as before, so
        #: every fault-free experiment is byte-identical.
        self.faults = None

    def enable_trace(self) -> None:
        """Start recording every delivered message (for debugging/tests)."""
        self.trace = []

    def register(self, name: str, endpoint: "NetworkEndpoint") -> None:
        if name in self._nodes:
            raise ValueError(f"duplicate node name {name!r}")
        self._nodes[name] = endpoint

    def deregister(self, name: str) -> None:
        """Forget a node registration so a recovered replacement can
        ``register`` under the same name (crash/restart in the chaos
        engine).  Unknown names are ignored."""
        self._nodes.pop(name, None)

    def node(self, name: str) -> "NetworkEndpoint":
        return self._nodes[name]

    @property
    def node_names(self) -> list[str]:
        return sorted(self._nodes)

    def delay(self, src_site: str, dst_site: str) -> float:
        """Sample the one-way delay between two sites."""
        base = self.latency.one_way(src_site, dst_site) + self.processing_ms
        if self.jitter_ms > 0:
            base += self._rng.uniform(0, self.jitter_ms)
        return base

    def send(self, src: str, dst: str, kind: str, payload: Any) -> Message:
        """Send a message; it is delivered to ``dst`` after the WAN delay."""
        try:
            dst_ep = self._nodes[dst]
            src_ep = self._nodes[src]
        except KeyError as exc:
            raise KeyError(f"unknown node in send({src!r}, {dst!r})") from exc
        self._next_msg_id += 1
        msg = Message(
            src=src,
            dst=dst,
            kind=kind,
            payload=payload,
            send_time=self.env.now,
            msg_id=self._next_msg_id,
        )
        fate = None if self.faults is None else self.faults.fate(src, dst, kind)
        if fate is not None and fate.drop:
            # The message vanishes on the wire; accounting still sees the
            # send (the node paid to transmit it).
            msg.deliver_time = -1.0
            self.messages_sent += 1
            self.bytes_proxy += self._payload_size(payload)
            if self.trace is not None:
                self.trace.append(msg)
            return msg
        delay = self.delay(src_ep.site, dst_ep.site)
        if fate is not None:
            delay += fate.extra_delay_ms
        deliver_at = self.env.now + delay
        if fate is None or not fate.reorder:
            # FIFO per channel: never deliver before a previously sent
            # message.  A reordered message skips the clamp (and does not
            # advance it), so later traffic may overtake it.
            channel = (src, dst)
            deliver_at = max(deliver_at, self._channel_clock.get(channel, 0.0))
            self._channel_clock[channel] = deliver_at
        msg.deliver_time = deliver_at
        self.messages_sent += 1
        self.bytes_proxy += self._payload_size(payload)
        event = self.env.event()
        event.succeed(msg, delay=deliver_at - self.env.now)
        event.add_callback(lambda ev: dst_ep.deliver(ev.value))
        if self.trace is not None:
            self.trace.append(msg)
        return msg

    def broadcast(self, src: str, dsts: list[str], kind: str, payload: Any) -> list[Message]:
        """Send the same message to every destination in ``dsts``."""
        return [self.send(src, dst, kind, payload) for dst in dsts]

    @staticmethod
    def _payload_size(payload: Any) -> int:
        """A rough proxy for message size, used in overhead accounting."""
        if payload is None:
            return 1
        if isinstance(payload, dict):
            return 1 + len(payload)
        if isinstance(payload, (list, tuple, set)):
            return 1 + len(payload)
        return 1


class NetworkEndpoint:
    """Minimal interface nodes must provide to receive messages."""

    site: str = "DC"

    def deliver(self, message: Message) -> None:  # pragma: no cover - interface
        raise NotImplementedError
