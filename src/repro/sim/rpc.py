"""Request/response bookkeeping for simulated RPC.

These classes are used by :class:`repro.sim.node.Node`; protocol code usually
interacts with them via ``node.rpc_call`` / ``node.rpc_multicast``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.sim.engine import Environment, Event

__all__ = ["RpcError", "RpcRequest", "PendingCall", "MultiCall", "RpcEndpoint"]


class RpcError(Exception):
    """Raised for RPC misuse (missing handlers, bad replies)."""


class RpcRequest:
    """Payload wrapper describing an outbound request (kept for tracing)."""

    def __init__(self, rpc_id: int, kind: str, payload: Any):
        self.rpc_id = rpc_id
        self.kind = kind
        self.payload = payload


class PendingCall:
    """A single-destination call awaiting one reply."""

    def __init__(self, env: Environment, rpc_id: int, expected: int = 1):
        self.env = env
        self.rpc_id = rpc_id
        self.expected = expected
        self.replies: Dict[str, Any] = {}
        self.first_event = env.event()

    def add_reply(self, src: str, payload: Any) -> bool:
        """Record a reply; returns True when the call is complete."""
        self.replies[src] = payload
        if not self.first_event.triggered:
            self.first_event.succeed(payload)
        return len(self.replies) >= self.expected


class MultiCall(PendingCall):
    """A multicast call that can be waited on at several reply counts.

    ``wait(n)`` returns an event that fires once ``n`` replies have arrived;
    the event value is the dict of replies received so far (by sender name).
    ``on_reply`` registers a callback invoked for every reply, including
    those arriving after any ``wait`` threshold fired — this is how late
    messages (e.g. Spanner-RSS slow replies racing with fast replies) are
    observed.
    """

    def __init__(self, env: Environment, rpc_id: int, destinations: List[str]):
        super().__init__(env, rpc_id=rpc_id, expected=len(destinations))
        self.destinations = destinations
        self._thresholds: List[tuple[int, Event]] = []
        self._reply_callbacks: List[Callable[[str, Any], None]] = []

    @property
    def reply_count(self) -> int:
        return len(self.replies)

    def wait(self, count: Optional[int] = None) -> Event:
        """Event firing once ``count`` (default: all) replies have arrived."""
        if count is None:
            count = self.expected
        if count > self.expected:
            raise RpcError(
                f"cannot wait for {count} replies; only {self.expected} destinations"
            )
        event = self.env.event()
        if self.reply_count >= count:
            event.succeed(dict(self.replies))
        else:
            self._thresholds.append((count, event))
        return event

    def wait_all(self) -> Event:
        return self.wait(self.expected)

    def on_reply(self, callback: Callable[[str, Any], None]) -> None:
        self._reply_callbacks.append(callback)

    def add_reply(self, src: str, payload: Any) -> bool:
        self.replies[src] = payload
        if not self.first_event.triggered:
            self.first_event.succeed(payload)
        for callback in list(self._reply_callbacks):
            callback(src, payload)
        ready = [
            (count, event)
            for count, event in self._thresholds
            if self.reply_count >= count and not event.triggered
        ]
        for count, event in ready:
            event.succeed(dict(self.replies))
        self._thresholds = [
            (count, event) for count, event in self._thresholds if not event.triggered
        ]
        return len(self.replies) >= self.expected


class RpcEndpoint:
    """Marker base class documenting the RPC surface of :class:`Node`."""
