"""Simulated node (process) base class.

A :class:`Node` is a named participant registered with a :class:`Network`.
Incoming messages are dispatched to ``on_<kind>`` handler methods.  Handlers
may be plain methods or generator methods; generator handlers are run as
simulation processes so they can perform further waits (e.g. replication
round trips) before replying.

Nodes also embed the request/response bookkeeping from :mod:`repro.sim.rpc`
so protocol code can issue blocking calls (``yield self.rpc_call(...)``) and
quorum multicasts.
"""

from __future__ import annotations

import inspect
from typing import Any, Optional

from repro.sim.engine import Environment, Event
from repro.sim.network import Message, Network
from repro.sim.rpc import MultiCall, PendingCall, RpcError

__all__ = ["Node"]


class Node:
    """Base class for all simulated participants (clients, shards, replicas)."""

    def __init__(self, env: Environment, network: Network, name: str, site: str,
                 cpu_time_ms: float = 0.0):
        self.env = env
        self.network = network
        self.name = name
        self.site = site
        self._rpc_counter = 0
        self._pending: dict[int, PendingCall] = {}
        self._stopped = False
        #: Per-message CPU cost.  When positive, incoming messages are
        #: processed one at a time through a FIFO (a single-threaded server),
        #: which is what produces saturation in the load experiments.
        self.cpu_time_ms = cpu_time_ms
        self._inbox = None
        network.register(name, self)

    # ------------------------------------------------------------------ #
    # Message receipt and dispatch
    # ------------------------------------------------------------------ #
    def deliver(self, message: Message) -> None:
        """Called by the network when a message arrives at this node."""
        if self._stopped:
            return
        if self.cpu_time_ms > 0:
            if self._inbox is None:
                self._inbox = self.env.store()
                self.env.process(self._cpu_loop())
            self._inbox.put(message)
            return
        self._route(message)

    def _cpu_loop(self):
        """Serialize message processing on a single simulated CPU."""
        while not self._stopped:
            message = yield self._inbox.get()
            yield self.env.timeout(self.cpu_time_ms)
            self._route(message)

    def _route(self, message: Message) -> None:
        payload = message.payload or {}
        if isinstance(payload, dict) and payload.get("_rpc_is_reply"):
            self._handle_rpc_reply(message)
            return
        self.dispatch(message)

    def dispatch(self, message: Message) -> None:
        """Route a non-reply message to its ``on_<kind>`` handler."""
        handler = getattr(self, f"on_{message.kind}", None)
        if handler is None:
            self.on_unhandled(message)
            return
        result = handler(message)
        if inspect.isgenerator(result):
            process = self.env.process(result)
            if self._message_expects_reply(message):
                process.add_callback(
                    lambda ev: self._maybe_autoreply(message, ev)
                )
        elif result is not None and self._message_expects_reply(message):
            self.rpc_reply(message, result)

    def on_unhandled(self, message: Message) -> None:
        """Hook for messages with no handler; raises by default."""
        raise RpcError(f"{self.name}: no handler for message kind {message.kind!r}")

    def _maybe_autoreply(self, message: Message, process_event: Event) -> None:
        if process_event.ok and process_event.value is not None:
            self.rpc_reply(message, process_event.value)

    @staticmethod
    def _message_expects_reply(message: Message) -> bool:
        payload = message.payload
        return isinstance(payload, dict) and "_rpc_id" in payload

    # ------------------------------------------------------------------ #
    # Plain sends
    # ------------------------------------------------------------------ #
    def send(self, dst: str, kind: str, **payload: Any) -> Message:
        """Send a one-way message."""
        return self.network.send(self.name, dst, kind, payload)

    def stop(self) -> None:
        """Stop processing incoming messages (models a crashed node)."""
        self._stopped = True

    # ------------------------------------------------------------------ #
    # RPC
    # ------------------------------------------------------------------ #
    def _next_rpc_id(self) -> int:
        self._rpc_counter += 1
        return self._rpc_counter

    def rpc_call(self, dst: str, kind: str, **payload: Any) -> Event:
        """Send a request and return an event that fires with the reply payload."""
        rpc_id = self._next_rpc_id()
        call = PendingCall(self.env, rpc_id=rpc_id, expected=1)
        self._pending[rpc_id] = call
        body = dict(payload)
        body["_rpc_id"] = rpc_id
        body["_rpc_reply_to"] = self.name
        self.network.send(self.name, dst, kind, body)
        return call.first_event

    def rpc_multicast(self, dsts: list[str], kind: str, **payload: Any) -> MultiCall:
        """Send the same request to several destinations.

        Returns a :class:`MultiCall` whose ``wait(n)`` method yields an event
        firing once ``n`` replies have arrived.
        """
        rpc_id = self._next_rpc_id()
        call = MultiCall(self.env, rpc_id=rpc_id, destinations=list(dsts))
        self._pending[rpc_id] = call
        body = dict(payload)
        body["_rpc_id"] = rpc_id
        body["_rpc_reply_to"] = self.name
        for dst in dsts:
            self.network.send(self.name, dst, kind, dict(body))
        return call

    def rpc_reply(self, request: Message, payload: Any) -> None:
        """Reply to an RPC request message."""
        req_payload = request.payload
        if not isinstance(req_payload, dict) or "_rpc_id" not in req_payload:
            raise RpcError("cannot reply to a message that is not an RPC request")
        body = dict(payload) if isinstance(payload, dict) else {"value": payload}
        body["_rpc_is_reply"] = True
        body["_rpc_id"] = req_payload["_rpc_id"]
        self.network.send(self.name, req_payload["_rpc_reply_to"], f"{request.kind}_reply", body)

    def _handle_rpc_reply(self, message: Message) -> None:
        rpc_id = message.payload.get("_rpc_id")
        call = self._pending.get(rpc_id)
        if call is None:
            return  # Late reply for an abandoned call.
        finished = call.add_reply(message.src, message.payload)
        if finished:
            self._pending.pop(rpc_id, None)

    def forget_call(self, call: "PendingCall") -> None:
        """Drop bookkeeping for an outstanding call (ignore future replies)."""
        self._pending.pop(call.rpc_id, None)
