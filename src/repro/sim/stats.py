"""Latency statistics used by the evaluation harness.

The paper reports tail-latency CDFs (Figure 5), p99 latencies (Figure 7), and
throughput/median-latency curves (Figure 6).  :class:`LatencyRecorder`
collects per-operation latencies tagged by category and produces the same
summaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["percentile", "percentile_sorted", "Percentiles", "cdf_points",
           "DEFAULT_CDF_FRACTIONS", "LatencyRecorder", "throughput"]

#: The CDF gridlines highlighted on the paper's Figure 5 y-axis.
DEFAULT_CDF_FRACTIONS = (0.0, 0.5, 0.9, 0.99, 0.995, 0.999, 0.9999)


def percentile(samples: Sequence[float], q: float) -> float:
    """Return the ``q``-th percentile (0-100) using linear interpolation.

    Raises ``ValueError`` on an empty sample set or an out-of-range ``q``.
    """
    return percentile_sorted(sorted(samples), q)


def percentile_sorted(ordered: Sequence[float], q: float) -> float:
    """:func:`percentile` over samples that are already sorted ascending.

    Callers that query many quantiles of one sample set (the CDF and
    percentile-bundle paths) sort once and call this repeatedly.
    """
    if not ordered:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile out of range: {q}")
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] + frac * (ordered[high] - ordered[low])


@dataclass(frozen=True)
class Percentiles:
    """A bundle of the percentiles the paper reports."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    p999: float
    p9999: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "Percentiles":
        if not samples:
            raise ValueError("no samples")
        ordered = sorted(samples)
        # Sum in the original recording order: float addition rounds
        # differently under reordering and summaries must stay bit-identical.
        return cls(
            count=len(ordered),
            mean=sum(samples) / len(samples),
            p50=percentile_sorted(ordered, 50),
            p90=percentile_sorted(ordered, 90),
            p99=percentile_sorted(ordered, 99),
            p999=percentile_sorted(ordered, 99.9),
            p9999=percentile_sorted(ordered, 99.99),
            maximum=ordered[-1],
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "p99.9": self.p999,
            "p99.99": self.p9999,
            "max": self.maximum,
        }


def cdf_points(
    samples: Sequence[float],
    fractions: Optional[Sequence[float]] = None,
) -> List[Tuple[float, float]]:
    """Return (latency, fraction) points of the empirical CDF.

    Used to regenerate the Figure 5 tail-CDF series.  ``fractions`` defaults
    to the fractions highlighted in the paper's y-axis (0, 0.9, 0.99, 0.999,
    0.9999).
    """
    if fractions is None:
        fractions = DEFAULT_CDF_FRACTIONS
    ordered = sorted(samples)
    return [(percentile_sorted(ordered, frac * 100.0), frac) for frac in fractions]


def throughput(count: int, duration_ms: float) -> float:
    """Operations per second given a count and a duration in milliseconds."""
    if duration_ms <= 0:
        raise ValueError("duration must be positive")
    return count * 1000.0 / duration_ms


class LatencyRecorder:
    """Collects operation latencies grouped by category.

    Categories are free-form strings; the benches use e.g. ``"ro"`` / ``"rw"``
    for Spanner transactions and ``"read"`` / ``"write"`` for Gryff ops.
    """

    def __init__(self) -> None:
        self._samples: Dict[str, List[float]] = {}
        self._sorted: Dict[str, List[float]] = {}
        self._first_start: Optional[float] = None
        self._last_end: Optional[float] = None
        # Index into each category's sample list where the current
        # observation window begins (see snapshot/reset_window).  Kept as
        # offsets so the record() hot path and the whole-run memoized sort
        # (`_sorted`) are untouched by windowing.
        self._window_start: Dict[str, int] = {}

    def record(self, category: str, start: float, end: float) -> None:
        """Record one operation's latency from its start/end timestamps."""
        if end < start:
            raise ValueError("operation ends before it starts")
        self._samples.setdefault(category, []).append(end - start)
        self._sorted.pop(category, None)
        if self._first_start is None or start < self._first_start:
            self._first_start = start
        if self._last_end is None or end > self._last_end:
            self._last_end = end

    def record_latency(self, category: str, latency: float) -> None:
        """Record a pre-computed latency value."""
        if latency < 0:
            raise ValueError("negative latency")
        self._samples.setdefault(category, []).append(latency)
        self._sorted.pop(category, None)

    def samples(self, category: str) -> List[float]:
        return list(self._samples.get(category, []))

    def sorted_samples(self, category: str) -> List[float]:
        """The category's samples sorted ascending (memoized).

        The sort is computed once and reused by every percentile/CDF query
        until the next ``record`` for the category invalidates it.  Returns
        the internal list — callers must not mutate it.
        """
        cached = self._sorted.get(category)
        if cached is None:
            cached = sorted(self._samples.get(category, ()))
            self._sorted[category] = cached
        return cached

    def quantile(self, category: str, q: float) -> float:
        """The ``q``-th percentile (0-100) of one category (memoized sort)."""
        return percentile_sorted(self.sorted_samples(category), q)

    def categories(self) -> List[str]:
        return sorted(self._samples)

    def count(self, category: Optional[str] = None) -> int:
        if category is not None:
            return len(self._samples.get(category, []))
        return sum(len(v) for v in self._samples.values())

    def percentiles(self, category: str) -> Percentiles:
        samples = self._samples.get(category, [])
        if not samples:
            raise ValueError("no samples")
        ordered = self.sorted_samples(category)
        # Mean over the recording order (bit-identical to the unmemoized path).
        return Percentiles(
            count=len(ordered),
            mean=sum(samples) / len(samples),
            p50=percentile_sorted(ordered, 50),
            p90=percentile_sorted(ordered, 90),
            p99=percentile_sorted(ordered, 99),
            p999=percentile_sorted(ordered, 99.9),
            p9999=percentile_sorted(ordered, 99.99),
            maximum=ordered[-1],
        )

    def cdf(self, category: str, fractions: Optional[Sequence[float]] = None):
        if fractions is None:
            fractions = DEFAULT_CDF_FRACTIONS
        ordered = self.sorted_samples(category)
        return [(percentile_sorted(ordered, frac * 100.0), frac)
                for frac in fractions]

    # ------------------------------------------------------------------ #
    # Observation windows (metrics registry / per-interval percentiles)
    # ------------------------------------------------------------------ #
    def window_count(self, category: str) -> int:
        """Samples recorded in the current window of ``category``."""
        total = len(self._samples.get(category, ()))
        return total - min(self._window_start.get(category, 0), total)

    def window_snapshot(self, category: str) -> Optional[Dict[str, float]]:
        """Streaming percentiles of the current window of ``category``.

        Sorts only the samples recorded since the last
        :meth:`reset_window` — per-interval p50/p99 never re-sort the whole
        run, and the whole-run :meth:`sorted_samples` memo is untouched.
        Returns ``None`` for an empty window.
        """
        samples = self._samples.get(category, ())
        start = min(self._window_start.get(category, 0), len(samples))
        window = samples[start:]
        if not window:
            return None
        ordered = sorted(window)
        return {
            "count": float(len(ordered)),
            "mean": sum(window) / len(window),
            "p50": percentile_sorted(ordered, 50),
            "p95": percentile_sorted(ordered, 95),
            "p99": percentile_sorted(ordered, 99),
            "max": ordered[-1],
            "sum": sum(window),
        }

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """:meth:`window_snapshot` for every category with window samples."""
        result: Dict[str, Dict[str, float]] = {}
        for category in sorted(self._samples):
            window = self.window_snapshot(category)
            if window is not None:
                result[category] = window
        return result

    def reset_window(self, category: Optional[str] = None) -> None:
        """Start a fresh observation window (all categories by default).

        Cumulative queries (:meth:`percentiles`, :meth:`cdf`,
        :meth:`quantile`) still cover the whole run; only
        :meth:`window_snapshot` is affected.
        """
        if category is not None:
            self._window_start[category] = len(self._samples.get(category, ()))
            return
        for name, samples in self._samples.items():
            self._window_start[name] = len(samples)

    @property
    def duration_ms(self) -> float:
        if self._first_start is None or self._last_end is None:
            return 0.0
        return self._last_end - self._first_start

    def throughput(self, category: Optional[str] = None) -> float:
        """Operations per second over the observed interval."""
        duration = self.duration_ms
        if duration <= 0:
            return 0.0
        return throughput(self.count(category), duration)

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's samples into this one."""
        for category, samples in other._samples.items():
            self._samples.setdefault(category, []).extend(samples)
            self._sorted.pop(category, None)
        for bound in (other._first_start,):
            if bound is not None and (
                self._first_start is None or bound < self._first_start
            ):
                self._first_start = bound
        for bound in (other._last_end,):
            if bound is not None and (self._last_end is None or bound > self._last_end):
                self._last_end = bound
