"""Discrete-event simulation substrate.

This package provides the simulation kernel used by every protocol in the
reproduction: a SimPy-like event loop (:mod:`repro.sim.engine`), a wide-area
network model (:mod:`repro.sim.network`), simulated clocks including a
TrueTime-style interval API (:mod:`repro.sim.clock`), node and RPC helpers
(:mod:`repro.sim.node`, :mod:`repro.sim.rpc`), and latency statistics
(:mod:`repro.sim.stats`).
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Store,
    Timeout,
)
from repro.sim.clock import LocalClock, TrueTime, TrueTimeInterval
from repro.sim.network import LatencyMatrix, Message, Network
from repro.sim.node import Node
from repro.sim.rpc import RpcEndpoint, RpcError, RpcRequest
from repro.sim.stats import LatencyRecorder, Percentiles, cdf_points, percentile

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Store",
    "Timeout",
    "LocalClock",
    "TrueTime",
    "TrueTimeInterval",
    "LatencyMatrix",
    "Message",
    "Network",
    "Node",
    "RpcEndpoint",
    "RpcError",
    "RpcRequest",
    "LatencyRecorder",
    "Percentiles",
    "cdf_points",
    "percentile",
]
