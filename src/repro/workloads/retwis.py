"""The Retwis workload used in the Spanner evaluation (§6.1).

Retwis models a small Twitter clone.  Clients execute transactions in the
following proportions: 5% add-user, 15% follow/unfollow, 30% post-tweet,
and 50% load-timeline.  The first three are read-write transactions; the
last is read-only.  Keys are drawn from a Zipfian distribution.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.workloads.zipf import ZipfGenerator

__all__ = ["TransactionSpec", "RetwisWorkload", "RETWIS_MIX"]

#: The paper's transaction mix: (name, probability, #reads, #writes, read-only).
RETWIS_MIX = [
    ("add_user", 0.05, 1, 3, False),
    ("follow_unfollow", 0.15, 2, 2, False),
    ("post_tweet", 0.30, 3, 5, False),
    ("load_timeline", 0.50, 0, 0, True),   # reads rand(1..10) keys
]


@dataclass
class TransactionSpec:
    """One transaction to execute against the store."""

    name: str
    read_only: bool
    read_keys: List[str] = field(default_factory=list)
    write_keys: List[str] = field(default_factory=list)

    @property
    def kind(self) -> str:
        return "ro" if self.read_only else "rw"


class RetwisWorkload:
    """Generates Retwis transactions over a Zipfian key space."""

    def __init__(self, num_keys: int, zipf_skew: float, seed: int = 0,
                 value_tag: str = "v"):
        self.num_keys = num_keys
        self.zipf_skew = zipf_skew
        self.rng = random.Random(seed)
        self.zipf = ZipfGenerator(num_keys, zipf_skew, rng=self.rng)
        self.value_tag = value_tag
        self._value_counter = itertools.count(1)
        self.counts: Dict[str, int] = {name: 0 for name, *_ in RETWIS_MIX}

    # --------------------------------------------------------------- #
    def _distinct_keys(self, count: int) -> List[str]:
        # Batch the first ``count`` draws through sample_many (one hot-loop
        # setup instead of ``count``), then top up collisions one at a time.
        # The RNG stream is identical to drawing singly throughout.
        keys = {f"key{index}" for index in self.zipf.sample_many(count)}
        while len(keys) < count:
            keys.add(self.zipf.sample_key())
        return sorted(keys)

    def next_transaction(self) -> TransactionSpec:
        """Draw the next transaction according to the Retwis mix."""
        roll = self.rng.random()
        cumulative = 0.0
        for name, probability, reads, writes, read_only in RETWIS_MIX:
            cumulative += probability
            if roll <= cumulative:
                break
        self.counts[name] += 1
        if read_only:
            read_keys = self._distinct_keys(self.rng.randint(1, 10))
            return TransactionSpec(name=name, read_only=True, read_keys=read_keys)
        keys = self._distinct_keys(max(reads, writes))
        return TransactionSpec(
            name=name, read_only=False,
            read_keys=keys[:reads], write_keys=keys[:writes],
        )

    def unique_value(self) -> str:
        """A globally unique written value (keeps the reads-from relation
        unambiguous for consistency checking)."""
        return f"{self.value_tag}{next(self._value_counter)}"

    def mix_fractions(self) -> Dict[str, float]:
        total = sum(self.counts.values()) or 1
        return {name: count / total for name, count in self.counts.items()}
