"""The YCSB workload used in the Gryff evaluation (§7.2).

The workload issues single-key reads and writes.  Two knobs match the
paper's sweep:

* ``write_ratio`` — the fraction of operations that are writes (the x-axis of
  Figure 7);
* ``conflict_rate`` — the probability an operation targets a single shared
  hot key rather than a per-client private key (2%, 10%, 25% in Figure 7).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["OperationSpec", "YcsbWorkload"]


@dataclass
class OperationSpec:
    """One operation to execute against the key-value store."""

    kind: str           # "read" or "write"
    key: str
    value: Optional[str] = None


class YcsbWorkload:
    """Generates YCSB-style reads and writes for one client."""

    def __init__(self, client_id: str, write_ratio: float, conflict_rate: float,
                 seed: int = 0, num_private_keys: int = 128,
                 hot_key: str = "ycsb-hot"):
        if not 0.0 <= write_ratio <= 1.0:
            raise ValueError("write_ratio must be in [0, 1]")
        if not 0.0 <= conflict_rate <= 1.0:
            raise ValueError("conflict_rate must be in [0, 1]")
        self.client_id = client_id
        self.write_ratio = write_ratio
        self.conflict_rate = conflict_rate
        self.num_private_keys = num_private_keys
        self.hot_key = hot_key
        self.rng = random.Random(seed)
        self._value_counter = itertools.count(1)
        self.counts: Dict[str, int] = {"read": 0, "write": 0}

    def _next_key(self) -> str:
        if self.rng.random() < self.conflict_rate:
            return self.hot_key
        index = self.rng.randrange(self.num_private_keys)
        return f"{self.client_id}-key{index}"

    def next_operation(self) -> OperationSpec:
        key = self._next_key()
        if self.rng.random() < self.write_ratio:
            self.counts["write"] += 1
            value = f"{self.client_id}-v{next(self._value_counter)}"
            return OperationSpec(kind="write", key=key, value=value)
        self.counts["read"] += 1
        return OperationSpec(kind="read", key=key)

    def observed_write_ratio(self) -> float:
        total = sum(self.counts.values()) or 1
        return self.counts["write"] / total
