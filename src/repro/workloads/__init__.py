"""Workload generators and load-generating client loops (§6.1, §7.2).

* :mod:`repro.workloads.zipf` — Zipfian key sampling via rejection-inversion.
* :mod:`repro.workloads.retwis` — the Retwis transaction mix used to evaluate
  Spanner / Spanner-RSS.
* :mod:`repro.workloads.ycsb` — the YCSB read/write mix with a configurable
  conflict ratio used to evaluate Gryff / Gryff-RSC.
* :mod:`repro.workloads.clients` — closed-loop and partly-open client loops.
"""

from repro.workloads.zipf import ZipfGenerator
from repro.workloads.retwis import RetwisWorkload, TransactionSpec
from repro.workloads.ycsb import OperationSpec, YcsbWorkload
from repro.workloads.clients import ClosedLoopDriver, PartlyOpenDriver

__all__ = [
    "ZipfGenerator",
    "RetwisWorkload",
    "TransactionSpec",
    "YcsbWorkload",
    "OperationSpec",
    "ClosedLoopDriver",
    "PartlyOpenDriver",
]
