"""Zipfian key sampling.

The paper generates keys "according to a Zipfian distribution [38] with skews
ranging from 0.5 to 0.9" over ten million keys.  This module implements the
rejection-inversion sampler of Hörmann and Derflinger [38], which draws from
the Zipf distribution over ``{1, .., n}`` in O(1) expected time regardless of
``n`` and works for any exponent ``theta >= 0`` (``theta == 0`` is uniform).

The sampler is on the hot path of every workload generator, so the loop in
:meth:`ZipfGenerator.sample` hoists all per-instance constants and binds the
math helpers to locals; :meth:`ZipfGenerator.sample_many` amortizes that
setup over a whole batch.  Both paths consume the underlying RNG in exactly
the same order and perform exactly the same float operations as the plain
helper-based formulation (kept as ``_h`` / ``_h_inv`` / ``_pow`` below), so
simulation results are unchanged.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

__all__ = ["ZipfGenerator"]


class ZipfGenerator:
    """Samples integers in ``[0, n)`` with Zipfian skew ``theta``."""

    def __init__(self, n: int, theta: float, rng: Optional[random.Random] = None):
        if n <= 0:
            raise ValueError("n must be positive")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.n = n
        self.theta = theta
        self.rng = rng or random.Random(0)
        if theta > 0:
            # Hoisted constants for the rejection loop.  ``1.0 - theta`` and
            # ``1.0 / (1.0 - theta)`` are computed once here; reusing the
            # stored values yields bit-identical floats to recomputing them
            # per sample (the seed implementation's behavior).
            self._one_minus_theta = 1.0 - theta
            self._neg_theta = -theta
            if theta != 1.0:
                self._inv_one_minus_theta = 1.0 / self._one_minus_theta
            self._h_x1 = self._h(1.5) - 1.0
            self._h_n = self._h(n + 0.5)
            self._s = 2.0 - self._h_inv(self._h(2.5) - self._pow(2.0))
            self._h_span = self._h_x1 - self._h_n

    # --------------------------------------------------------------- #
    # Rejection-inversion helpers (Hörmann & Derflinger, 1996)
    # --------------------------------------------------------------- #
    def _pow(self, x: float) -> float:
        return math.exp(-self.theta * math.log(x))

    def _h(self, x: float) -> float:
        if self.theta == 1.0:
            return math.log(x)
        return (x ** (1.0 - self.theta)) / (1.0 - self.theta)

    def _h_inv(self, x: float) -> float:
        if self.theta == 1.0:
            return math.exp(x)
        return (x * (1.0 - self.theta)) ** (1.0 / (1.0 - self.theta))

    # --------------------------------------------------------------- #
    def sample(self) -> int:
        """Return an index in ``[0, n)``; smaller indices are hotter."""
        if self.theta == 0.0:
            return self.rng.randrange(self.n)
        return self._draw(self.rng.random, math.exp, math.log, math.floor)

    def sample_many(self, count: int) -> List[int]:
        """Return ``count`` samples; equivalent to ``count`` ``sample()`` calls.

        The RNG is consumed in exactly the same order as repeated single
        draws, so ``sample_many(k)`` followed by ``sample()`` produces the
        same stream as ``k + 1`` ``sample()`` calls.
        """
        if self.theta == 0.0:
            randrange = self.rng.randrange
            n = self.n
            return [randrange(n) for _ in range(count)]
        random_ = self.rng.random
        exp, log, floor = math.exp, math.log, math.floor
        draw = self._draw
        return [draw(random_, exp, log, floor) for _ in range(count)]

    def _draw(self, random_, exp, log, floor) -> int:
        """One rejection-inversion draw with all constants in locals."""
        h_n = self._h_n
        h_span = self._h_span
        s = self._s
        if self.theta == 1.0:
            while True:
                u = h_n + random_() * h_span
                x = exp(u)
                k = floor(x + 0.5)
                if k - x <= s:
                    return int(k) - 1
                if u >= log(k + 0.5) - exp(-log(k)):
                    return int(k) - 1
        one_minus = self._one_minus_theta
        inv_one_minus = self._inv_one_minus_theta
        neg_theta = self._neg_theta
        while True:
            u = h_n + random_() * h_span
            x = (u * one_minus) ** inv_one_minus
            k = floor(x + 0.5)
            if k - x <= s:
                return int(k) - 1
            if u >= ((k + 0.5) ** one_minus) / one_minus - exp(neg_theta * log(k)):
                return int(k) - 1

    def sample_key(self, prefix: str = "key") -> str:
        return f"{prefix}{self.sample()}"
