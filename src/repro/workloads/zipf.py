"""Zipfian key sampling.

The paper generates keys "according to a Zipfian distribution [38] with skews
ranging from 0.5 to 0.9" over ten million keys.  This module implements the
rejection-inversion sampler of Hörmann and Derflinger [38], which draws from
the Zipf distribution over ``{1, .., n}`` in O(1) expected time regardless of
``n`` and works for any exponent ``theta >= 0`` (``theta == 0`` is uniform).
"""

from __future__ import annotations

import math
import random
from typing import Optional

__all__ = ["ZipfGenerator"]


class ZipfGenerator:
    """Samples integers in ``[0, n)`` with Zipfian skew ``theta``."""

    def __init__(self, n: int, theta: float, rng: Optional[random.Random] = None):
        if n <= 0:
            raise ValueError("n must be positive")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.n = n
        self.theta = theta
        self.rng = rng or random.Random(0)
        if theta > 0:
            self._h_x1 = self._h(1.5) - 1.0
            self._h_n = self._h(n + 0.5)
            self._s = 2.0 - self._h_inv(self._h(2.5) - self._pow(2.0))

    # --------------------------------------------------------------- #
    # Rejection-inversion helpers (Hörmann & Derflinger, 1996)
    # --------------------------------------------------------------- #
    def _pow(self, x: float) -> float:
        return math.exp(-self.theta * math.log(x))

    def _h(self, x: float) -> float:
        if self.theta == 1.0:
            return math.log(x)
        return (x ** (1.0 - self.theta)) / (1.0 - self.theta)

    def _h_inv(self, x: float) -> float:
        if self.theta == 1.0:
            return math.exp(x)
        return (x * (1.0 - self.theta)) ** (1.0 / (1.0 - self.theta))

    # --------------------------------------------------------------- #
    def sample(self) -> int:
        """Return an index in ``[0, n)``; smaller indices are hotter."""
        if self.theta == 0.0:
            return self.rng.randrange(self.n)
        while True:
            u = self._h_n + self.rng.random() * (self._h_x1 - self._h_n)
            x = self._h_inv(u)
            k = math.floor(x + 0.5)
            if k - x <= self._s:
                return int(k) - 1
            if u >= self._h(k + 0.5) - self._pow(k):
                return int(k) - 1

    def sample_key(self, prefix: str = "key") -> str:
        return f"{prefix}{self.sample()}"
