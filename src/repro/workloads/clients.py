"""Load-generating client loops (§6.1, §7.2).

Two drivers are provided:

* :class:`ClosedLoopDriver` — a fixed set of sessions, each issuing its next
  operation as soon as the previous one completes (optionally with think
  time).  Used for the Gryff evaluation and the high-load experiments.
* :class:`PartlyOpenDriver` — the partly-open model of §6.1 [80]: sessions
  arrive according to a Poisson process; after each transaction the session
  continues with probability ``p`` (after think time ``H``) and otherwise
  ends.  Each session starts with a fresh causal context (a separate
  ``t_min``).

Both drivers are protocol-agnostic: they take a sequence of
``(session, workload)`` pairs — typically :class:`repro.api.Session`
objects paired with their workload generators — and an *executor* callable,
``executor(session, spec)``, returning a generator that performs one
workload item against the given session (:mod:`repro.api.executors` has the
standard ones).

The old calling convention (parallel ``clients``/``workloads`` lists with
implicit index pairing) is still accepted with a :class:`DeprecationWarning`;
pass explicit pairs instead.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

__all__ = ["ClosedLoopDriver", "PartlyOpenDriver"]

Pair = Tuple[Any, Any]


def _resolve_pairs(sessions: Sequence[Any], workloads: Optional[Sequence[Any]],
                   executor: Optional[Callable[[Any, Any], Any]],
                   ) -> Tuple[List[Pair], Callable[[Any, Any], Any]]:
    """Validate the driver's session/workload input.

    New style: ``(pairs, executor)`` where every item of ``pairs`` is a
    ``(session, workload)`` 2-tuple.  Legacy style: ``(clients, workloads,
    executor)`` parallel lists (deprecated; lengths are validated instead of
    silently zip-truncated).
    """
    if workloads is None or callable(workloads):
        if callable(workloads) and executor is not None:
            raise TypeError("pass either (pairs, executor) or legacy "
                            "(clients, workloads, executor), not both")
        resolved_executor = workloads if callable(workloads) else executor
        if resolved_executor is None:
            raise TypeError("an executor callable is required")
        pairs: List[Pair] = []
        for index, item in enumerate(sessions):
            try:
                session, workload = item
            except (TypeError, ValueError):
                raise TypeError(
                    f"item {index} is not a (session, workload) pair: "
                    f"{item!r}; drivers take explicit pairs "
                    f"(zip your sessions and workload generators)") from None
            pairs.append((session, workload))
        return pairs, resolved_executor

    warnings.warn(
        "passing parallel clients/workloads lists is deprecated; pass "
        "explicit (session, workload) pairs", DeprecationWarning,
        stacklevel=3)
    if executor is None:
        raise TypeError("an executor callable is required")
    sessions = list(sessions)
    workloads = list(workloads)
    if len(sessions) != len(workloads):
        raise ValueError(
            f"one workload generator per session is required "
            f"(got {len(sessions)} sessions, {len(workloads)} workloads)")
    return list(zip(sessions, workloads)), executor


def _next_item(workload):
    if hasattr(workload, "next_transaction"):
        return workload.next_transaction()
    return workload.next_operation()


class ClosedLoopDriver:
    """Runs ``count``-or-``duration``-bounded closed loops on a set of sessions."""

    def __init__(self, env, sessions: Sequence[Any],
                 workloads: Optional[Sequence[Any]] = None,
                 executor: Optional[Callable[[Any, Any], Any]] = None,
                 duration_ms: Optional[float] = None,
                 operations_per_client: Optional[int] = None,
                 think_time_ms: float = 0.0,
                 warmup_ms: float = 0.0):
        if duration_ms is None and operations_per_client is None:
            raise ValueError("specify duration_ms or operations_per_client")
        self.env = env
        self.pairs, self.executor = _resolve_pairs(sessions, workloads, executor)
        self.duration_ms = duration_ms
        self.operations_per_client = operations_per_client
        self.think_time_ms = think_time_ms
        self.warmup_ms = warmup_ms
        self.completed = 0

    def start(self) -> List[Any]:
        """Spawn one loop process per session; returns the processes."""
        return [
            self.env.process(self._loop(session, workload))
            for session, workload in self.pairs
        ]

    def _loop(self, session, workload):
        deadline = None
        if self.duration_ms is not None:
            deadline = self.env.now + self.warmup_ms + self.duration_ms
        issued = 0
        while True:
            if deadline is not None and self.env.now >= deadline:
                return
            if (self.operations_per_client is not None
                    and issued >= self.operations_per_client):
                return
            spec = _next_item(workload)
            yield from self.executor(session, spec)
            issued += 1
            self.completed += 1
            if self.think_time_ms > 0:
                yield self.env.timeout(self.think_time_ms)


@dataclass
class SessionStats:
    """Book-keeping for the partly-open driver."""

    sessions: int = 0
    transactions: int = 0


class PartlyOpenDriver:
    """The partly-open client model of §6.1.

    Each of the given sessions runs an independent arrival process: end-user
    sessions arrive with exponential inter-arrival times of rate
    ``arrival_rate_per_client`` (per millisecond); a session issues
    transactions back to back, continuing with probability
    ``continue_probability`` after each one and waiting ``think_time_ms`` in
    between.  ``reset_session`` is called at the start of every session
    (:func:`repro.api.executors.reset_session` gives each end-user session
    its own causal context — a fresh ``t_min`` on Spanner).
    """

    def __init__(self, env, sessions: Sequence[Any],
                 workloads: Optional[Sequence[Any]] = None,
                 executor: Optional[Callable[[Any, Any], Any]] = None,
                 arrival_rate_per_client: Optional[float] = None,
                 duration_ms: Optional[float] = None,
                 continue_probability: float = 0.9,
                 think_time_ms: float = 0.0,
                 reset_session: Optional[Callable[[Any], None]] = None,
                 seed: int = 0):
        if arrival_rate_per_client is None or duration_ms is None:
            raise TypeError(
                "arrival_rate_per_client and duration_ms are required")
        self.env = env
        self.pairs, self.executor = _resolve_pairs(sessions, workloads, executor)
        self.arrival_rate = arrival_rate_per_client
        self.duration_ms = duration_ms
        self.continue_probability = continue_probability
        self.think_time_ms = think_time_ms
        self.reset_session = reset_session
        self.rng = random.Random(seed)
        self.stats = SessionStats()

    def start(self) -> List[Any]:
        return [
            self.env.process(self._arrival_loop(session, workload))
            for session, workload in self.pairs
        ]

    def _arrival_loop(self, session, workload):
        deadline = self.env.now + self.duration_ms
        while self.env.now < deadline:
            inter_arrival = self.rng.expovariate(self.arrival_rate)
            yield self.env.timeout(inter_arrival)
            if self.env.now >= deadline:
                return
            yield from self._session(session, workload, deadline)

    def _session(self, session, workload, deadline):
        self.stats.sessions += 1
        if self.reset_session is not None:
            self.reset_session(session)
        while True:
            spec = _next_item(workload)
            yield from self.executor(session, spec)
            self.stats.transactions += 1
            if self.env.now >= deadline:
                return
            if self.rng.random() > self.continue_probability:
                return
            if self.think_time_ms > 0:
                yield self.env.timeout(self.think_time_ms)
