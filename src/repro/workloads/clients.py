"""Load-generating client loops (§6.1, §7.2).

Two drivers are provided:

* :class:`ClosedLoopDriver` — a fixed set of clients, each issuing its next
  operation as soon as the previous one completes (optionally with think
  time).  Used for the Gryff evaluation and the high-load experiments.
* :class:`PartlyOpenDriver` — the partly-open model of §6.1 [80]: sessions
  arrive according to a Poisson process; after each transaction the session
  continues with probability ``p`` (after think time ``H``) and otherwise
  ends.  Each session starts with a fresh causal context (a separate
  ``t_min``).

Both drivers are protocol-agnostic: they are parameterized by an *executor*
callable, ``executor(client, spec)``, returning a generator that performs one
workload item against the given client.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional

__all__ = ["ClosedLoopDriver", "PartlyOpenDriver"]


class ClosedLoopDriver:
    """Runs ``count``-or-``duration``-bounded closed loops on a set of clients."""

    def __init__(self, env, clients: List[Any], workloads: List[Any],
                 executor: Callable[[Any, Any], Any],
                 duration_ms: Optional[float] = None,
                 operations_per_client: Optional[int] = None,
                 think_time_ms: float = 0.0,
                 warmup_ms: float = 0.0):
        if duration_ms is None and operations_per_client is None:
            raise ValueError("specify duration_ms or operations_per_client")
        if len(clients) != len(workloads):
            raise ValueError("one workload generator per client is required")
        self.env = env
        self.clients = clients
        self.workloads = workloads
        self.executor = executor
        self.duration_ms = duration_ms
        self.operations_per_client = operations_per_client
        self.think_time_ms = think_time_ms
        self.warmup_ms = warmup_ms
        self.completed = 0

    def start(self) -> List[Any]:
        """Spawn one loop process per client; returns the processes."""
        return [
            self.env.process(self._loop(client, workload))
            for client, workload in zip(self.clients, self.workloads)
        ]

    def _loop(self, client, workload):
        deadline = None
        if self.duration_ms is not None:
            deadline = self.env.now + self.warmup_ms + self.duration_ms
        issued = 0
        while True:
            if deadline is not None and self.env.now >= deadline:
                return
            if (self.operations_per_client is not None
                    and issued >= self.operations_per_client):
                return
            spec = workload.next_transaction() if hasattr(workload, "next_transaction") \
                else workload.next_operation()
            yield from self.executor(client, spec)
            issued += 1
            self.completed += 1
            if self.think_time_ms > 0:
                yield self.env.timeout(self.think_time_ms)


@dataclass
class SessionStats:
    """Book-keeping for the partly-open driver."""

    sessions: int = 0
    transactions: int = 0


class PartlyOpenDriver:
    """The partly-open client model of §6.1.

    Each of the given clients runs an independent arrival process: sessions
    arrive with exponential inter-arrival times of rate ``arrival_rate_per_client``
    (per millisecond); a session issues transactions back to back, continuing
    with probability ``continue_probability`` after each one and waiting
    ``think_time_ms`` in between.  ``reset_session`` is called at the start of
    every session (the Spanner executor uses it to reset the client's
    ``t_min``, giving each session its own causal context).
    """

    def __init__(self, env, clients: List[Any], workloads: List[Any],
                 executor: Callable[[Any, Any], Any],
                 arrival_rate_per_client: float,
                 duration_ms: float,
                 continue_probability: float = 0.9,
                 think_time_ms: float = 0.0,
                 reset_session: Optional[Callable[[Any], None]] = None,
                 seed: int = 0):
        if len(clients) != len(workloads):
            raise ValueError("one workload generator per client is required")
        self.env = env
        self.clients = clients
        self.workloads = workloads
        self.executor = executor
        self.arrival_rate = arrival_rate_per_client
        self.duration_ms = duration_ms
        self.continue_probability = continue_probability
        self.think_time_ms = think_time_ms
        self.reset_session = reset_session
        self.rng = random.Random(seed)
        self.stats = SessionStats()

    def start(self) -> List[Any]:
        return [
            self.env.process(self._arrival_loop(client, workload))
            for client, workload in zip(self.clients, self.workloads)
        ]

    def _arrival_loop(self, client, workload):
        deadline = self.env.now + self.duration_ms
        while self.env.now < deadline:
            inter_arrival = self.rng.expovariate(self.arrival_rate)
            yield self.env.timeout(inter_arrival)
            if self.env.now >= deadline:
                return
            yield from self._session(client, workload, deadline)

    def _session(self, client, workload, deadline):
        self.stats.sessions += 1
        if self.reset_session is not None:
            self.reset_session(client)
        while True:
            spec = workload.next_transaction() if hasattr(workload, "next_transaction") \
                else workload.next_operation()
            yield from self.executor(client, spec)
            self.stats.transactions += 1
            if self.env.now >= deadline:
                return
            if self.rng.random() > self.continue_probability:
                return
            if self.think_time_ms > 0:
                yield self.env.timeout(self.think_time_ms)
