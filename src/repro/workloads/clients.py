"""Load-generating client loops (§6.1, §7.2).

Three drivers are provided:

* :class:`ClosedLoopDriver` — a fixed set of sessions, each issuing its next
  operation as soon as the previous one completes (optionally with think
  time).  Used for the Gryff evaluation and the high-load experiments.
* :class:`PartlyOpenDriver` — the partly-open model of §6.1 [80]: sessions
  arrive according to a Poisson process; after each transaction the session
  continues with probability ``p`` (after think time ``H``) and otherwise
  ends.  Each session starts with a fresh causal context (a separate
  ``t_min``).
* :class:`OpenLoopDriver` — a fixed *arrival rate* (Poisson or
  deterministic schedule), independent of how fast the system responds.
  Latency is measured from each arrival's **intended** send time, so
  queueing delay under saturation is charged to the operations that
  suffered it — the coordinated-omission correction a closed loop cannot
  provide (a closed-loop client stops generating while it waits, silently
  omitting exactly the samples that would have seen the queue).

All drivers are protocol-agnostic: they take a sequence of
``(session, workload)`` pairs — typically :class:`repro.api.Session`
objects paired with their workload generators — and an *executor* callable,
``executor(session, spec)``, returning a generator that performs one
workload item against the given session (:mod:`repro.api.executors` has the
standard ones).

The old calling convention (parallel ``clients``/``workloads`` lists with
implicit index pairing) is still accepted with a :class:`DeprecationWarning`;
pass explicit pairs instead.
"""

from __future__ import annotations

import random
import warnings
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

__all__ = ["ClosedLoopDriver", "PartlyOpenDriver", "OpenLoopDriver"]

Pair = Tuple[Any, Any]


def _resolve_pairs(sessions: Sequence[Any], workloads: Optional[Sequence[Any]],
                   executor: Optional[Callable[[Any, Any], Any]],
                   ) -> Tuple[List[Pair], Callable[[Any, Any], Any]]:
    """Validate the driver's session/workload input.

    New style: ``(pairs, executor)`` where every item of ``pairs`` is a
    ``(session, workload)`` 2-tuple.  Legacy style: ``(clients, workloads,
    executor)`` parallel lists (deprecated; lengths are validated instead of
    silently zip-truncated).
    """
    if workloads is None or callable(workloads):
        if callable(workloads) and executor is not None:
            raise TypeError("pass either (pairs, executor) or legacy "
                            "(clients, workloads, executor), not both")
        resolved_executor = workloads if callable(workloads) else executor
        if resolved_executor is None:
            raise TypeError("an executor callable is required")
        pairs: List[Pair] = []
        for index, item in enumerate(sessions):
            try:
                session, workload = item
            except (TypeError, ValueError):
                raise TypeError(
                    f"item {index} is not a (session, workload) pair: "
                    f"{item!r}; drivers take explicit pairs "
                    f"(zip your sessions and workload generators)") from None
            pairs.append((session, workload))
        return pairs, resolved_executor

    warnings.warn(
        "passing parallel clients/workloads lists is deprecated; pass "
        "explicit (session, workload) pairs", DeprecationWarning,
        stacklevel=3)
    if executor is None:
        raise TypeError("an executor callable is required")
    sessions = list(sessions)
    workloads = list(workloads)
    if len(sessions) != len(workloads):
        raise ValueError(
            f"one workload generator per session is required "
            f"(got {len(sessions)} sessions, {len(workloads)} workloads)")
    return list(zip(sessions, workloads)), executor


def _next_item(workload):
    if hasattr(workload, "next_transaction"):
        return workload.next_transaction()
    return workload.next_operation()


def _item_category(spec) -> str:
    """Latency-recorder category for one workload item."""
    kind = getattr(spec, "kind", None)
    if kind is not None:
        return kind
    return "txn-ro" if getattr(spec, "read_only", False) else "txn"


class ClosedLoopDriver:
    """Runs ``count``-or-``duration``-bounded closed loops on a set of sessions."""

    def __init__(self, env, sessions: Sequence[Any],
                 workloads: Optional[Sequence[Any]] = None,
                 executor: Optional[Callable[[Any, Any], Any]] = None,
                 duration_ms: Optional[float] = None,
                 operations_per_client: Optional[int] = None,
                 think_time_ms: float = 0.0,
                 warmup_ms: float = 0.0):
        if duration_ms is None and operations_per_client is None:
            raise ValueError("specify duration_ms or operations_per_client")
        self.env = env
        self.pairs, self.executor = _resolve_pairs(sessions, workloads, executor)
        self.duration_ms = duration_ms
        self.operations_per_client = operations_per_client
        self.think_time_ms = think_time_ms
        self.warmup_ms = warmup_ms
        self.completed = 0

    def start(self) -> List[Any]:
        """Spawn one loop process per session; returns the processes."""
        return [
            self.env.process(self._loop(session, workload))
            for session, workload in self.pairs
        ]

    def _loop(self, session, workload):
        deadline = None
        if self.duration_ms is not None:
            deadline = self.env.now + self.warmup_ms + self.duration_ms
        issued = 0
        while True:
            if deadline is not None and self.env.now >= deadline:
                return
            if (self.operations_per_client is not None
                    and issued >= self.operations_per_client):
                return
            spec = _next_item(workload)
            yield from self.executor(session, spec)
            issued += 1
            self.completed += 1
            if self.think_time_ms > 0:
                yield self.env.timeout(self.think_time_ms)


@dataclass
class SessionStats:
    """Book-keeping for the partly-open driver."""

    sessions: int = 0
    transactions: int = 0


class PartlyOpenDriver:
    """The partly-open client model of §6.1.

    Each of the given sessions runs an independent arrival process: end-user
    sessions arrive with exponential inter-arrival times of rate
    ``arrival_rate_per_client`` (per millisecond); a session issues
    transactions back to back, continuing with probability
    ``continue_probability`` after each one and waiting ``think_time_ms`` in
    between.  ``reset_session`` is called at the start of every session
    (:func:`repro.api.executors.reset_session` gives each end-user session
    its own causal context — a fresh ``t_min`` on Spanner).
    """

    def __init__(self, env, sessions: Sequence[Any],
                 workloads: Optional[Sequence[Any]] = None,
                 executor: Optional[Callable[[Any, Any], Any]] = None,
                 arrival_rate_per_client: Optional[float] = None,
                 duration_ms: Optional[float] = None,
                 continue_probability: float = 0.9,
                 think_time_ms: float = 0.0,
                 reset_session: Optional[Callable[[Any], None]] = None,
                 seed: int = 0):
        if arrival_rate_per_client is None or duration_ms is None:
            raise TypeError(
                "arrival_rate_per_client and duration_ms are required")
        self.env = env
        self.pairs, self.executor = _resolve_pairs(sessions, workloads, executor)
        self.arrival_rate = arrival_rate_per_client
        self.duration_ms = duration_ms
        self.continue_probability = continue_probability
        self.think_time_ms = think_time_ms
        self.reset_session = reset_session
        self.rng = random.Random(seed)
        self.stats = SessionStats()

    def start(self) -> List[Any]:
        return [
            self.env.process(self._arrival_loop(session, workload))
            for session, workload in self.pairs
        ]

    def _arrival_loop(self, session, workload):
        deadline = self.env.now + self.duration_ms
        while self.env.now < deadline:
            inter_arrival = self.rng.expovariate(self.arrival_rate)
            yield self.env.timeout(inter_arrival)
            if self.env.now >= deadline:
                return
            yield from self._session(session, workload, deadline)

    def _session(self, session, workload, deadline):
        self.stats.sessions += 1
        if self.reset_session is not None:
            self.reset_session(session)
        while True:
            spec = _next_item(workload)
            yield from self.executor(session, spec)
            self.stats.transactions += 1
            if self.env.now >= deadline:
                return
            if self.rng.random() > self.continue_probability:
                return
            if self.think_time_ms > 0:
                yield self.env.timeout(self.think_time_ms)


class OpenLoopDriver:
    """Arrival-rate load generation with coordinated-omission-correct latency.

    A single scheduler process emits arrivals at ``rate_per_s`` — Poisson
    (``arrival="poisson"``, seeded and reproducible) or a deterministic
    fixed-spacing schedule (``arrival="fixed"``) — for ``duration_ms``,
    *regardless of how fast operations complete*.  Each arrival claims a
    free session from the pool; when every session is busy the arrival
    queues in a backlog and keeps its **intended** send time.  When
    ``recorder`` is given, each completion is recorded as ``(intended
    arrival, completion)``, so time spent waiting for a session is part of
    the reported latency.  That is the coordinated-omission correction: a
    closed-loop client would simply have issued fewer operations while the
    system was slow, hiding the queueing delay from the percentiles.

    Sessions stay strictly sequential (one in-flight operation each), which
    the recorded history's per-process model requires; open-loop concurrency
    comes from the size of the session pool, so ``len(pairs)`` bounds the
    number of simultaneously outstanding operations.

    After the last scheduled arrival the driver drains the backlog and
    in-flight operations, giving up after ``drain_timeout_ms`` (leftover
    arrivals are counted in ``abandoned``).  :meth:`stats` reports offered
    vs. completed counts, the achieved rate, and the backlog high-water
    mark — ``achieved_rate_per_s`` falling well short of the requested rate
    means the system (or the session pool) saturated.
    """

    def __init__(self, env, sessions: Sequence[Any],
                 workloads: Optional[Sequence[Any]] = None,
                 executor: Optional[Callable[[Any, Any], Any]] = None,
                 rate_per_s: Optional[float] = None,
                 duration_ms: Optional[float] = None,
                 arrival: str = "poisson",
                 seed: int = 0,
                 recorder: Optional[Any] = None,
                 drain_timeout_ms: float = 10_000.0):
        if rate_per_s is None or duration_ms is None:
            raise TypeError("rate_per_s and duration_ms are required")
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if arrival not in ("poisson", "fixed"):
            raise ValueError(f"unknown arrival schedule {arrival!r} "
                             f"(poisson or fixed)")
        self.env = env
        self.pairs, self.executor = _resolve_pairs(sessions, workloads, executor)
        if not self.pairs:
            raise ValueError("at least one (session, workload) pair is required")
        self.rate_per_s = rate_per_s
        self.duration_ms = duration_ms
        self.arrival = arrival
        self.recorder = recorder
        self.drain_timeout_ms = drain_timeout_ms
        self.rng = random.Random(seed)
        self.offered = 0
        self.completed = 0
        self.abandoned = 0
        self.backlog_peak = 0
        self._free: List[Pair] = list(self.pairs)
        self._backlog: "deque[float]" = deque()
        self._in_flight = 0
        self._started_at: Optional[float] = None
        self._ended_at: Optional[float] = None

    def start(self) -> List[Any]:
        """Spawn the scheduler process (workers spawn per arrival)."""
        return [self.env.process(self._schedule_loop())]

    def _schedule_loop(self):
        env = self.env
        interarrival_ms = 1000.0 / self.rate_per_s
        start = env.now
        self._started_at = start
        deadline = start + self.duration_ms
        poisson = self.arrival == "poisson"
        expovariate = self.rng.expovariate
        next_time = start
        while True:
            next_time += (expovariate(1.0 / interarrival_ms) if poisson
                          else interarrival_ms)
            if next_time > deadline:
                break
            # Behind schedule (delay <= 0): dispatch immediately without
            # yielding — the open loop catches up in a burst and every
            # arrival keeps its intended timestamp.
            delay = next_time - env.now
            if delay > 0:
                yield env.timeout(delay)
            self._arrive(next_time)
        drain_deadline = env.now + self.drain_timeout_ms
        while ((self._in_flight or self._backlog)
               and env.now < drain_deadline):
            yield env.timeout(5.0)
        self.abandoned += len(self._backlog)
        self._backlog.clear()
        self._ended_at = env.now

    def _arrive(self, intended: float) -> None:
        self.offered += 1
        if self._free:
            pair = self._free.pop()
            self._in_flight += 1
            self.env.process(self._worker(pair, intended))
        else:
            self._backlog.append(intended)
            if len(self._backlog) > self.backlog_peak:
                self.backlog_peak = len(self._backlog)

    def _worker(self, pair, intended: float):
        session, workload = pair
        env = self.env
        recorder = self.recorder
        while True:
            spec = _next_item(workload)
            yield from self.executor(session, spec)
            self.completed += 1
            if recorder is not None:
                recorder.record(_item_category(spec), intended, env.now)
            if self._backlog:
                # Serve the oldest queued arrival on this freed session; its
                # wait so far stays inside its recorded latency.
                intended = self._backlog.popleft()
                continue
            self._free.append(pair)
            self._in_flight -= 1
            return

    def stats(self) -> "dict[str, Any]":
        """Offered vs. achieved accounting for the run summary."""
        wall_ms = None
        achieved = None
        if self._started_at is not None and self._ended_at is not None:
            wall_ms = self._ended_at - self._started_at
            if wall_ms > 0:
                achieved = self.completed * 1000.0 / wall_ms
        return {
            "arrival": self.arrival,
            "requested_rate_per_s": self.rate_per_s,
            "achieved_rate_per_s": achieved,
            "offered": self.offered,
            "completed": self.completed,
            "abandoned": self.abandoned,
            "backlog_peak": self.backlog_peak,
            "sessions": len(self.pairs),
            "wall_ms": wall_ms,
        }
