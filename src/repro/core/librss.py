"""libRSS — the composition meta-library of §4.1 (Figure 3).

A set of RSS (RSC) services only guarantees RSS globally if processes issue a
*real-time fence* at the previous service before switching to a different
service.  libRSS automates that: each service's client library registers a
fence callback, notifies libRSS before starting a transaction, and libRSS
invokes the previous service's fence when the service changes.

Two execution styles are supported, because fences in the simulator are
blocking protocol steps:

* synchronous callbacks (plain callables) — invoked inline;
* generator callbacks — returned to the caller from
  :meth:`LibRSS.start_transaction`, which itself is a generator meant to be
  driven by the simulation (``yield from librss.start_transaction(...)``).

Each application process (client) has its own interaction context, mirroring
the per-process "last service" state of the protocol in Appendix C.4.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

__all__ = ["LibRSS", "FenceRecord", "ServiceNotRegistered"]


class ServiceNotRegistered(Exception):
    """Raised when starting a transaction at an unknown service."""


@dataclass
class FenceRecord:
    """Bookkeeping for an issued fence (used by tests and the examples)."""

    process: str
    service: str
    at_switch_to: str
    sequence: int


class LibRSS:
    """In-memory registry of RSS services and their fences."""

    def __init__(self) -> None:
        self._fences: Dict[str, Callable[[str], Any]] = {}
        self._last_service: Dict[str, Optional[str]] = {}
        self._fence_log: List[FenceRecord] = []
        self._sequence = 0

    # ------------------------------------------------------------------ #
    # Figure 3 interface
    # ------------------------------------------------------------------ #
    def register_service(self, name: str, fence: Callable[[str], Any]) -> None:
        """RegisterService(name, fence_f): register a new RSS service.

        ``fence`` is called with the process name and must ensure that all
        transactions causally preceding the call are serialized before any
        transaction that follows the fence in real time.  It may be a plain
        callable or a generator function (for simulated blocking fences).
        """
        if name in self._fences:
            raise ValueError(f"service {name!r} already registered")
        self._fences[name] = fence

    def unregister_service(self, name: str) -> None:
        """UnregisterService(name)."""
        self._fences.pop(name, None)

    def start_transaction(self, process: str, service: str) -> Generator:
        """StartTransaction(name): notify libRSS that ``process`` is about to
        start a transaction at ``service``.

        This is a generator: drive it with ``yield from`` inside simulated
        client code.  If the previous service differs from ``service``, the
        previous service's fence is invoked (and, if it is a generator,
        awaited) before control returns.
        """
        if service not in self._fences:
            raise ServiceNotRegistered(f"service {service!r} is not registered")
        previous = self._last_service.get(process)
        if previous is not None and previous != service and previous in self._fences:
            yield from self._invoke_fence(process, previous, service)
        self._last_service[process] = service
        return None

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _invoke_fence(self, process: str, previous: str, new_service: str) -> Generator:
        self._sequence += 1
        self._fence_log.append(
            FenceRecord(process=process, service=previous,
                        at_switch_to=new_service, sequence=self._sequence)
        )
        fence = self._fences[previous]
        result = fence(process)
        if inspect.isgenerator(result):
            yield from result
        return None

    def observe_external_context(self, process: str, last_service: Optional[str]) -> None:
        """Import causal context propagated from another process (§4.2).

        Context-propagation frameworks carry the name of the last RSS service
        the sending process interacted with; importing it here means the next
        transaction by ``process`` at a different service triggers the fence.
        """
        if last_service is not None:
            self._last_service[process] = last_service

    def last_service(self, process: str) -> Optional[str]:
        return self._last_service.get(process)

    @property
    def registered_services(self) -> List[str]:
        return sorted(self._fences)

    @property
    def fence_log(self) -> List[FenceRecord]:
        return list(self._fence_log)

    def fences_issued(self, process: Optional[str] = None) -> int:
        if process is None:
            return len(self._fence_log)
        return sum(1 for record in self._fence_log if record.process == process)
