"""Operations in the formal model (§3.1–§3.3).

An :class:`Operation` bundles an invocation and (optionally) its matching
response.  It covers both the non-transactional interface (reads, writes,
read-modify-writes on a key-value register) and the transactional interface
(read-only and read-write transactions on a transactional key-value store),
plus FIFO-queue operations used by the messaging service in the photo-sharing
example and real-time fences used by libRSS.

Conventions
-----------
* Written values should be globally unique per key (the workloads guarantee
  this) so that the reads-from relation is unambiguous.
* ``invoked_at`` / ``responded_at`` are simulated-time stamps; a pending
  operation has ``responded_at is None``.
* ``meta`` carries protocol-level witness data (commit timestamps, snapshot
  timestamps, carstamps) used by the witness-based checkers.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional

__all__ = ["OpType", "Operation", "next_op_id", "reset_op_ids", "INITIAL_VALUE"]

#: The value returned when a key has never been written (the paper's ``null``).
INITIAL_VALUE = None

_op_counter = itertools.count(1)


def next_op_id() -> int:
    """Return a fresh globally unique operation id."""
    return next(_op_counter)


def reset_op_ids() -> None:
    """Reset the operation id counter (test isolation helper)."""
    global _op_counter
    _op_counter = itertools.count(1)


class OpType(enum.Enum):
    """The kinds of operations services support."""

    READ = "read"
    WRITE = "write"
    RMW = "rmw"
    RO_TXN = "ro_txn"
    RW_TXN = "rw_txn"
    ENQUEUE = "enqueue"
    DEQUEUE = "dequeue"
    FENCE = "fence"

    @property
    def transactional(self) -> bool:
        return self in (OpType.RO_TXN, OpType.RW_TXN)


@dataclass
class Operation:
    """A single invocation/response pair.

    Attributes
    ----------
    op_id:
        Globally unique id.
    process:
        Name of the invoking application process (client).
    service:
        Name of the service the operation targets (``"kv"`` by default);
        used by composite specifications and libRSS.
    op_type:
        The :class:`OpType`.
    key:
        Key accessed by register/queue operations (queues use the queue name).
    value:
        Value written (writes / rmws / enqueues).
    result:
        Value returned (reads / rmws read-result / dequeues).
    read_set:
        For transactions: mapping key → value observed.
    write_set:
        For read-write transactions: mapping key → value written.
    invoked_at / responded_at:
        Simulated invocation and response times.
    meta:
        Protocol witness data (commit timestamp, snapshot timestamp,
        carstamp, ...), not part of the formal model.
    """

    process: str
    op_type: OpType
    service: str = "kv"
    key: Any = None
    value: Any = None
    result: Any = None
    read_set: Dict[Any, Any] = field(default_factory=dict)
    write_set: Dict[Any, Any] = field(default_factory=dict)
    invoked_at: float = 0.0
    responded_at: Optional[float] = None
    op_id: int = field(default_factory=next_op_id)
    meta: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def read(cls, process: str, key: Any, result: Any = INITIAL_VALUE, *,
             invoked_at: float = 0.0, responded_at: Optional[float] = None,
             service: str = "kv", **meta: Any) -> "Operation":
        return cls(process=process, op_type=OpType.READ, key=key, result=result,
                   invoked_at=invoked_at, responded_at=responded_at,
                   service=service, meta=dict(meta))

    @classmethod
    def write(cls, process: str, key: Any, value: Any, *,
              invoked_at: float = 0.0, responded_at: Optional[float] = None,
              service: str = "kv", **meta: Any) -> "Operation":
        return cls(process=process, op_type=OpType.WRITE, key=key, value=value,
                   invoked_at=invoked_at, responded_at=responded_at,
                   service=service, meta=dict(meta))

    @classmethod
    def rmw(cls, process: str, key: Any, observed: Any, new_value: Any, *,
            invoked_at: float = 0.0, responded_at: Optional[float] = None,
            service: str = "kv", **meta: Any) -> "Operation":
        return cls(process=process, op_type=OpType.RMW, key=key, value=new_value,
                   result=observed, invoked_at=invoked_at,
                   responded_at=responded_at, service=service, meta=dict(meta))

    @classmethod
    def ro_txn(cls, process: str, read_set: Mapping[Any, Any], *,
               invoked_at: float = 0.0, responded_at: Optional[float] = None,
               service: str = "kv", **meta: Any) -> "Operation":
        return cls(process=process, op_type=OpType.RO_TXN,
                   read_set=dict(read_set), invoked_at=invoked_at,
                   responded_at=responded_at, service=service, meta=dict(meta))

    @classmethod
    def rw_txn(cls, process: str, read_set: Mapping[Any, Any],
               write_set: Mapping[Any, Any], *,
               invoked_at: float = 0.0, responded_at: Optional[float] = None,
               service: str = "kv", **meta: Any) -> "Operation":
        return cls(process=process, op_type=OpType.RW_TXN,
                   read_set=dict(read_set), write_set=dict(write_set),
                   invoked_at=invoked_at, responded_at=responded_at,
                   service=service, meta=dict(meta))

    @classmethod
    def enqueue(cls, process: str, queue: Any, value: Any, *,
                invoked_at: float = 0.0, responded_at: Optional[float] = None,
                service: str = "queue", **meta: Any) -> "Operation":
        return cls(process=process, op_type=OpType.ENQUEUE, key=queue,
                   value=value, invoked_at=invoked_at, responded_at=responded_at,
                   service=service, meta=dict(meta))

    @classmethod
    def dequeue(cls, process: str, queue: Any, result: Any, *,
                invoked_at: float = 0.0, responded_at: Optional[float] = None,
                service: str = "queue", **meta: Any) -> "Operation":
        return cls(process=process, op_type=OpType.DEQUEUE, key=queue,
                   result=result, invoked_at=invoked_at,
                   responded_at=responded_at, service=service, meta=dict(meta))

    @classmethod
    def fence(cls, process: str, *, invoked_at: float = 0.0,
              responded_at: Optional[float] = None, service: str = "kv",
              **meta: Any) -> "Operation":
        return cls(process=process, op_type=OpType.FENCE,
                   invoked_at=invoked_at, responded_at=responded_at,
                   service=service, meta=dict(meta))

    # ------------------------------------------------------------------ #
    # Classification
    # ------------------------------------------------------------------ #
    @property
    def is_complete(self) -> bool:
        """True if the operation's response has been observed."""
        return self.responded_at is not None

    @property
    def is_transaction(self) -> bool:
        return self.op_type.transactional

    @property
    def is_mutation(self) -> bool:
        """True if the operation mutates service state (the set W in §3.4)."""
        return self.op_type in (OpType.WRITE, OpType.RMW, OpType.RW_TXN, OpType.ENQUEUE,
                                OpType.DEQUEUE)

    @property
    def is_read_only(self) -> bool:
        return self.op_type in (OpType.READ, OpType.RO_TXN)

    # ------------------------------------------------------------------ #
    # Key footprints
    # ------------------------------------------------------------------ #
    def keys_read(self) -> frozenset:
        """Keys whose values the operation observes."""
        if self.op_type == OpType.READ:
            return frozenset([self.key])
        if self.op_type == OpType.RMW:
            return frozenset([self.key])
        if self.op_type in (OpType.RO_TXN, OpType.RW_TXN):
            return frozenset(self.read_set)
        if self.op_type == OpType.DEQUEUE:
            return frozenset([self.key])
        return frozenset()

    def keys_written(self) -> frozenset:
        """Keys whose values the operation mutates."""
        if self.op_type in (OpType.WRITE, OpType.RMW):
            return frozenset([self.key])
        if self.op_type == OpType.RW_TXN:
            return frozenset(self.write_set)
        if self.op_type in (OpType.ENQUEUE, OpType.DEQUEUE):
            return frozenset([self.key])
        return frozenset()

    def values_observed(self) -> Dict[Any, Any]:
        """Mapping key → value observed by this operation."""
        if self.op_type in (OpType.READ, OpType.RMW, OpType.DEQUEUE):
            return {self.key: self.result}
        if self.op_type in (OpType.RO_TXN, OpType.RW_TXN):
            return dict(self.read_set)
        return {}

    def values_written(self) -> Dict[Any, Any]:
        """Mapping key → value written by this operation."""
        if self.op_type in (OpType.WRITE, OpType.RMW):
            return {self.key: self.value}
        if self.op_type == OpType.RW_TXN:
            return dict(self.write_set)
        if self.op_type == OpType.ENQUEUE:
            return {self.key: self.value}
        return {}

    # ------------------------------------------------------------------ #
    # Conflicts (§3.3)
    # ------------------------------------------------------------------ #
    def conflicts_with(self, write_op: "Operation") -> bool:
        """True if this (read-only) operation conflicts with ``write_op``.

        A read-only transaction conflicts with a read-write transaction that
        writes a key it reads; a non-transactional read conflicts with a
        write/rmw to the same key.  (Definition of C_alpha(W) in §3.3.)
        """
        if self.service != write_op.service:
            return False
        return bool(self.keys_read() & write_op.keys_written())

    # ------------------------------------------------------------------ #
    # Wire serialization (JSONL traces)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-able rendering of the operation (for trace files).

        Tuples inside ``meta`` (e.g. Gryff carstamps) become JSON lists;
        consumers that compare carstamps already normalize with ``tuple()``.
        Non-string read/write-set keys are stringified by JSON encoders, so
        traces are only faithful for string-keyed services (all of ours are).
        """
        return {
            "op_id": self.op_id,
            "process": self.process,
            "op_type": self.op_type.value,
            "service": self.service,
            "key": self.key,
            "value": self.value,
            "result": self.result,
            "read_set": dict(self.read_set),
            "write_set": dict(self.write_set),
            "invoked_at": self.invoked_at,
            "responded_at": self.responded_at,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Operation":
        """Rebuild an operation from :meth:`to_dict` output.

        The recorded ``op_id`` is preserved (ids stay unique within the
        loaded history; they are not re-registered with the global counter).
        """
        return cls(
            process=data["process"],
            op_type=OpType(data["op_type"]),
            service=data.get("service", "kv"),
            key=data.get("key"),
            value=data.get("value"),
            result=data.get("result"),
            read_set=dict(data.get("read_set") or {}),
            write_set=dict(data.get("write_set") or {}),
            invoked_at=data.get("invoked_at", 0.0),
            responded_at=data.get("responded_at"),
            op_id=data["op_id"],
            meta=dict(data.get("meta") or {}),
        )

    # ------------------------------------------------------------------ #
    # Presentation
    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """A compact human-readable rendering used in examples and errors."""
        t = self.op_type
        if t == OpType.READ:
            body = f"r({self.key}={self.result})"
        elif t == OpType.WRITE:
            body = f"w({self.key}={self.value})"
        elif t == OpType.RMW:
            body = f"rmw({self.key}:{self.result}->{self.value})"
        elif t == OpType.RO_TXN:
            body = "RO[" + ", ".join(f"{k}={v}" for k, v in sorted(self.read_set.items(), key=str)) + "]"
        elif t == OpType.RW_TXN:
            reads = ", ".join(f"{k}={v}" for k, v in sorted(self.read_set.items(), key=str))
            writes = ", ".join(f"{k}:={v}" for k, v in sorted(self.write_set.items(), key=str))
            body = f"RW[reads {reads}; writes {writes}]"
        elif t == OpType.ENQUEUE:
            body = f"enq({self.key}<-{self.value})"
        elif t == OpType.DEQUEUE:
            body = f"deq({self.key}={self.result})"
        else:
            body = "fence"
        return f"{self.process}:{body}@{self.service}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Op {self.op_id} {self.describe()}>"


def operations_by_id(operations: Iterable[Operation]) -> Dict[int, Operation]:
    """Index a collection of operations by id."""
    return {op.op_id: op for op in operations}
