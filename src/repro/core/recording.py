"""Shared client-side invocation/response bookkeeping.

Every client library in the reproduction — the Gryff and Spanner protocol
clients, the messaging-service client — used to carry its own copy of the
same three rituals: announce an invocation to the history (so streaming
checkers and trace recorders can cut epochs at quiescent frontiers), record
a completed operation (latency sample + history append), and announce an
abandoned attempt (an aborted transaction that will never produce a
completion record).  :class:`SessionRecorder` hoists that bookkeeping into
one mixin, wired to whatever :class:`~repro.core.history.History` the
deployment shares — including a :class:`~repro.net.recorder.RecordingHistory`
streaming to a JSONL trace in the live runtime.

The mixin expects its host to provide ``self.env`` (for ``env.now``) and
``self.name`` (the default history process name); hosts that multiplex many
logical sessions over one client object (the Spanner client's per-session
causal contexts) override :attr:`history_process`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.events import Operation
from repro.core.history import History

__all__ = ["SessionRecorder"]


class SessionRecorder:
    """Mixin: history + latency-recorder bookkeeping for client libraries."""

    def _init_recording(self, history: Optional[History], recorder,
                        record_history: bool = True) -> None:
        """Install the shared history/recorder (fresh ones when ``None``)."""
        from repro.sim.stats import LatencyRecorder

        self.history = history if history is not None else History()
        self.recorder = recorder if recorder is not None else LatencyRecorder()
        self.record_history = record_history

    @property
    def history_process(self) -> str:
        """The process name operations are recorded under."""
        return self.name

    def _note_invocation(self, invoked_at: float) -> None:
        """Announce an invocation to the history (streaming checkers and
        trace recorders cut epochs at quiescent frontiers, which are only
        observable if invocations are announced before their responses)."""
        if self.record_history:
            self.history.note_invocation(self.history_process, invoked_at)

    def _note_abandoned(self) -> None:
        """Announce that the current attempt aborted and will never produce
        a completion record (a retry announces a fresh invocation)."""
        if self.record_history:
            self.history.note_abandoned(self.history_process, self.env.now)

    def _record(self, op: Operation, category: str, invoked_at: float,
                responded_at: Optional[float] = None) -> None:
        """Record a completed operation: latency sample + history append."""
        self.recorder.record(category, invoked_at,
                             self.env.now if responded_at is None
                             else responded_at)
        if self.record_history:
            self.history.add(op)
