"""The paper's example executions (Figure 2 and Appendix A, Figures 9–16).

Each builder returns ``(history, spec, expectations)`` where ``expectations``
maps model names to the verdict stated in the paper.  They are used by the
unit tests, the Appendix A benchmark, and the ``consistency_models`` example.

Timelines are chosen so the real-time relationships described in the paper's
prose hold; absolute numbers are arbitrary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.core.events import Operation
from repro.core.history import History
from repro.core.specification import (
    RegisterSpec,
    SequentialSpec,
    TransactionalKVSpec,
)

__all__ = [
    "PaperExample",
    "figure_2",
    "figure_9",
    "figure_10",
    "figure_11",
    "figure_13",
    "figure_14",
    "figure_15",
    "figure_16",
    "all_examples",
]


@dataclass
class PaperExample:
    """A named example execution with the paper's model verdicts."""

    name: str
    description: str
    history: History
    spec: SequentialSpec
    expectations: Dict[str, bool]


def figure_2() -> PaperExample:
    """Figure 2: an RSS execution transformable to a strictly serializable one.

    P2's write w1(x=1) is in flight; P3's read r2 observes it, while P1's
    later read r1 still returns the old value.  RSS admits the execution
    (serialization S = r1, w1, r2); strict serializability does not, because
    r2 → r1 in real time yet r1 returns the older value.
    """
    history = History()
    history.add(Operation.write("P2", "x", 1, invoked_at=0, responded_at=50))
    history.add(Operation.read("P3", "x", 1, invoked_at=2, responded_at=10))
    history.add(Operation.read("P1", "x", 0, invoked_at=20, responded_at=30))
    spec = RegisterSpec(initial={"x": 0})
    return PaperExample(
        name="figure_2",
        description="RSS execution transformable to a strictly serializable one",
        history=history,
        spec=spec,
        expectations={"rsc": True, "linearizability": False,
                      "sequential_consistency": True},
    )


def figure_9() -> PaperExample:
    """Figure 9: allowed by CRDB but disallowed by RSS.

    Alice's two photo-add writes execute at different Web servers (P2, P3) in
    real-time order; a concurrent read-only transaction sees only the second.
    """
    history = History()
    history.add(Operation.rw_txn("P2", read_set={}, write_set={"x": 1},
                                 invoked_at=0, responded_at=10))
    history.add(Operation.rw_txn("P3", read_set={}, write_set={"y": 1},
                                 invoked_at=20, responded_at=30))
    history.add(Operation.ro_txn("P1", read_set={"x": 0, "y": 1},
                                 invoked_at=5, responded_at=40))
    spec = TransactionalKVSpec(initial={"x": 0, "y": 0})
    return PaperExample(
        name="figure_9",
        description="w1 precedes w2 in real time; a concurrent read sees only w2",
        history=history,
        spec=spec,
        expectations={"rss": False, "crdb": True,
                      "strong_snapshot_isolation": False,
                      "po_serializability": True,
                      "strict_serializability": False},
    )


def figure_10() -> PaperExample:
    """Figure 10: allowed by RSS but disallowed by CRDB.

    A read observes an in-flight write; a later, causally unrelated read by a
    different process still returns the old value.
    """
    history = History()
    history.add(Operation.rw_txn("P2", read_set={}, write_set={"x": 1},
                                 invoked_at=0, responded_at=60))
    history.add(Operation.ro_txn("P3", read_set={"x": 1},
                                 invoked_at=10, responded_at=20))
    history.add(Operation.ro_txn("P1", read_set={"x": 0},
                                 invoked_at=30, responded_at=40))
    spec = TransactionalKVSpec(initial={"x": 0})
    return PaperExample(
        name="figure_10",
        description="read of concurrent write followed by a stale, causally unrelated read",
        history=history,
        spec=spec,
        expectations={"rss": True, "crdb": False, "strict_serializability": False,
                      "po_serializability": True},
    )


def figure_11() -> PaperExample:
    """Figure 11: write skew — allowed by strong snapshot isolation, not RSS."""
    history = History()
    history.add(Operation.rw_txn("P1", read_set={"x": 1, "y": 1},
                                 write_set={"x": 2},
                                 invoked_at=0, responded_at=10))
    history.add(Operation.rw_txn("P2", read_set={"x": 1, "y": 1},
                                 write_set={"y": 2},
                                 invoked_at=0, responded_at=10))
    spec = TransactionalKVSpec(initial={"x": 1, "y": 1})
    return PaperExample(
        name="figure_11",
        description="write skew between two concurrent read-write transactions",
        history=history,
        spec=spec,
        expectations={"strong_snapshot_isolation": True, "rss": False,
                      "po_serializability": False,
                      "strict_serializability": False, "crdb": False},
    )


def figure_13() -> PaperExample:
    """Figure 13: a stale read — allowed by OSC(U) but disallowed by RSC."""
    history = History()
    history.add(Operation.write("P1", "x", 1, invoked_at=0, responded_at=10))
    history.add(Operation.read("P2", "x", 0, invoked_at=20, responded_at=30))
    spec = RegisterSpec(initial={"x": 0})
    return PaperExample(
        name="figure_13",
        description="read starting after a completed write returns the old value",
        history=history,
        spec=spec,
        expectations={"osc_u": True, "rsc": False, "linearizability": False,
                      "sequential_consistency": True, "vv_regularity": False},
    )


def figure_14() -> PaperExample:
    """Figure 14: allowed by RSC but disallowed by OSC(U)."""
    history = History()
    history.add(Operation.write("P3", "x", 2, invoked_at=0, responded_at=100))
    history.add(Operation.read("P1", "x", 2, invoked_at=10, responded_at=20))
    history.add(Operation.write("P2", "x", 1, invoked_at=30, responded_at=90))
    history.add(Operation.read("P4", "x", 1, invoked_at=40, responded_at=50))
    history.add(Operation.read("P4", "x", 2, invoked_at=60, responded_at=70))
    spec = RegisterSpec(initial={"x": 0})
    return PaperExample(
        name="figure_14",
        description="r1 precedes w1 in real time yet P4 observes w1 before w2",
        history=history,
        spec=spec,
        expectations={"rsc": True, "osc_u": False, "linearizability": False,
                      "vv_regularity": True},
    )


def figure_15() -> PaperExample:
    """Figure 15: allowed by MWR-WO / MWR-NI but disallowed by RSC (IRIW)."""
    history = History()
    history.add(Operation.write("P1", "x", 1, invoked_at=0, responded_at=100))
    history.add(Operation.write("P2", "y", 1, invoked_at=0, responded_at=100))
    history.add(Operation.read("P3", "x", 1, invoked_at=10, responded_at=20))
    history.add(Operation.read("P3", "y", 0, invoked_at=30, responded_at=40))
    history.add(Operation.read("P4", "y", 1, invoked_at=10, responded_at=20))
    history.add(Operation.read("P4", "x", 0, invoked_at=30, responded_at=40))
    spec = RegisterSpec(initial={"x": 0, "y": 0})
    return PaperExample(
        name="figure_15",
        description="independent reads of independent writes observed in opposite orders",
        history=history,
        spec=spec,
        expectations={"rsc": False, "mwr_write_order": True, "mwr_no_inversion": True,
                      "sequential_consistency": False, "causal": True},
    )


def figure_16() -> PaperExample:
    """Figure 16: allowed by MWR-RF / MWR-NI but disallowed by RSC."""
    history = History()
    history.add(Operation.write("P1", "x", 1, invoked_at=0, responded_at=10))
    history.add(Operation.write("P3", "x", 2, invoked_at=0, responded_at=10))
    history.add(Operation.read("P2", "x", 1, invoked_at=20, responded_at=30))
    history.add(Operation.read("P4", "x", 2, invoked_at=20, responded_at=30))
    spec = RegisterSpec(initial={"x": 0})
    return PaperExample(
        name="figure_16",
        description="two completed concurrent writes observed in opposite orders by later reads",
        history=history,
        spec=spec,
        expectations={"rsc": False, "mwr_reads_from": True, "mwr_no_inversion": True,
                      "linearizability": False},
    )


def all_examples() -> List[PaperExample]:
    """All Appendix A / Figure 2 example executions."""
    return [
        figure_2(),
        figure_9(),
        figure_10(),
        figure_11(),
        figure_13(),
        figure_14(),
        figure_15(),
        figure_16(),
    ]
