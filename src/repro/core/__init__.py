"""Formal model of applications, services, and consistency models (§3, App. C).

Modules
-------
``events``
    Operations (reads, writes, rmws, transactions, queue ops, fences) with
    invocation/response times.
``history``
    A :class:`History` records the operations issued by a set of processes
    plus out-of-band message-passing edges between processes.
``relations``
    The real-time order (→) and potential-causality order (⇝) induced by a
    history.
``specification``
    Sequential specifications: key-value register, transactional key-value
    store, FIFO queue, and their composition.
``checkers``
    Consistency-model checkers: linearizability, sequential consistency, RSC,
    strict serializability, PO serializability, RSS, and the proximal models
    of Appendix A.
``transform``
    The Lemma 1 / Lemma C.5 transformation from an RSS (RSC) execution to an
    equivalent strictly serializable (linearizable) one.
``librss``
    The libRSS composition meta-library (Figure 3, §4.1).
"""

from repro.core.events import Operation, OpType, next_op_id, reset_op_ids
from repro.core.history import History
from repro.core.relations import CausalOrder, RealTimeOrder
from repro.core.specification import (
    CompositeSpec,
    FifoQueueSpec,
    RegisterSpec,
    SequentialSpec,
    TransactionalKVSpec,
)

__all__ = [
    "Operation",
    "OpType",
    "next_op_id",
    "reset_op_ids",
    "History",
    "CausalOrder",
    "RealTimeOrder",
    "SequentialSpec",
    "RegisterSpec",
    "TransactionalKVSpec",
    "FifoQueueSpec",
    "CompositeSpec",
]
