"""Consistency-model checkers.

Every checker takes a :class:`~repro.core.history.History` (and optionally a
sequential specification) and returns a :class:`CheckResult` whose
``satisfied`` flag says whether the history is admitted by the model.  The
search-based checkers are exhaustive and intended for small histories (unit
tests, the paper's appendix figures, Table 1 scenarios); the witness-based
checker in :mod:`repro.core.checkers.witness` scales to full simulation runs
by validating a protocol-provided serialization order instead of searching
for one.

The :data:`MODELS` registry maps model names to checker callables and is used
by the Table 1 / Appendix A benchmark drivers.
"""

from repro.core.checkers.base import CheckResult, SerializationSearch
from repro.core.checkers.realtime import (
    check_linearizability,
    check_strict_serializability,
)
from repro.core.checkers.sequential import (
    check_po_serializability,
    check_sequential_consistency,
)
from repro.core.checkers.regular import check_rsc, check_rss
from repro.core.checkers.causal import (
    check_causal_consistency,
    check_real_time_causal,
)
from repro.core.checkers.proximal import (
    check_crdb,
    check_osc_u,
    check_vv_regularity,
    check_mwr_weak,
    check_mwr_no_inversion,
    check_mwr_reads_from,
    check_mwr_write_order,
)
from repro.core.checkers.snapshot import check_strong_snapshot_isolation
from repro.core.checkers.streaming import (
    STREAMING_MODELS,
    EpochFrontier,
    EpochVerdict,
    StreamReport,
    StreamingChecker,
    StreamingWitnessChecker,
    check_segment,
    stream_history,
)
from repro.core.checkers.witness import check_with_witness

#: Registry of transactional model checkers (Table 1 / Figure 8).
TRANSACTIONAL_MODELS = {
    "strict_serializability": check_strict_serializability,
    "rss": check_rss,
    "po_serializability": check_po_serializability,
    "crdb": check_crdb,
    "strong_snapshot_isolation": check_strong_snapshot_isolation,
}

#: Registry of non-transactional model checkers (Figure 12).
NON_TRANSACTIONAL_MODELS = {
    "linearizability": check_linearizability,
    "rsc": check_rsc,
    "sequential_consistency": check_sequential_consistency,
    "osc_u": check_osc_u,
    "vv_regularity": check_vv_regularity,
    "real_time_causal": check_real_time_causal,
    "causal": check_causal_consistency,
    "mwr_weak": check_mwr_weak,
    "mwr_write_order": check_mwr_write_order,
    "mwr_reads_from": check_mwr_reads_from,
    "mwr_no_inversion": check_mwr_no_inversion,
}

MODELS = {**TRANSACTIONAL_MODELS, **NON_TRANSACTIONAL_MODELS}

__all__ = [
    "CheckResult",
    "SerializationSearch",
    "check_linearizability",
    "check_strict_serializability",
    "check_sequential_consistency",
    "check_po_serializability",
    "check_rsc",
    "check_rss",
    "check_causal_consistency",
    "check_real_time_causal",
    "check_crdb",
    "check_osc_u",
    "check_vv_regularity",
    "check_mwr_weak",
    "check_mwr_write_order",
    "check_mwr_reads_from",
    "check_mwr_no_inversion",
    "check_strong_snapshot_isolation",
    "check_with_witness",
    "STREAMING_MODELS",
    "EpochFrontier",
    "EpochVerdict",
    "StreamReport",
    "StreamingChecker",
    "StreamingWitnessChecker",
    "check_segment",
    "stream_history",
    "MODELS",
    "TRANSACTIONAL_MODELS",
    "NON_TRANSACTIONAL_MODELS",
]
