"""Checkers for the proximal consistency models of Appendix A.

These are the models the paper compares RSS and RSC against:

* CRDB's consistency model [87] — total order, process order respected, and
  *conflicting* transactions respect their real-time order.
* OSC(U) [49] — total order, process order respected, and every operation
  that precedes a write in real time is ordered before it.
* Viotti-Vukolić multi-writer regularity [92] — total order in which every
  operation that follows a write in real time is ordered after it (no
  process-order requirement).
* The Shao et al. multi-writer regularity family [81, 82] — per-read
  serializations of that read plus all writes.  MWR-Weak is implemented
  exactly; MWR-WO, MWR-RF, and MWR-NI are implemented with the documented
  approximations below, which agree with the paper's verdicts on the
  Appendix A example executions (Figures 14–16).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.events import Operation, OpType
from repro.core.history import History
from repro.core.orders import (
    RealTimeIndex,
    conflicting_pair_edges,
    osc_u_edges,
    reads_from_write_order_edges,
    sweep_edge_pairs,
    vv_regularity_edges,
)
from repro.core.specification import RegisterSpec, SequentialSpec
from repro.core.checkers.base import CheckResult, SerializationSearch, default_spec_for
from repro.core.checkers._shared import (
    process_order_edges,
    run_total_order_check,
    split_operations,
)

__all__ = [
    "check_crdb",
    "check_osc_u",
    "check_vv_regularity",
    "check_mwr_weak",
    "check_mwr_write_order",
    "check_mwr_reads_from",
    "check_mwr_no_inversion",
]


# --------------------------------------------------------------------------- #
# Transaction-level proximal model: CRDB
# --------------------------------------------------------------------------- #
def _transactions_conflict(a: Operation, b: Operation) -> bool:
    """Two operations conflict for CRDB purposes if they access a common key.

    CockroachDB guarantees per-key linearizability ("no stale reads"), so
    transactions touching a common key — even two reads — respect their
    real-time order; transactions on disjoint key sets carry no real-time
    guarantee (which is what permits the Figure 9 execution while Figure 10
    is forbidden).
    """
    if a.service != b.service:
        return False
    a_keys = a.keys_read() | a.keys_written()
    b_keys = b.keys_read() | b.keys_written()
    return bool(a_keys & b_keys)


def check_crdb(history: History, spec: Optional[SequentialSpec] = None) -> CheckResult:
    """Check CockroachDB's consistency model (Appendix A.1).

    Requires a legal total order respecting process order, in which
    transactions that access a common key respect their real-time order.
    Transactions on disjoint keys carry no real-time constraint, which is
    what permits the Figure 9 execution.
    """
    required, optional = split_operations(history)
    ops = required + optional
    edges = process_order_edges(history, ops)
    # Sweep-line per-key reduction of the conflicting-pair real-time order;
    # closure-equivalent to testing _transactions_conflict on every pair.
    edges.extend(conflicting_pair_edges(ops))
    return run_total_order_check(history, "crdb", edges, spec,
                                 required=required, optional=optional)


# --------------------------------------------------------------------------- #
# Non-transactional proximal models: OSC(U) and VV regularity
# --------------------------------------------------------------------------- #
def check_osc_u(history: History, spec: Optional[SequentialSpec] = None) -> CheckResult:
    """Check OSC(U) (Appendix A.2).

    Total order respecting process order, and every operation that *precedes*
    a write in real time must be ordered before that write.  Stale reads are
    allowed (Figure 13); Figure 14 is forbidden.
    """
    required, optional = split_operations(history)
    ops = required + optional
    edges = process_order_edges(history, ops)
    edges.extend(osc_u_edges(ops))
    return run_total_order_check(history, "osc_u", edges, spec,
                                 required=required, optional=optional)


def check_vv_regularity(history: History, spec: Optional[SequentialSpec] = None
                        ) -> CheckResult:
    """Check Viotti-Vukolić multi-writer regularity (Appendix A.2).

    Total order (no process-order requirement) in which every operation that
    *follows* a write in real time is ordered after that write.
    """
    required, optional = split_operations(history)
    ops = required + optional
    edges = vv_regularity_edges(ops)
    return run_total_order_check(history, "vv_regularity", edges, spec,
                                 required=required, optional=optional)


# --------------------------------------------------------------------------- #
# Shao et al. multi-writer regularity family
# --------------------------------------------------------------------------- #
def _reads_and_writes(history: History) -> Tuple[List[Operation], List[Operation]]:
    required, optional = split_operations(history)
    ops = required + optional
    reads = [op for op in ops if op.op_type == OpType.READ]
    writes = [op for op in ops if op.is_mutation]
    return reads, writes


def _write_order_edges(writes: List[Operation],
                       extra: Optional[List[Tuple[int, int]]] = None
                       ) -> List[Tuple[int, int]]:
    """Reduced real-time order among the writes."""
    edges = list(extra or [])
    edges.extend(sorted(set(sweep_edge_pairs(writes, writes, writes))))
    return edges


def _read_insertion_possible(read: Operation, writes: List[Operation],
                             write_order: List[Operation], rt: RealTimeIndex,
                             spec: SequentialSpec) -> bool:
    """Can ``read`` be inserted into ``write_order`` legally, respecting the
    real-time order between the read and the writes?"""
    earliest = 0
    latest = len(write_order)
    for index, write in enumerate(write_order):
        if rt.precedes(write, read):
            earliest = max(earliest, index + 1)
        if rt.precedes(read, write):
            latest = min(latest, index)
    if earliest > latest:
        return False
    for position in range(earliest, latest + 1):
        candidate = write_order[:position] + [read] + write_order[position:]
        if spec.legal(candidate):
            return True
    return False


def _serializations_of_writes(writes: List[Operation],
                              edges: List[Tuple[int, int]]) -> List[List[Operation]]:
    """All total orders of ``writes`` consistent with ``edges`` (small sets only)."""
    results: List[List[Operation]] = []
    by_id = {w.op_id: w for w in writes}
    successors: Dict[int, set] = {w.op_id: set() for w in writes}
    indegree = {w.op_id: 0 for w in writes}
    for a, b in edges:
        if a in by_id and b in by_id and b not in successors[a]:
            successors[a].add(b)
            indegree[b] += 1

    def extend(order: List[int], remaining: set, indeg: Dict[int, int]) -> None:
        if not remaining:
            results.append([by_id[i] for i in order])
            return
        for op_id in sorted(remaining):
            if indeg[op_id] == 0:
                remaining.remove(op_id)
                for succ in successors[op_id]:
                    indeg[succ] -= 1
                order.append(op_id)
                extend(order, remaining, indeg)
                order.pop()
                for succ in successors[op_id]:
                    indeg[succ] += 1
                remaining.add(op_id)

    extend([], set(by_id), dict(indegree))
    return results


def check_mwr_weak(history: History, spec: Optional[SequentialSpec] = None
                   ) -> CheckResult:
    """MWR-Weak: each read individually has a legal serialization with all
    writes respecting the real-time order of that read and the writes."""
    spec = spec or RegisterSpec()
    reads, writes = _reads_and_writes(history)
    rt = RealTimeIndex(reads + writes)
    write_orders = _serializations_of_writes(writes, _write_order_edges(writes))
    for read in reads:
        if not any(
            _read_insertion_possible(read, writes, order, rt, spec)
            for order in write_orders
        ):
            return CheckResult(False, "mwr_weak",
                               reason=f"read {read.describe()} has no serialization")
    return CheckResult(True, "mwr_weak")


def check_mwr_write_order(history: History, spec: Optional[SequentialSpec] = None
                          ) -> CheckResult:
    """MWR-Write-Order: reads pairwise agree on the order of mutually relevant
    writes.

    Approximation: we require a single total order of all writes (respecting
    the writes' real-time order) into which every read can be inserted.  On
    the Appendix A example executions this coincides with MWR-WO because all
    writes are relevant to all reads.
    """
    spec = spec or RegisterSpec()
    reads, writes = _reads_and_writes(history)
    rt = RealTimeIndex(reads + writes)
    for order in _serializations_of_writes(writes, _write_order_edges(writes)):
        if all(_read_insertion_possible(r, writes, order, rt, spec) for r in reads):
            return CheckResult(True, "mwr_write_order")
    return CheckResult(False, "mwr_write_order",
                       reason="no shared write order admits every read")


def check_mwr_reads_from(history: History, spec: Optional[SequentialSpec] = None
                         ) -> CheckResult:
    """MWR-Reads-From: per-read serializations must also respect the global
    reads-from relation.

    The reads-from relation induces extra write-order constraints: if some
    read q reads from write w2 and q precedes write w1 in real time, then w2
    must precede w1 in every serialization.
    """
    spec = spec or RegisterSpec()
    reads, writes = _reads_and_writes(history)
    rt = RealTimeIndex(reads + writes)
    write_by_key_value = {}
    for w in writes:
        for key, value in w.values_written().items():
            write_by_key_value[(key, value)] = w
    sources_of: Dict[int, List[int]] = {}
    for read in reads:
        for key, value in read.values_observed().items():
            source = write_by_key_value.get((key, value))
            if source is not None:
                sources_of.setdefault(read.op_id, []).append(source.op_id)
    derived = reads_from_write_order_edges(reads, writes, sources_of)
    write_orders = _serializations_of_writes(
        writes, _write_order_edges(writes, extra=derived))
    if not write_orders:
        return CheckResult(False, "mwr_reads_from",
                           reason="write-order constraints are cyclic")
    for read in reads:
        if not any(
            _read_insertion_possible(read, writes, order, rt, spec)
            for order in write_orders
        ):
            return CheckResult(False, "mwr_reads_from",
                               reason=f"read {read.describe()} has no serialization")
    return CheckResult(True, "mwr_reads_from")


def check_mwr_no_inversion(history: History, spec: Optional[SequentialSpec] = None
                           ) -> CheckResult:
    """MWR-No-Inversion: reads issued by the same process agree on the order
    of writes (different processes may disagree)."""
    spec = spec or RegisterSpec()
    reads, writes = _reads_and_writes(history)
    rt = RealTimeIndex(reads + writes)
    write_orders = _serializations_of_writes(writes, _write_order_edges(writes))
    for process in history.processes():
        own_reads = [r for r in reads if r.process == process]
        if not own_reads:
            continue
        if not any(
            all(_read_insertion_possible(r, writes, order, rt, spec) for r in own_reads)
            for order in write_orders
        ):
            return CheckResult(False, "mwr_no_inversion",
                               reason=f"process {process} reads disagree on write order")
    return CheckResult(True, "mwr_no_inversion")
