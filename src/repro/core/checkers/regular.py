"""Regular sequential consistency (RSC) and serializability (RSS) checkers.

The definitions follow §3.4 exactly.  An execution satisfies RSC (RSS) iff it
can be extended, by adding responses for some pending operations, such that
there is a legal sequence S with:

1. S equivalent to ``complete(α2)`` (every complete operation appears, and S
   restricted to each process equals that process's sub-history — implied by
   S respecting causal/process order);
2. causal order respected: ``o1 ⇝ o2 ⟹ o1 <_S o2``;
3. the "regular" real-time constraint: for every mutation ``w`` and every
   operation ``o`` that is another mutation or a conflicting read-only
   operation, ``w → o ⟹ w <_S o``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.history import History
from repro.core.checkers.base import CheckResult
from repro.core.checkers.streaming import check_segment, segment_constraint_edges
from repro.core.specification import SequentialSpec

__all__ = ["check_rsc", "check_rss", "regular_edges"]


def regular_edges(history: History):
    """Constraint edges for RSC/RSS: causal edges plus regular real-time edges."""
    return segment_constraint_edges(history, "rsc", history.operations())


def _check_regular(history: History, model: str,
                   spec: Optional[SequentialSpec]) -> CheckResult:
    # Batch checking is the degenerate streaming case: one whole-history
    # epoch starting from the initial state (same search, same witness).
    return check_segment(history, model, spec=spec).result


def check_rsc(history: History, spec: Optional[SequentialSpec] = None) -> CheckResult:
    """Check regular sequential consistency (non-transactional)."""
    return _check_regular(history, "rsc", spec)


def check_rss(history: History, spec: Optional[SequentialSpec] = None) -> CheckResult:
    """Check regular sequential serializability (transactional)."""
    return _check_regular(history, "rss", spec)
