"""Witness-based consistency checking for large simulated histories.

The exhaustive checkers are exponential and only practical for handfuls of
operations.  The protocol implementations, however, expose the serialization
order they construct internally (Spanner's commit/snapshot timestamps,
Gryff's carstamps), exactly as the paper's own correctness proofs do
(Theorems D.5 and D.15).  The witness checker validates such an order
against a consistency model's conditions in polynomial time:

1. the order contains every complete operation of the history;
2. the order is a legal sequential execution under the specification;
3. it respects every direct causal edge (and therefore the full ⇝ relation);
4. it respects the model's real-time constraint set
   (all pairs for strict serializability / linearizability, the "regular"
   write constraint for RSS / RSC, process order only for PO models).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.core.events import Operation
from repro.core.history import History
from repro.core.relations import (
    CausalOrder,
    regular_constraint_edges,
)
from repro.core.specification import SequentialSpec
from repro.core.checkers.base import CheckResult, default_spec_for
from repro.core.checkers._shared import process_order_edges, real_time_edges

__all__ = ["check_with_witness", "order_by_timestamp"]


def order_by_timestamp(history: History, key: Callable[[Operation], Tuple]
                       ) -> List[Operation]:
    """Build a witness order by sorting the history's operations by ``key``.

    Pending read-only operations are dropped (their responses are unknown);
    pending mutations are kept because their effects may have been observed.
    """
    ops = [op for op in history if op.is_complete or op.is_mutation]
    return sorted(ops, key=key)


def _model_edges(history: History, model: str, ops: Sequence[Operation]
                 ) -> List[Tuple[int, int]]:
    if model in ("strict_serializability", "linearizability"):
        return real_time_edges(history, ops)
    if model in ("rss", "rsc"):
        return regular_constraint_edges(history)
    if model in ("po_serializability", "sequential_consistency"):
        return process_order_edges(history, ops)
    raise ValueError(f"unsupported model for witness checking: {model}")


def check_with_witness(
    history: History,
    witness: Sequence[Operation],
    model: str = "rss",
    spec: Optional[SequentialSpec] = None,
    initial_state=None,
) -> CheckResult:
    """Validate a protocol-provided serialization order against ``model``.

    ``initial_state`` seeds the legality replay (defaults to the spec's
    initial state); the streaming checkers pass the state carried over the
    previous epoch cut.  On success the result's ``details["final_state"]``
    holds the replay's end state, which is the next epoch's seed.
    """
    spec = spec or default_spec_for(history)
    witness = list(witness)
    witness_ids = [op.op_id for op in witness]
    position = {op_id: index for index, op_id in enumerate(witness_ids)}
    if len(position) != len(witness_ids):
        return CheckResult(False, model, reason="witness contains duplicate operations")

    history_ids = {op.op_id for op in history}
    for op in witness:
        if op.op_id not in history_ids:
            return CheckResult(False, model,
                               reason=f"witness operation {op.op_id} not in history")
    missing = [op for op in history.complete() if op.op_id not in position]
    if missing:
        return CheckResult(
            False, model,
            reason=f"witness is missing {len(missing)} complete operations "
                   f"(first: {missing[0].describe()})",
        )

    # (2) Legality (from the seeded state, single pass).
    state = spec.initial_state() if initial_state is None else initial_state
    for index, op in enumerate(witness):
        legal, state = spec.apply(state, op)
        if not legal:
            return CheckResult(
                False, model,
                reason=f"witness is not a legal sequential execution at index "
                       f"{index}: {op.describe()}",
            )

    # (3) Causality.
    causal = CausalOrder(history)
    for src, dst in causal.edges():
        if src in position and dst in position and position[src] > position[dst]:
            return CheckResult(
                False, model,
                reason=f"witness violates causality: {history.get(src).describe()} "
                       f"must precede {history.get(dst).describe()}",
            )

    # (4) Model-specific real-time constraints.
    for src, dst in _model_edges(history, model, witness):
        if src in position and dst in position and position[src] > position[dst]:
            return CheckResult(
                False, model,
                reason=f"witness violates the {model} real-time constraint: "
                       f"{history.get(src).describe()} must precede "
                       f"{history.get(dst).describe()}",
            )

    return CheckResult(True, model, witness=witness,
                       details={"final_state": state})
