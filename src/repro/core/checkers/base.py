"""Generic serialization search shared by the total-order checkers.

Most of the consistency models in the paper have the same shape: the
execution is admitted iff there exists a sequence ``S`` in the service's
sequential specification that (1) contains every complete operation (plus,
optionally, some pending mutations whose responses we may add), and (2)
respects a model-specific set of precedence constraints.  The
:class:`SerializationSearch` class implements an exhaustive DFS over
constraint-respecting total orders, pruning with the specification's
incremental ``apply`` and memoizing dead states.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.events import Operation
from repro.core.history import History
from repro.core.specification import RegisterSpec, SequentialSpec, TransactionalKVSpec

__all__ = ["CheckResult", "SerializationSearch", "default_spec_for"]


@dataclass
class CheckResult:
    """Outcome of a consistency check."""

    satisfied: bool
    model: str
    witness: Optional[List[Operation]] = None
    reason: str = ""
    details: Dict[str, Any] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.satisfied

    def witness_ids(self) -> List[int]:
        return [op.op_id for op in (self.witness or [])]


def default_spec_for(history: History) -> SequentialSpec:
    """Pick a reasonable specification for a single-service history."""
    if any(op.is_transaction for op in history):
        return TransactionalKVSpec()
    return RegisterSpec()


class SerializationSearch:
    """Exhaustive search for a legal serialization respecting constraints.

    Operations are renumbered to dense integers (in op-id order, which keeps
    witness exploration deterministic); the not-yet-serialized set is a bit
    mask and indegrees/successors live in flat arrays.  Dead search states
    are memoized by ``(remaining mask, spec.state_key(state))`` in a table
    *shared across the optional-subset loop*: a state's fate depends only on
    the remaining operations and the specification state, not on which
    pending mutations were admitted, so failures proven for one subset prune
    every later subset.

    Parameters
    ----------
    spec:
        Sequential specification the serialization must satisfy.
    operations:
        The operations that *must* appear in the serialization.
    optional_operations:
        Pending mutations that *may* be included (the "extend α1 to α2 by
        adding zero or more responses" clause of the model definitions).
    constraints:
        ``(a_id, b_id)`` pairs meaning ``a`` must precede ``b`` whenever both
        are included.
    max_nodes:
        Safety valve on the number of DFS nodes explored (per subset).
    initial_state:
        Specification state the serialization starts from (defaults to
        ``spec.initial_state()``).  The streaming checkers seed each epoch's
        search with the states carried over from the previous epoch.
    failed:
        Optional shared dead-state memo.  A memo entry ``(remaining mask,
        state key)`` means "the remaining operations cannot be serialized
        from that state" — a fact independent of the initial state, so one
        set can be shared by searches over the *same* operations/constraints
        started from different initial states (the per-epoch multi-state
        loop of the streaming checker).
    """

    def __init__(
        self,
        spec: SequentialSpec,
        operations: Sequence[Operation],
        constraints: Iterable[Tuple[int, int]] = (),
        optional_operations: Sequence[Operation] = (),
        max_nodes: int = 2_000_000,
        initial_state: Any = None,
        failed: Optional[Set[Tuple[int, Any]]] = None,
    ):
        self.spec = spec
        self.required = list(operations)
        self.optional = list(optional_operations)
        self.constraints = list(constraints)
        self.max_nodes = max_nodes
        self.initial_state = initial_state
        self._shared_failed = failed
        self._nodes = 0

    # ------------------------------------------------------------------ #
    def _initial_state(self) -> Any:
        if self.initial_state is None:
            return self.spec.initial_state()
        return self.initial_state

    def _build_graph(self, all_ops: List[Operation]
                     ) -> Tuple[Dict[int, int], List[List[int]]]:
        index = {op.op_id: i for i, op in enumerate(all_ops)}
        successors: List[List[int]] = [[] for _ in range(len(all_ops))]
        seen_edges: Set[Tuple[int, int]] = set()
        for a, b in self.constraints:
            ia = index.get(a)
            ib = index.get(b)
            if ia is None or ib is None or ia == ib or (ia, ib) in seen_edges:
                continue
            seen_edges.add((ia, ib))
            successors[ia].append(ib)
        return index, successors

    def find(self) -> Optional[List[Operation]]:
        """Return a legal constraint-respecting serialization, or None."""
        all_ops = sorted(self.required + self.optional, key=lambda op: op.op_id)
        index, successors = self._build_graph(all_ops)

        required_mask = 0
        for op in self.required:
            required_mask |= 1 << index[op.op_id]
        optional_indices = [index[op.op_id] for op in self.optional]

        failed: Set[Tuple[int, Any]] = (
            self._shared_failed if self._shared_failed is not None else set())
        # Try including subsets of the optional (pending) mutations, smallest
        # first: the model allows us to pick any subset whose responses we
        # "add" to extend the execution.  The failed-state memo persists
        # across subsets.
        for r in range(len(optional_indices) + 1):
            for subset in itertools.combinations(optional_indices, r):
                mask = required_mask
                for i in subset:
                    mask |= 1 << i
                witness = self._search(all_ops, successors, mask, failed)
                if witness is not None:
                    return witness
        return None

    # ------------------------------------------------------------------ #
    def _search(
        self,
        all_ops: List[Operation],
        successors: List[List[int]],
        included_mask: int,
        failed: Set[Tuple[int, Any]],
    ) -> Optional[List[Operation]]:
        included = [i for i in range(len(all_ops)) if included_mask >> i & 1]
        indeg = [0] * len(all_ops)
        for i in included:
            for j in successors[i]:
                if included_mask >> j & 1:
                    indeg[j] += 1

        order: List[Operation] = []
        spec = self.spec
        apply = spec.apply
        state_key = spec.state_key
        max_nodes = self.max_nodes
        self._nodes = 0

        def dfs(state: Any, remaining: int) -> bool:
            if not remaining:
                return True
            self._nodes += 1
            if self._nodes > max_nodes:
                raise RuntimeError(
                    "serialization search exceeded node budget; history too large "
                    "for exhaustive checking (use the witness checker instead)"
                )
            memo_key = (remaining, state_key(state))
            if memo_key in failed:
                return False
            # Dense indices are assigned in op-id order, so this loop explores
            # ready operations deterministically (reproducible witnesses).
            for i in included:
                if not remaining >> i & 1 or indeg[i]:
                    continue
                ok, next_state = apply(state, all_ops[i])
                if not ok:
                    continue
                after = remaining & ~(1 << i)
                for j in successors[i]:
                    if after >> j & 1:
                        indeg[j] -= 1
                order.append(all_ops[i])
                if dfs(next_state, after):
                    return True
                order.pop()
                for j in successors[i]:
                    if after >> j & 1:
                        indeg[j] += 1
            failed.add(memo_key)
            return False

        if dfs(self._initial_state(), included_mask):
            return list(order)
        return None

    # ------------------------------------------------------------------ #
    def final_states(
        self,
        memo: Optional[Dict[Tuple[int, Any], frozenset]] = None,
        states_by_key: Optional[Dict[Any, Any]] = None,
    ) -> Tuple[Dict[Any, Any], Optional[List[Operation]]]:
        """Enumerate every distinct end state of a legal serialization.

        Returns ``(states_by_key, witness)``: a mapping from spec state key
        to one representative final state reachable by some legal,
        constraint-respecting serialization of the *required* operations
        starting from ``initial_state``, plus the first witness found
        (``None`` iff the mapping is empty).  This is the cross-epoch
        frontier of the streaming checkers: an epoch's successor must be
        checkable from at least one of these states.

        ``memo`` maps ``(remaining mask, state key)`` to the frozenset of
        reachable final state keys; passing the same dict across calls with
        identical operations/constraints (the per-epoch multi-initial-state
        loop) lets later enumerations reuse entire subtrees.  Optional
        operations are not supported here — mid-stream epochs are quiescent,
        so they never carry pending operations.
        """
        if self.optional:
            raise ValueError(
                "final-state enumeration does not support optional "
                "(pending) operations; quiescent epochs have none")
        all_ops = sorted(self.required, key=lambda op: op.op_id)
        _, successors = self._build_graph(all_ops)
        n = len(all_ops)
        full_mask = (1 << n) - 1

        indeg = [0] * n
        for i in range(n):
            for j in successors[i]:
                indeg[j] += 1

        memo = {} if memo is None else memo
        states = {} if states_by_key is None else states_by_key
        spec = self.spec
        apply = spec.apply
        state_key = spec.state_key
        max_nodes = self.max_nodes
        shared_failed = self._shared_failed
        self._nodes = 0
        order: List[Operation] = []
        witness: List[Optional[List[Operation]]] = [None]

        def dfs(state: Any, remaining: int) -> frozenset:
            if not remaining:
                key = state_key(state)
                if key not in states:
                    states[key] = state
                if witness[0] is None:
                    witness[0] = list(order)
                return frozenset((key,))
            self._nodes += 1
            if self._nodes > max_nodes:
                raise RuntimeError(
                    "final-state enumeration exceeded node budget; epoch too "
                    "large for exhaustive checking (use the witness checker "
                    "or smaller epochs)"
                )
            memo_key = (remaining, state_key(state))
            cached = memo.get(memo_key)
            if cached is not None:
                return cached
            reachable: set = set()
            for i in range(n):
                if not remaining >> i & 1 or indeg[i]:
                    continue
                ok, next_state = apply(state, all_ops[i])
                if not ok:
                    continue
                after = remaining & ~(1 << i)
                for j in successors[i]:
                    if after >> j & 1:
                        indeg[j] -= 1
                order.append(all_ops[i])
                reachable.update(dfs(next_state, after))
                order.pop()
                for j in successors[i]:
                    if after >> j & 1:
                        indeg[j] += 1
            result = frozenset(reachable)
            memo[memo_key] = result
            if not result and shared_failed is not None:
                shared_failed.add(memo_key)
            return result

        dfs(self._initial_state(), full_mask)
        return states, witness[0]
