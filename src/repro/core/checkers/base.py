"""Generic serialization search shared by the total-order checkers.

Most of the consistency models in the paper have the same shape: the
execution is admitted iff there exists a sequence ``S`` in the service's
sequential specification that (1) contains every complete operation (plus,
optionally, some pending mutations whose responses we may add), and (2)
respects a model-specific set of precedence constraints.  The
:class:`SerializationSearch` class implements an exhaustive DFS over
constraint-respecting total orders, pruning with the specification's
incremental ``apply`` and memoizing dead states.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.events import Operation
from repro.core.history import History
from repro.core.specification import RegisterSpec, SequentialSpec, TransactionalKVSpec

__all__ = ["CheckResult", "SerializationSearch", "default_spec_for"]


@dataclass
class CheckResult:
    """Outcome of a consistency check."""

    satisfied: bool
    model: str
    witness: Optional[List[Operation]] = None
    reason: str = ""
    details: Dict[str, Any] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.satisfied

    def witness_ids(self) -> List[int]:
        return [op.op_id for op in (self.witness or [])]


def default_spec_for(history: History) -> SequentialSpec:
    """Pick a reasonable specification for a single-service history."""
    if any(op.is_transaction for op in history):
        return TransactionalKVSpec()
    return RegisterSpec()


def _state_key(state: Any) -> Any:
    """A hashable rendering of a specification state (for memoization)."""
    if isinstance(state, dict):
        return tuple(sorted(((repr(k), _state_key(v)) for k, v in state.items())))
    if isinstance(state, (list, tuple)):
        return tuple(_state_key(v) for v in state)
    if isinstance(state, set):
        return tuple(sorted(repr(v) for v in state))
    return repr(state)


class SerializationSearch:
    """Exhaustive search for a legal serialization respecting constraints.

    Parameters
    ----------
    spec:
        Sequential specification the serialization must satisfy.
    operations:
        The operations that *must* appear in the serialization.
    optional_operations:
        Pending mutations that *may* be included (the "extend α1 to α2 by
        adding zero or more responses" clause of the model definitions).
    constraints:
        ``(a_id, b_id)`` pairs meaning ``a`` must precede ``b`` whenever both
        are included.
    max_nodes:
        Safety valve on the number of DFS nodes explored.
    """

    def __init__(
        self,
        spec: SequentialSpec,
        operations: Sequence[Operation],
        constraints: Iterable[Tuple[int, int]] = (),
        optional_operations: Sequence[Operation] = (),
        max_nodes: int = 2_000_000,
    ):
        self.spec = spec
        self.required = list(operations)
        self.optional = list(optional_operations)
        self.constraints = list(constraints)
        self.max_nodes = max_nodes
        self._nodes = 0

    # ------------------------------------------------------------------ #
    def find(self) -> Optional[List[Operation]]:
        """Return a legal constraint-respecting serialization, or None."""
        # Try including subsets of the optional (pending) mutations, smallest
        # first: the model allows us to pick any subset whose responses we
        # "add" to extend the execution.
        for r in range(len(self.optional) + 1):
            for subset in itertools.combinations(self.optional, r):
                witness = self._search(self.required + list(subset))
                if witness is not None:
                    return witness
        return None

    # ------------------------------------------------------------------ #
    def _search(self, ops: List[Operation]) -> Optional[List[Operation]]:
        by_id = {op.op_id: op for op in ops}
        included = set(by_id)
        successors: Dict[int, Set[int]] = {op_id: set() for op_id in included}
        indegree: Dict[int, int] = {op_id: 0 for op_id in included}
        for a, b in self.constraints:
            if a in included and b in included and b not in successors[a]:
                successors[a].add(b)
                indegree[b] += 1
        order: List[Operation] = []
        failed: Set[Tuple[FrozenSet[int], Any]] = set()
        self._nodes = 0

        def dfs(state: Any, remaining: Set[int], indeg: Dict[int, int]) -> bool:
            if not remaining:
                return True
            self._nodes += 1
            if self._nodes > self.max_nodes:
                raise RuntimeError(
                    "serialization search exceeded node budget; history too large "
                    "for exhaustive checking (use the witness checker instead)"
                )
            memo_key = (frozenset(remaining), _state_key(state))
            if memo_key in failed:
                return False
            ready = [op_id for op_id in remaining if indeg[op_id] == 0]
            # Deterministic exploration order helps reproducibility of
            # witnesses across runs.
            for op_id in sorted(ready):
                op = by_id[op_id]
                ok, next_state = self.spec.apply(state, op)
                if not ok:
                    continue
                remaining.remove(op_id)
                for succ in successors[op_id]:
                    if succ in remaining:
                        indeg[succ] -= 1
                order.append(op)
                if dfs(next_state, remaining, indeg):
                    return True
                order.pop()
                for succ in successors[op_id]:
                    if succ in remaining:
                        indeg[succ] += 1
                remaining.add(op_id)
            failed.add(memo_key)
            return False

        if dfs(self.spec.initial_state(), set(included), dict(indegree)):
            return list(order)
        return None
