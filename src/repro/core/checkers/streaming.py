"""Incremental, epoch-windowed consistency checking.

The offline checkers replay a finished history; this module checks a history
*while it streams in*, holding only one epoch plus a tiny cross-epoch
frontier in memory.  The construction (soundness argument in
``docs/streaming_check.md``):

* The stream is cut into **epochs** at quiescent real-time frontiers
  (:class:`~repro.core.history.SegmentStream`): instants where every pending
  invocation has responded.  No operation spans a cut, so *every* operation
  of epoch ``i`` precedes *every* operation of epoch ``j > i`` in real time.
* For the real-time-constrained models — RSS, RSC, linearizability, strict
  serializability — that total cross-epoch order means all cross-epoch
  constraints are satisfied by construction when epochs are serialized in
  order; only constraints *within* an epoch and the specification state
  carried *across* epochs remain to be checked.
* The carried frontier is the set of **feasible final specification
  states** of the serializations admitted so far
  (:meth:`SerializationSearch.final_states`).  A single state is not
  enough: two concurrent unread writes leave either value behind, and a
  later epoch may legally observe either one.
* Batch checking is the degenerate case: one whole-history epoch from the
  initial state — :func:`check_segment` with no frontier is exactly the
  code path ``check_rsc``/``check_rss``/``check_linearizability``/
  ``check_strict_serializability`` run, so offline results (including
  witnesses) are unchanged.

Two drivers are provided: :class:`StreamingChecker` runs the exhaustive
serialization search per epoch (small live runs, property tests, and the
offline checkers' backend), and :class:`StreamingWitnessChecker` validates a
protocol-provided witness order per epoch in linear time (live clusters at
full throughput; see :mod:`repro.net.check` for the protocol glue).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core import orders
from repro.core.events import Operation
from repro.core.history import History, Segment, SegmentStream
from repro.core.relations import CausalOrder
from repro.core.specification import SequentialSpec, _generic_state_key
from repro.core.checkers.base import (
    CheckResult,
    SerializationSearch,
    default_spec_for,
)
from repro.core.checkers._shared import split_operations

__all__ = [
    "STREAMING_MODELS",
    "EpochFrontier",
    "EpochVerdict",
    "StreamReport",
    "SegmentOutcome",
    "segment_constraint_edges",
    "check_segment",
    "StreamingChecker",
    "StreamingWitnessChecker",
    "history_events",
    "replay_events",
    "stream_history",
]

#: Models whose per-epoch checks compose to the whole history at quiescent
#: cuts.  Models without any real-time constraint (sequential consistency,
#: causal, ...) are *not* compositional: they admit serializations that
#: reorder operations across arbitrarily distant epochs.
STREAMING_MODELS = (
    "rsc",
    "rss",
    "linearizability",
    "strict_serializability",
)


@dataclass
class EpochFrontier:
    """Everything carried across an epoch cut.

    ``states`` are the feasible final specification states of the epochs
    checked so far, in a deterministic order.  Nothing else crosses the cut:
    operations, constraint edges, and search memos are all epoch-local.
    """

    states: Tuple[Any, ...]
    epoch_index: int = 0
    ops_checked: int = 0
    cut_time: Optional[float] = None

    def __len__(self) -> int:
        return len(self.states)


@dataclass
class EpochVerdict:
    """Per-epoch outcome reported by the streaming checkers."""

    index: int
    ops: int
    start_time: Optional[float]
    end_time: Optional[float]
    satisfied: Optional[bool]
    model: str
    reason: str = ""
    final: bool = False
    op_ids: Tuple[int, int] = (0, 0)  # (min, max) op id in the epoch

    def describe(self) -> str:
        if self.satisfied is None:
            status = "SKIPPED"
        elif self.satisfied:
            status = "SATISFIED"
        else:
            status = f"VIOLATED ({self.reason})"
        end = "open" if self.end_time is None else f"{self.end_time:g}"
        start = "?" if self.start_time is None else f"{self.start_time:g}"
        return (f"epoch {self.index}: {self.ops} ops [{start}, {end}] "
                f"{self.model}: {status}")


@dataclass
class StreamReport:
    """Summary of a completed streaming check."""

    satisfied: bool
    model: str
    epochs: int
    ops_checked: int
    verdicts: List[EpochVerdict]
    first_violation: Optional[EpochVerdict] = None
    max_segment_ops: int = 0
    frontier_states_peak: int = 1

    def __bool__(self) -> bool:
        return self.satisfied


@dataclass
class SegmentOutcome:
    """Result of checking one segment plus the frontier it hands on."""

    result: CheckResult
    frontier: Optional[EpochFrontier] = None


# --------------------------------------------------------------------------- #
# Per-segment constraint derivation and checking
# --------------------------------------------------------------------------- #
def segment_constraint_edges(
    history: History,
    model: str,
    ops: Sequence[Operation],
    causal: Optional[CausalOrder] = None,
) -> List[Tuple[int, int]]:
    """The model's constraint edges *within* one segment.

    Identical to the offline derivations (the offline checkers call this on
    their single whole-history segment); ``causal`` may be an incrementally
    maintained order for the segment to avoid a rebuild at the cut.
    """
    if model in ("linearizability", "strict_serializability"):
        return orders.real_time_edges(history, ops)
    if model in ("rsc", "rss"):
        causal = causal if causal is not None else CausalOrder(history)
        edges = list(causal.edges())
        edges.extend(orders.regular_constraint_edges(history))
        return edges
    raise ValueError(
        f"model {model!r} does not compose across epochs; streaming "
        f"checking supports {STREAMING_MODELS}")


def _ordered_states(states_by_key: Dict[Any, Any]) -> Tuple[Any, ...]:
    """Deterministic ordering of a frontier state set (hash-seed independent)."""
    return tuple(sorted(states_by_key.values(),
                        key=lambda state: repr(_generic_state_key(state))))


def check_segment(
    history: History,
    model: str,
    spec: Optional[SequentialSpec] = None,
    frontier: Optional[EpochFrontier] = None,
    max_nodes: int = 2_000_000,
    collect_frontier: bool = False,
    causal: Optional[CausalOrder] = None,
) -> SegmentOutcome:
    """Exhaustively check one segment against ``model``.

    With no ``frontier`` and ``collect_frontier=False`` this is exactly the
    offline whole-history check (same search, same witness).  With a frontier
    the segment is checked from each carried state; with
    ``collect_frontier=True`` the outcome carries the feasible final states
    for the next epoch.
    """
    spec = spec or default_spec_for(history)
    required, optional = split_operations(history)
    edges = segment_constraint_edges(history, model, required + optional,
                                     causal=causal)
    states: Tuple[Any, ...] = (
        frontier.states if frontier is not None and frontier.states
        else (None,))  # None → spec.initial_state() inside the search

    if collect_frontier:
        if optional:
            raise ValueError(
                "cannot carry a frontier across an epoch with pending "
                "operations; quiescent cuts have none")
        # The per-state enumerations share one memo (and one result dict),
        # so subtrees proven dead or already enumerated from one carried
        # state are never re-explored from another.
        memo: Dict[Tuple[int, Any], frozenset] = {}
        finals: Dict[Any, Any] = {}
        witness: Optional[List[Operation]] = None
        for state in states:
            search = SerializationSearch(
                spec=spec, operations=required, constraints=edges,
                max_nodes=max_nodes, initial_state=state,
            )
            _, state_witness = search.final_states(memo=memo,
                                                   states_by_key=finals)
            if witness is None:
                witness = state_witness
        if not finals:
            result = CheckResult(
                satisfied=False, model=model,
                reason="no legal serialization satisfies the model's constraints",
            )
            return SegmentOutcome(result=result, frontier=None)
        result = CheckResult(satisfied=True, model=model, witness=witness)
        next_frontier = EpochFrontier(
            states=_ordered_states(finals),
            epoch_index=(frontier.epoch_index + 1) if frontier else 1,
            ops_checked=((frontier.ops_checked if frontier else 0)
                         + len(required)),
        )
        return SegmentOutcome(result=result, frontier=next_frontier)

    shared_failed: Set[Tuple[int, Any]] = set()
    witness = None
    for state in states:
        search = SerializationSearch(
            spec=spec, operations=required, constraints=edges,
            optional_operations=optional, max_nodes=max_nodes,
            initial_state=state, failed=shared_failed,
        )
        witness = search.find()
        if witness is not None:
            break
    if witness is None:
        result = CheckResult(
            satisfied=False, model=model,
            reason="no legal serialization satisfies the model's constraints",
        )
    else:
        result = CheckResult(satisfied=True, model=model, witness=witness)
    return SegmentOutcome(result=result, frontier=None)


# --------------------------------------------------------------------------- #
# Streaming drivers
# --------------------------------------------------------------------------- #
class _StreamingBase:
    """Shared event plumbing: segment cutting, verdict bookkeeping."""

    def __init__(self, model: str, min_epoch_ops: int,
                 on_verdict: Optional[Callable[[EpochVerdict], None]] = None):
        self.model = model
        self._stream = SegmentStream(min_epoch_ops=min_epoch_ops)
        self._on_verdict = on_verdict
        self._deferred_edges: List[Tuple[int, int]] = []
        self.verdicts: List[EpochVerdict] = []
        self.first_violation: Optional[EpochVerdict] = None
        self._closed_report: Optional[StreamReport] = None

    # -- event feed ---------------------------------------------------- #
    def begin(self, process: str, invoked_at: float,
              op: Optional[Operation] = None) -> None:
        """An operation was invoked."""
        for segment in self._stream.begin(process, invoked_at, op):
            self._handle_segment(segment)

    def complete(self, op: Operation) -> None:
        """An operation responded (it joins the current epoch)."""
        for segment in self._stream.complete(op):  # pragma: no branch
            self._handle_segment(segment)
        self._op_appended(op)
        self._retry_deferred_edges(self._stream.current_history)

    def abandon(self, process: str, at_time: float) -> None:
        """An announced invocation aborted out and will never complete."""
        self._stream.abandon(process, at_time)

    def edge(self, src_id: int, dst_id: int) -> None:
        """A message edge between two operations.

        If the source has not landed in the current segment yet (it may
        still be pending — message edges are fed when their destination
        completes), the edge is parked and retried on later completions and
        at segment boundaries.  An edge that truly crosses segments is
        dropped soundly: segments are totally real-time ordered, and a
        message edge orders its source before its destination in real time.
        """
        if not self._try_edge(self._stream.current_history, src_id, dst_id):
            self._deferred_edges.append((src_id, dst_id))

    def _try_edge(self, history: History, src_id: int, dst_id: int) -> bool:
        try:
            src = history.get(src_id)
            dst = history.get(dst_id)
        except KeyError:
            return False
        history.add_message_edge(src, dst)
        self._edge_appended(src, dst)
        return True

    def _retry_deferred_edges(self, history: History,
                              prune: bool = False) -> None:
        if not self._deferred_edges:
            return
        remaining = []
        for src_id, dst_id in self._deferred_edges:
            if self._try_edge(history, src_id, dst_id):
                continue
            # Once the destination's segment is checked, the edge's chance
            # has passed: either cross-segment (sound to drop) or its
            # source never completed (no constraint to impose).
            if prune and dst_id in history._by_id:
                continue
            remaining.append((src_id, dst_id))
        self._deferred_edges = remaining

    def feed(self, op: Operation) -> None:
        """Convenience: announce and (if complete) immediately complete
        ``op`` — for callers replaying an already-ordered event stream."""
        self.begin(op.process, op.invoked_at, op)
        if op.is_complete:
            self.complete(op)

    # -- History observer interface (History.attach_observer) ---------- #
    def on_invocation(self, process: str, invoked_at: float) -> None:
        self.begin(process, invoked_at)

    def on_op(self, op: Operation) -> None:
        self.complete(op)

    def on_edge(self, src_op: Operation, dst_op: Operation) -> None:
        self.edge(src_op.op_id, dst_op.op_id)

    def on_abandoned(self, process: str, at_time: float) -> None:
        self.abandon(process, at_time)

    def close(self) -> StreamReport:
        """Flush the final segment and summarize."""
        if self._closed_report is not None:
            return self._closed_report
        segment = self._stream.close()
        if segment is not None:
            self._handle_segment(segment)
        self._closed_report = StreamReport(
            satisfied=self.first_violation is None,
            model=self.model,
            epochs=self._stream.segments_emitted,
            ops_checked=self._stream.ops_seen,
            verdicts=self.verdicts,
            first_violation=self.first_violation,
            max_segment_ops=self._stream.max_segment_ops,
            frontier_states_peak=self._frontier_peak(),
        )
        return self._closed_report

    # -- subclass hooks ------------------------------------------------ #
    def _op_appended(self, op: Operation) -> None:
        pass

    def _edge_appended(self, src_op: Operation, dst_op: Operation) -> None:
        pass

    def _frontier_peak(self) -> int:
        return 1

    def _check_segment(self, segment: Segment) -> Tuple[Optional[bool], str]:
        raise NotImplementedError

    # -- bookkeeping --------------------------------------------------- #
    def _handle_segment(self, segment: Segment) -> None:
        if len(segment.history) == 0:  # pragma: no cover - defensive
            return
        # Last chance for parked message edges whose source only landed in
        # this segment (e.g. a pending source op appended at close).
        self._retry_deferred_edges(segment.history, prune=True)
        satisfied, reason = self._check_segment(segment)
        ops = segment.history.operations()
        ids = [op.op_id for op in ops]
        verdict = EpochVerdict(
            index=segment.index,
            ops=len(ops),
            start_time=segment.start_time,
            end_time=segment.end_time,
            satisfied=satisfied,
            model=self.model,
            reason=reason,
            final=segment.final,
            op_ids=(min(ids), max(ids)),
        )
        self.verdicts.append(verdict)
        if satisfied is False and self.first_violation is None:
            self.first_violation = verdict
        if self._on_verdict is not None:
            self._on_verdict(verdict)


class StreamingChecker(_StreamingBase):
    """Exhaustive epoch-by-epoch checking with a carried state-set frontier.

    Equivalent to the offline checker on the whole history — same verdict,
    and the first violated epoch is the prefix at which the offline checker
    first fails (the property tests pin both) — while holding only the
    current epoch plus the frontier in memory.  Epochs after the first
    violation are reported with ``satisfied=None`` ("skipped"): once an
    epoch admits no serialization, there is no sound state to carry.
    """

    def __init__(
        self,
        model: str,
        spec: Optional[SequentialSpec] = None,
        min_epoch_ops: int = 1,
        max_nodes: int = 2_000_000,
        on_verdict: Optional[Callable[[EpochVerdict], None]] = None,
    ):
        if model not in STREAMING_MODELS:
            raise ValueError(
                f"model {model!r} does not compose across epochs; "
                f"streaming checking supports {STREAMING_MODELS}")
        super().__init__(model, min_epoch_ops, on_verdict)
        self._spec = spec
        self._spec_inferred = False
        self._txn_spec = False
        self._max_nodes = max_nodes
        self._frontier: Optional[EpochFrontier] = None
        self._frontier_states_peak = 1
        self._needs_causal = model in ("rsc", "rss")
        self._causal: Optional[CausalOrder] = None
        if self._needs_causal:
            self._causal = CausalOrder(self._stream.current_history)

    def _op_appended(self, op: Operation) -> None:
        if (self._spec_inferred and op.is_transaction
                and not self._txn_spec):
            # The offline checker picks its spec from the WHOLE history;
            # a stream that turns transactional after the spec was pinned
            # non-transactional cannot be checked equivalently — fail loud
            # rather than report a false violation.
            raise ValueError(
                "transactional operation arrived after the specification "
                "was inferred as non-transactional from earlier epochs; "
                "pass an explicit spec to StreamingChecker for mixed "
                "histories")
        if self._causal is not None:
            self._causal.append(op)

    def _edge_appended(self, src_op: Operation, dst_op: Operation) -> None:
        if self._causal is not None:
            self._causal.append_edge(src_op, dst_op)

    def _frontier_peak(self) -> int:
        return self._frontier_states_peak

    def _check_segment(self, segment: Segment) -> Tuple[Optional[bool], str]:
        causal = self._causal
        if self._needs_causal:
            # Rebind the incremental causal order to the next segment's
            # (fresh) history before the next operation arrives.
            self._causal = CausalOrder(self._stream.current_history)
        if segment.final:
            # The final segment may have gained pending operations at
            # close(), which the incremental order never saw: rebuild.
            causal = None
        if self.first_violation is not None:
            return None, "skipped: a previous epoch already violated the model"
        spec = self._spec
        if spec is None:
            spec = self._spec = default_spec_for(segment.history)
            self._spec_inferred = True
            self._txn_spec = any(op.is_transaction for op in segment.history)
        outcome = check_segment(
            segment.history, self.model, spec=spec, frontier=self._frontier,
            max_nodes=self._max_nodes, collect_frontier=not segment.final,
            causal=causal,
        )
        if outcome.frontier is not None:
            self._frontier = outcome.frontier
            self._frontier_states_peak = max(self._frontier_states_peak,
                                             len(outcome.frontier))
        return bool(outcome.result), outcome.result.reason


def _force_replay(spec: SequentialSpec, state: Any,
                  witness: Sequence[Operation]) -> Any:
    """Best-effort state advance past a violated epoch: apply every
    operation, keeping whatever state ``apply`` hands back even on illegal
    steps, so later epochs can still be monitored."""
    for op in witness:
        _, state = spec.apply(state, op)
    return state


class StreamingWitnessChecker(_StreamingBase):
    """Epoch-by-epoch validation of a protocol-provided witness order.

    ``witness_fn(segment_history)`` returns the protocol's serialization of
    one epoch (or ``None`` if its constraints are cyclic — itself a
    violation).  Validation replays the witness from the state carried over
    the previous cut, so a stale read whose value was overwritten in an
    earlier epoch fails exactly as it would in the batch check.  Unlike the
    exhaustive checker, a witness pins a *single* state per epoch, so the
    frontier is one state and checking is linear time and bounded memory.

    Verdicts after the first violation are best effort: the carried state is
    advanced by force-replaying the violated epoch's witness.
    """

    def __init__(
        self,
        witness_fn: Callable[[History], Optional[List[Operation]]],
        model: str,
        spec: SequentialSpec,
        min_epoch_ops: int = 64,
        on_verdict: Optional[Callable[[EpochVerdict], None]] = None,
    ):
        super().__init__(model, min_epoch_ops, on_verdict)
        self._witness_fn = witness_fn
        self._spec = spec
        self._state = spec.initial_state()

    def _check_segment(self, segment: Segment) -> Tuple[Optional[bool], str]:
        from repro.core.checkers.witness import check_with_witness

        history = segment.history
        witness = self._witness_fn(history)
        if witness is None:
            ordered = sorted((op for op in history if op.is_complete),
                             key=lambda op: (op.invoked_at, op.op_id))
            self._state = _force_replay(self._spec, self._state, ordered)
            return False, ("the protocol witness constraints are cyclic "
                           "within the epoch")
        result = check_with_witness(history, witness, model=self.model,
                                    spec=self._spec,
                                    initial_state=self._state)
        if result:
            self._state = result.details["final_state"]
            return True, ""
        self._state = _force_replay(self._spec, self._state, witness)
        return False, result.reason


# --------------------------------------------------------------------------- #
# Offline driver: replay a finished history as a stream
# --------------------------------------------------------------------------- #
#: Event kinds, ordered so that at equal timestamps an invocation sorts
#: before a completion: a zero-duration operation must begin before it
#: completes, and for *distinct* operations processing the invocation
#: first conservatively merges the timestamp tie into the current epoch
#: (exactly what the cut rule requires for ties).
_EVENT_BEGIN = 0
_EVENT_COMPLETE = 1


def history_events(history: History) -> List[Tuple[float, int, int, Operation]]:
    """The interleaved invocation/completion event list of a history, in
    the order a live capture would produce it."""
    events: List[Tuple[float, int, int, Operation]] = []
    for op in history:
        events.append((op.invoked_at, _EVENT_BEGIN, op.op_id, op))
        if op.is_complete:
            events.append((op.responded_at, _EVENT_COMPLETE, op.op_id, op))
    events.sort(key=lambda item: (item[0], item[1], item[2]))
    return events


def replay_events(
    events: Sequence[Tuple[float, int, int, Operation]],
    checker: _StreamingBase,
    edges_by_dst: Optional[Dict[int, List[int]]] = None,
    trailing_edges: Sequence[Tuple[int, int]] = (),
) -> StreamReport:
    """Drive a streaming checker from a prepared event list.

    Message edges are fed when their destination completes;
    ``trailing_edges`` (edges whose destination never completes — it joins
    the final segment as a pending operation) are fed just before close so
    the deferred-edge retry can apply them in the final segment.
    """
    for _, kind, _, op in events:
        if kind == _EVENT_BEGIN:
            checker.begin(op.process, op.invoked_at, op)
        else:
            checker.complete(op)
            if edges_by_dst:
                for src_id in edges_by_dst.get(op.op_id, ()):
                    checker.edge(src_id, op.op_id)
    for src_id, dst_id in trailing_edges:
        checker.edge(src_id, dst_id)
    return checker.close()


def stream_history(
    history: History,
    model: str,
    spec: Optional[SequentialSpec] = None,
    min_epoch_ops: int = 1,
    max_nodes: int = 2_000_000,
    checker: Optional[_StreamingBase] = None,
    on_verdict: Optional[Callable[[EpochVerdict], None]] = None,
) -> StreamReport:
    """Replay ``history`` through a streaming checker in event-time order.

    Invocation and completion events are interleaved by timestamp (the
    order a live capture would produce), message edges are fed after their
    destination completes, and the checker's verdict must match the offline
    checker on the same history — the property tests pin this.
    """
    if checker is None:
        checker = StreamingChecker(model, spec=spec,
                                   min_epoch_ops=min_epoch_ops,
                                   max_nodes=max_nodes, on_verdict=on_verdict)
    edges_by_dst: Dict[int, List[int]] = {}
    trailing_edges: List[Tuple[int, int]] = []
    for edge in history.message_edges:
        if history.get(edge.dst_op).is_complete:
            edges_by_dst.setdefault(edge.dst_op, []).append(edge.src_op)
        else:
            trailing_edges.append((edge.src_op, edge.dst_op))
    return replay_events(history_events(history), checker, edges_by_dst,
                         trailing_edges)
