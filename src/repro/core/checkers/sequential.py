"""Sequential consistency and process-ordered serializability checkers.

Both require a legal total order consistent with each client's process order
and nothing more (§2.5, §2.6); they differ only in whether the operations are
transactions.  Neither model is composable, so for histories spanning several
services the check is applied to each service's sub-history independently —
this is exactly why invariant I2 of the photo-sharing application fails under
PO serializability (Table 1) even though each service is individually
PO-serializable.
"""

from __future__ import annotations

from typing import Optional

from repro.core.history import History
from repro.core.specification import SequentialSpec
from repro.core.checkers.base import CheckResult
from repro.core.checkers._shared import (
    process_order_edges,
    run_total_order_check,
    split_operations,
)

__all__ = ["check_sequential_consistency", "check_po_serializability"]


def _check_single_service(history: History, model: str,
                          spec: Optional[SequentialSpec]) -> CheckResult:
    required, optional = split_operations(history)
    edges = process_order_edges(history, required + optional)
    return run_total_order_check(
        history, model=model, edges=edges, spec=spec,
        required=required, optional=optional,
    )


def _check_process_order_total_order(history: History, model: str,
                                     spec: Optional[SequentialSpec]) -> CheckResult:
    services = history.services()
    if len(services) <= 1:
        return _check_single_service(history, model, spec)
    # Neither sequential consistency nor PO serializability is composable
    # (§2.5): a deployment of several such services only guarantees that each
    # service *individually* admits a process-order-respecting serialization.
    per_service = {}
    for service in services:
        sub = history.restricted_to_service(service)
        result = _check_single_service(sub, model, spec)
        if not result.satisfied:
            return CheckResult(
                satisfied=False, model=model,
                reason=f"service {service!r}: {result.reason}",
            )
        per_service[service] = result.witness_ids()
    return CheckResult(satisfied=True, model=model,
                       details={"per_service": per_service})


def check_sequential_consistency(history: History, spec: Optional[SequentialSpec] = None
                                 ) -> CheckResult:
    """Check sequential consistency (non-transactional)."""
    return _check_process_order_total_order(history, "sequential_consistency", spec)


def check_po_serializability(history: History, spec: Optional[SequentialSpec] = None
                             ) -> CheckResult:
    """Check process-ordered serializability (transactional)."""
    return _check_process_order_total_order(history, "po_serializability", spec)
