"""Linearizability and strict serializability checkers.

Both models require a legal serialization that respects the real-time order
of *all* operations; linearizability is the non-transactional flavour and
strict serializability the transactional one (§2.4, §2.6).
"""

from __future__ import annotations

from typing import Optional

from repro.core.history import History
from repro.core.specification import SequentialSpec
from repro.core.checkers.base import CheckResult
from repro.core.checkers._shared import (
    real_time_edges,
    run_total_order_check,
    split_operations,
)

__all__ = ["check_linearizability", "check_strict_serializability"]


def _check_real_time_total_order(history: History, model: str,
                                 spec: Optional[SequentialSpec]) -> CheckResult:
    required, optional = split_operations(history)
    edges = real_time_edges(history, required + optional)
    return run_total_order_check(
        history, model=model, edges=edges, spec=spec,
        required=required, optional=optional,
    )


def check_linearizability(history: History, spec: Optional[SequentialSpec] = None
                          ) -> CheckResult:
    """Check linearizability of a (non-transactional) history."""
    return _check_real_time_total_order(history, "linearizability", spec)


def check_strict_serializability(history: History, spec: Optional[SequentialSpec] = None
                                 ) -> CheckResult:
    """Check strict serializability of a (transactional) history."""
    return _check_real_time_total_order(history, "strict_serializability", spec)
