"""Linearizability and strict serializability checkers.

Both models require a legal serialization that respects the real-time order
of *all* operations; linearizability is the non-transactional flavour and
strict serializability the transactional one (§2.4, §2.6).
"""

from __future__ import annotations

from typing import Optional

from repro.core.history import History
from repro.core.specification import SequentialSpec
from repro.core.checkers.base import CheckResult
from repro.core.checkers.streaming import check_segment

__all__ = ["check_linearizability", "check_strict_serializability"]


def _check_real_time_total_order(history: History, model: str,
                                 spec: Optional[SequentialSpec]) -> CheckResult:
    # Batch checking is the degenerate streaming case: one whole-history
    # epoch starting from the initial state (same search, same witness).
    return check_segment(history, model, spec=spec).result


def check_linearizability(history: History, spec: Optional[SequentialSpec] = None
                          ) -> CheckResult:
    """Check linearizability of a (non-transactional) history."""
    return _check_real_time_total_order(history, "linearizability", spec)


def check_strict_serializability(history: History, spec: Optional[SequentialSpec] = None
                                 ) -> CheckResult:
    """Check strict serializability of a (transactional) history."""
    return _check_real_time_total_order(history, "strict_serializability", spec)
