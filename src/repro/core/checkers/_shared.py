"""Helpers shared by the model-specific checkers."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core import orders
from repro.core.events import Operation
from repro.core.history import History
from repro.core.specification import SequentialSpec
from repro.core.checkers.base import CheckResult, SerializationSearch, default_spec_for

__all__ = [
    "split_operations",
    "real_time_edges",
    "process_order_edges",
    "run_total_order_check",
]


def split_operations(history: History) -> Tuple[List[Operation], List[Operation]]:
    """Split a history into required (complete) and optional (pending
    mutations) operations.

    Pending read-only operations are dropped: their responses are unknown so
    they impose no constraints; pending mutations may or may not have taken
    effect, so the search may include them ("adding zero or more responses").
    """
    required = history.complete()
    optional = [op for op in history.pending() if op.is_mutation]
    return required, optional


def real_time_edges(history: History, ops: Sequence[Operation]) -> List[Tuple[int, int]]:
    """Real-time precedence edges among ``ops``.

    Returns the sweep-line transitive reduction — closure-equivalent to the
    naive all-pairs set, which is all the serialization search and witness
    validator observe (any total order of ``ops`` respecting the reduction
    respects the full relation, since every reduction path stays inside
    ``ops``).
    """
    return orders.real_time_edges(history, ops)


def process_order_edges(history: History, ops: Sequence[Operation]) -> List[Tuple[int, int]]:
    """Per-process program-order edges among ``ops``."""
    included = {op.op_id for op in ops}
    edges = []
    for process in history.processes():
        chain = [op for op in history.by_process(process) if op.op_id in included]
        for earlier, later in zip(chain, chain[1:]):
            edges.append((earlier.op_id, later.op_id))
    return edges


def run_total_order_check(
    history: History,
    model: str,
    edges: Iterable[Tuple[int, int]],
    spec: Optional[SequentialSpec] = None,
    required: Optional[Sequence[Operation]] = None,
    optional: Optional[Sequence[Operation]] = None,
    max_nodes: int = 2_000_000,
) -> CheckResult:
    """Run the serialization search and wrap the outcome in a CheckResult."""
    spec = spec or default_spec_for(history)
    if required is None or optional is None:
        default_required, default_optional = split_operations(history)
        required = default_required if required is None else required
        optional = default_optional if optional is None else optional
    search = SerializationSearch(
        spec=spec,
        operations=required,
        constraints=edges,
        optional_operations=optional,
        max_nodes=max_nodes,
    )
    witness = search.find()
    if witness is None:
        return CheckResult(
            satisfied=False,
            model=model,
            reason="no legal serialization satisfies the model's constraints",
        )
    return CheckResult(satisfied=True, model=model, witness=witness)
