"""Causal consistency and real-time causal consistency checkers.

Causal consistency does not require a single total order: each process may
observe its own serialization, as long as every serialization contains all
mutations plus that process's own operations, is legal, and respects the
potential-causality order.  Real-time causal [63] additionally requires that
causally unrelated mutations appear in their real-time order.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.events import Operation
from repro.core.history import History
from repro.core.orders import mutation_order_edges
from repro.core.relations import CausalOrder
from repro.core.specification import SequentialSpec
from repro.core.checkers.base import CheckResult, SerializationSearch, default_spec_for
from repro.core.checkers._shared import split_operations

__all__ = ["check_causal_consistency", "check_real_time_causal"]


def _per_process_check(history: History, model: str,
                       spec: Optional[SequentialSpec],
                       writes_respect_real_time: bool) -> CheckResult:
    spec = spec or default_spec_for(history)
    required, optional = split_operations(history)
    causal = CausalOrder(history)
    causal_edges = causal.edges()

    extra_edges: List[Tuple[int, int]] = []
    if writes_respect_real_time:
        # Reduced real-time order among the mutations; every mutation is
        # visible to every process, so the reduction's chaining nodes are
        # always included in the per-process searches below.
        extra_edges = mutation_order_edges(required + optional)

    witnesses = {}
    for process in history.processes():
        own = [op for op in required if op.process == process]
        visible_required = [
            op for op in required if op.is_mutation or op.process == process
        ]
        visible_ids = {op.op_id for op in visible_required} | {op.op_id for op in optional}
        edges = [
            (a, b) for a, b in causal_edges + extra_edges
            if a in visible_ids and b in visible_ids
        ]
        search = SerializationSearch(
            spec=spec,
            operations=visible_required,
            constraints=edges,
            optional_operations=optional,
        )
        witness = search.find()
        if witness is None:
            return CheckResult(
                satisfied=False,
                model=model,
                reason=f"no legal serialization exists for process {process}",
            )
        witnesses[process] = [op.op_id for op in witness]
    return CheckResult(satisfied=True, model=model, details={"per_process": witnesses})


def check_causal_consistency(history: History, spec: Optional[SequentialSpec] = None
                             ) -> CheckResult:
    """Check causal (causal+) consistency."""
    return _per_process_check(history, "causal", spec, writes_respect_real_time=False)


def check_real_time_causal(history: History, spec: Optional[SequentialSpec] = None
                           ) -> CheckResult:
    """Check real-time causal consistency [63]."""
    return _per_process_check(history, "real_time_causal", spec,
                              writes_respect_real_time=True)
