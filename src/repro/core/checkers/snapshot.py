"""Strong snapshot isolation checker (Appendix A.1).

Strong snapshot isolation [25] strengthens snapshot isolation with a
real-time rule: if transaction T2 follows T1 in real time, T2's snapshot must
include T1.  Unlike RSS it does *not* require equivalence to a sequential
execution of transactions, so write skew (Figure 11) is allowed.

The checker enumerates interleavings of per-transaction snapshot/commit
events; it is exhaustive and intended for the small appendix examples and
unit tests.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.core.events import INITIAL_VALUE, Operation, OpType
from repro.core.history import History
from repro.core.relations import RealTimeOrder
from repro.core.checkers.base import CheckResult
from repro.core.checkers._shared import split_operations

__all__ = ["check_strong_snapshot_isolation"]


def _events_for(op: Operation) -> List[Tuple[int, str]]:
    if op.op_type == OpType.RW_TXN:
        return [(op.op_id, "snapshot"), (op.op_id, "commit")]
    return [(op.op_id, "snapshot")]


def _legal_event_order(order: List[Tuple[int, str]], ops: Dict[int, Operation],
                       rt_pairs: List[Tuple[int, int]],
                       initial: Optional[Dict] = None) -> bool:
    position = {event: index for index, event in enumerate(order)}
    # A transaction's snapshot precedes its commit.
    for op in ops.values():
        if op.op_type == OpType.RW_TXN:
            if position[(op.op_id, "snapshot")] > position[(op.op_id, "commit")]:
                return False
    # Strong SI real-time rule: T1 → T2 implies T1's effects are included in
    # T2's snapshot (commit of T1, or snapshot point for read-only T1,
    # precedes T2's snapshot).
    for a, b in rt_pairs:
        a_point = (a, "commit") if ops[a].op_type == OpType.RW_TXN else (a, "snapshot")
        if position[a_point] > position[(b, "snapshot")]:
            return False
    # Reads see the committed state at their snapshot.
    for op in ops.values():
        snapshot_index = position[(op.op_id, "snapshot")]
        state: Dict = dict(initial or {})
        committed = [
            other for other in ops.values()
            if other.op_type == OpType.RW_TXN
            and position[(other.op_id, "commit")] < snapshot_index
        ]
        committed.sort(key=lambda other: position[(other.op_id, "commit")])
        for other in committed:
            state.update(other.write_set)
        for key, observed in op.read_set.items():
            if observed != state.get(key, INITIAL_VALUE):
                return False
    # First-committer-wins: concurrent transactions must not write the same key.
    rw = [op for op in ops.values() if op.op_type == OpType.RW_TXN]
    for t1, t2 in itertools.combinations(rw, 2):
        if not (set(t1.write_set) & set(t2.write_set)):
            continue
        t1_before_t2 = position[(t1.op_id, "commit")] < position[(t2.op_id, "snapshot")]
        t2_before_t1 = position[(t2.op_id, "commit")] < position[(t1.op_id, "snapshot")]
        if not (t1_before_t2 or t2_before_t1):
            return False
    return True


def check_strong_snapshot_isolation(history: History, spec=None) -> CheckResult:
    """Check strong snapshot isolation over a transactional history.

    If ``spec`` provides an ``initial`` mapping (as the register and
    transactional specifications do), it seeds the database state.
    """
    initial = dict(getattr(spec, "initial", {}) or {})
    required, optional = split_operations(history)
    rt = RealTimeOrder(history)

    for r in range(len(optional) + 1):
        for subset in itertools.combinations(optional, r):
            ops = {op.op_id: op for op in list(required) + list(subset)}
            rt_pairs = [
                (a.op_id, b.op_id)
                for a in ops.values() for b in ops.values()
                if a.op_id != b.op_id and rt.precedes(a, b)
            ]
            events: List[Tuple[int, str]] = []
            for op in ops.values():
                events.extend(_events_for(op))
            for order in itertools.permutations(events):
                if _legal_event_order(list(order), ops, rt_pairs, initial):
                    return CheckResult(True, "strong_snapshot_isolation",
                                       details={"event_order": list(order)})
    return CheckResult(False, "strong_snapshot_isolation",
                       reason="no snapshot/commit interleaving is consistent")
