"""Histories of operations issued by application processes.

A :class:`History` is the checker-facing record of an execution: the
operations each process invoked (with invocation/response times) plus any
out-of-band message-passing edges between processes (e.g. "Alice calls Bob"),
which contribute to the potential-causality order even though they are not
service operations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterable, List, Optional, Tuple, Union

from repro.core.events import Operation, OpType

__all__ = ["MessageEdge", "History", "iter_jsonl_records"]


def iter_jsonl_records(source: Iterable[str]) -> Iterable[Dict[str, Any]]:
    """Yield parsed JSON objects from JSONL lines, skipping blanks.

    An undecodable *final* line is tolerated: a crash can truncate the last
    record of a live trace mid-write, and losing only the in-flight record
    is exactly the recorder's durability contract.  An undecodable line
    *followed by further records* is real corruption and raises.
    """
    decode_error: Optional[json.JSONDecodeError] = None
    for line in source:
        line = line.strip()
        if not line:
            continue
        if decode_error is not None:
            raise decode_error
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            decode_error = exc
            continue
        yield record


@dataclass(frozen=True)
class MessageEdge:
    """An out-of-band causal edge: ``src_op``'s process later communicated
    with ``dst_op``'s process, after ``src_op`` responded and before
    ``dst_op`` was invoked."""

    src_op: int
    dst_op: int


class History:
    """An ordered record of operations plus message-passing edges."""

    def __init__(self, operations: Optional[Iterable[Operation]] = None):
        self._ops: List[Operation] = []
        self._by_id: Dict[int, Operation] = {}
        self.message_edges: List[MessageEdge] = []
        #: Lazily built caches; invalidated whenever an operation is added.
        self._process_cache: Optional[Dict[str, List[Operation]]] = None
        self._writer_index: Optional[Dict[Tuple[str, Any, Any], List[Operation]]] = None
        self._writer_index_exact = True
        if operations:
            for op in operations:
                self.add(op)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add(self, op: Operation) -> Operation:
        """Append an operation to the history."""
        if op.op_id in self._by_id:
            raise ValueError(f"duplicate operation id {op.op_id}")
        self._ops.append(op)
        self._by_id[op.op_id] = op
        self._process_cache = None
        self._writer_index = None
        return op

    def add_message_edge(self, src_op: Operation, dst_op: Operation) -> None:
        """Record that ``src_op``'s process sent a message (after ``src_op``
        completed) that was received by ``dst_op``'s process before
        ``dst_op`` was invoked."""
        if src_op.op_id not in self._by_id or dst_op.op_id not in self._by_id:
            raise ValueError("both operations must belong to this history")
        self.message_edges.append(MessageEdge(src_op.op_id, dst_op.op_id))

    def extend(self, other: "History") -> None:
        """Append all operations and edges of another history."""
        for op in other.operations():
            self.add(op)
        self.message_edges.extend(other.message_edges)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self):
        return iter(self._ops)

    def operations(self) -> List[Operation]:
        return list(self._ops)

    def get(self, op_id: int) -> Operation:
        return self._by_id[op_id]

    def complete(self) -> List[Operation]:
        """The complete(α) subsequence: operations with responses."""
        return [op for op in self._ops if op.is_complete]

    def pending(self) -> List[Operation]:
        return [op for op in self._ops if not op.is_complete]

    def processes(self) -> List[str]:
        return sorted(self._process_groups())

    def services(self) -> List[str]:
        return sorted({op.service for op in self._ops})

    def _process_groups(self) -> Dict[str, List[Operation]]:
        """Memoized process → sub-history (invocation order) mapping."""
        if self._process_cache is None:
            groups: Dict[str, List[Operation]] = {}
            for op in self._ops:
                groups.setdefault(op.process, []).append(op)
            for ops in groups.values():
                ops.sort(key=lambda o: (o.invoked_at, o.op_id))
            self._process_cache = groups
        return self._process_cache

    def by_process(self, process: str) -> List[Operation]:
        """A process's sub-history in invocation order (its process order)."""
        return list(self._process_groups().get(process, []))

    def transactions(self) -> List[Operation]:
        return [op for op in self._ops if op.is_transaction]

    def mutations(self) -> List[Operation]:
        """The set W of mutating operations."""
        return [op for op in self._ops if op.is_mutation]

    def _build_writer_index(self) -> None:
        """Index (service, key, value) → writers, for O(1) reads-from lookup.

        Falls back to exact linear scans if any written value is unhashable
        (``_writer_index_exact`` is then False and the index is unused).
        """
        index: Dict[Tuple[str, Any, Any], List[Operation]] = {}
        exact = True
        for op in self._ops:
            written = op.values_written()
            if not written:
                continue
            for key, value in written.items():
                try:
                    index.setdefault((op.service, key, value), []).append(op)
                except TypeError:
                    exact = False
                    break
            if not exact:
                break
        self._writer_index = index if exact else {}
        self._writer_index_exact = exact

    def writers_of(self, key: Any, value: Any, service: str = "kv") -> List[Operation]:
        """Operations that wrote ``value`` to ``key`` (for reads-from)."""
        if self._writer_index is None:
            self._build_writer_index()
        if self._writer_index_exact:
            try:
                return list(self._writer_index.get((service, key, value), ()))
            except TypeError:
                pass  # unhashable query value: fall through to the scan
        found = []
        for op in self._ops:
            if op.service != service:
                continue
            written = op.values_written()
            if key in written and written[key] == value:
                found.append(op)
        return found

    # ------------------------------------------------------------------ #
    # Well-formedness (§3.1)
    # ------------------------------------------------------------------ #
    def check_well_formed(self) -> None:
        """Raise ``ValueError`` if any process has overlapping operations."""
        for process in self.processes():
            ops = self.by_process(process)
            previous: Optional[Operation] = None
            for op in ops:
                if op.is_complete and op.responded_at < op.invoked_at:
                    raise ValueError(f"operation {op.op_id} responds before invocation")
                if previous is not None:
                    if not previous.is_complete:
                        raise ValueError(
                            f"process {process} invoked {op.op_id} while "
                            f"{previous.op_id} was still outstanding"
                        )
                    if op.invoked_at < previous.responded_at:
                        raise ValueError(
                            f"process {process} operations {previous.op_id} and "
                            f"{op.op_id} overlap"
                        )
                previous = op

    def is_well_formed(self) -> bool:
        try:
            self.check_well_formed()
        except ValueError:
            return False
        return True

    # ------------------------------------------------------------------ #
    # JSONL serialization (live traces / offline re-checking)
    # ------------------------------------------------------------------ #
    def to_jsonl(self, destination: Union[str, IO[str]]) -> None:
        """Write the history as JSON Lines: one ``{"type": "op", ...}`` record
        per operation (in recording order) followed by one
        ``{"type": "edge", ...}`` record per message edge.

        ``destination`` is a path or an open text file.  The format is shared
        with the live-cluster trace recorder, so :meth:`from_jsonl` reads both
        offline dumps and live captures.
        """
        if isinstance(destination, str):
            with open(destination, "w", encoding="utf-8") as handle:
                self.to_jsonl(handle)
            return
        for op in self._ops:
            record = {"type": "op"}
            record.update(op.to_dict())
            destination.write(json.dumps(record, separators=(",", ":"),
                                         default=str))
            destination.write("\n")
        for edge in self.message_edges:
            destination.write(json.dumps(
                {"type": "edge", "src_op": edge.src_op, "dst_op": edge.dst_op},
                separators=(",", ":")))
            destination.write("\n")

    @classmethod
    def from_records(cls, records: Iterable[Dict[str, Any]]) -> "History":
        """Build a history from parsed JSONL records (``op``/``edge``;
        anything else, e.g. the live recorder's ``meta`` header, is skipped)."""
        history = cls()
        edges: List[Tuple[int, int]] = []
        for record in records:
            kind = record.get("type")
            if kind == "op":
                history.add(Operation.from_dict(record))
            elif kind == "edge":
                edges.append((record["src_op"], record["dst_op"]))
        for src_id, dst_id in edges:
            history.add_message_edge(history.get(src_id), history.get(dst_id))
        return history

    @classmethod
    def from_jsonl(cls, source: Union[str, IO[str]]) -> "History":
        """Rebuild a history from :meth:`to_jsonl` output (or a live trace).

        Records whose ``type`` is neither ``"op"`` nor ``"edge"`` and blank
        lines are skipped, and a crash-truncated final line is tolerated
        (see :func:`iter_jsonl_records`), so any trace file in the repo's
        JSONL format loads directly.
        """
        if isinstance(source, str):
            with open(source, "r", encoding="utf-8") as handle:
                return cls.from_jsonl(handle)
        return cls.from_records(iter_jsonl_records(source))

    # ------------------------------------------------------------------ #
    # Convenience for tests and examples
    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """Multi-line rendering grouped by process (like the paper figures)."""
        lines = []
        for process in self.processes():
            ops = self.by_process(process)
            rendered = "  ".join(
                f"[{op.invoked_at:g},{op.responded_at if op.responded_at is None else format(op.responded_at, 'g')}] {op.describe()}"
                for op in ops
            )
            lines.append(f"{process}: {rendered}")
        return "\n".join(lines)

    def restricted_to_service(self, service: str) -> "History":
        """A new history containing only operations at ``service``."""
        sub = History()
        keep = set()
        for op in self._ops:
            if op.service == service:
                sub.add(op)
                keep.add(op.op_id)
        sub.message_edges = [
            edge for edge in self.message_edges
            if edge.src_op in keep and edge.dst_op in keep
        ]
        return sub
