"""Histories of operations issued by application processes.

A :class:`History` is the checker-facing record of an execution: the
operations each process invoked (with invocation/response times) plus any
out-of-band message-passing edges between processes (e.g. "Alice calls Bob"),
which contribute to the potential-causality order even though they are not
service operations.

Histories are **append-mode** structures: the per-process and writer indexes
are maintained incrementally on :meth:`History.add`, so a live capture that
streams millions of operations in never pays a full index rebuild.  Observers
(:meth:`History.attach_observer`) see every invocation, completion, and
message edge as it happens — the trace recorder and the streaming checkers
both hang off this hook.

:class:`SegmentStream` cuts such a stream into **epochs** at quiescent
real-time frontiers (moments where every pending invocation has responded),
which is the unit of incremental checking — see
:mod:`repro.core.checkers.streaming` and ``docs/streaming_check.md``.
"""

from __future__ import annotations

import bisect
import glob as _glob
import json
import os
import re as _re
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterable, List, Optional, Tuple, Union

from repro.core.events import Operation, OpType

__all__ = [
    "MessageEdge",
    "History",
    "Segment",
    "SegmentStream",
    "iter_jsonl_records",
    "resolve_jsonl_paths",
]


def iter_jsonl_records(source: Iterable[str]) -> Iterable[Dict[str, Any]]:
    """Yield parsed JSON objects from JSONL lines, skipping blanks.

    An undecodable *final* line is tolerated with a warning: a crash can
    truncate the last record of a live trace mid-write, and losing only the
    in-flight record is exactly the recorder's durability contract.  An
    undecodable line *followed by further records* is real corruption and
    raises.
    """
    decode_error: Optional[json.JSONDecodeError] = None
    for line in source:
        line = line.strip()
        if not line:
            continue
        if decode_error is not None:
            raise decode_error
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            decode_error = exc
            continue
        yield record
    if decode_error is not None:
        warnings.warn(
            f"trace ends with a torn record (discarded): {decode_error}",
            RuntimeWarning, stacklevel=2)


@dataclass(frozen=True)
class MessageEdge:
    """An out-of-band causal edge: ``src_op``'s process later communicated
    with ``dst_op``'s process, after ``src_op`` responded and before
    ``dst_op`` was invoked."""

    src_op: int
    dst_op: int


_INV_SORT_KEY = lambda op: (op.invoked_at, op.op_id)  # noqa: E731 - sort key


class History:
    """An ordered record of operations plus message-passing edges."""

    def __init__(self, operations: Optional[Iterable[Operation]] = None):
        self._ops: List[Operation] = []
        self._by_id: Dict[int, Operation] = {}
        self.message_edges: List[MessageEdge] = []
        #: Lazily built caches; once built they are maintained *incrementally*
        #: by :meth:`add`, so appends stay O(log n) even on huge streams.
        self._process_cache: Optional[Dict[str, List[Operation]]] = None
        self._writer_index: Optional[Dict[Tuple[str, Any, Any], List[Operation]]] = None
        self._writer_index_exact = True
        self._observers: List[Any] = []
        if operations:
            for op in operations:
                self.add(op)

    # ------------------------------------------------------------------ #
    # Observers (live capture / inline checking)
    # ------------------------------------------------------------------ #
    def attach_observer(self, observer: Any) -> None:
        """Register an observer notified of every event appended here.

        Observers may implement any subset of ``on_invocation(process,
        invoked_at)``, ``on_op(op)``, ``on_edge(src_op, dst_op)``, and
        ``on_abandoned(process, at_time)``.  The trace recorder and the
        streaming checkers are both plugged in through this hook.
        """
        self._observers.append(observer)

    def _notify(self, method: str, *args: Any) -> None:
        for observer in self._observers:
            callback = getattr(observer, method, None)
            if callback is not None:
                callback(*args)

    def note_invocation(self, process: str, invoked_at: float) -> None:
        """Announce that ``process`` invoked an operation at ``invoked_at``.

        The operation itself is appended (with :meth:`add`) once its response
        is observed; announcing invocations lets streaming consumers detect
        *quiescent frontiers* — instants where every pending invocation has
        responded — which are the only sound epoch cut points.  On a plain
        history with no observers this is a no-op.
        """
        if self._observers:
            self._notify("on_invocation", process, invoked_at)

    def note_abandoned(self, process: str, at_time: float) -> None:
        """Announce that ``process``'s outstanding invocation was abandoned
        (e.g. a transaction that aborted out of its retry budget) and will
        never produce a completion record."""
        if self._observers:
            self._notify("on_abandoned", process, at_time)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add(self, op: Operation) -> Operation:
        """Append an operation to the history (incremental index upkeep)."""
        if op.op_id in self._by_id:
            raise ValueError(f"duplicate operation id {op.op_id}")
        self._ops.append(op)
        self._by_id[op.op_id] = op
        if self._process_cache is not None:
            group = self._process_cache.get(op.process)
            if group is None:
                self._process_cache[op.process] = [op]
            elif _INV_SORT_KEY(op) >= _INV_SORT_KEY(group[-1]):
                group.append(op)
            else:
                bisect.insort(group, op, key=_INV_SORT_KEY)
        if self._writer_index is not None and self._writer_index_exact:
            for key, value in op.values_written().items():
                try:
                    self._writer_index.setdefault(
                        (op.service, key, value), []).append(op)
                except TypeError:
                    self._writer_index = {}
                    self._writer_index_exact = False
                    break
        if self._observers:
            self._notify("on_op", op)
        return op

    def add_message_edge(self, src_op: Operation, dst_op: Operation) -> None:
        """Record that ``src_op``'s process sent a message (after ``src_op``
        completed) that was received by ``dst_op``'s process before
        ``dst_op`` was invoked."""
        if src_op.op_id not in self._by_id or dst_op.op_id not in self._by_id:
            raise ValueError("both operations must belong to this history")
        self.message_edges.append(MessageEdge(src_op.op_id, dst_op.op_id))
        if self._observers:
            self._notify("on_edge", src_op, dst_op)

    def extend(self, other: "History") -> None:
        """Append all operations and edges of another history."""
        for op in other.operations():
            self.add(op)
        self.message_edges.extend(other.message_edges)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self):
        return iter(self._ops)

    def operations(self) -> List[Operation]:
        return list(self._ops)

    def get(self, op_id: int) -> Operation:
        return self._by_id[op_id]

    def complete(self) -> List[Operation]:
        """The complete(α) subsequence: operations with responses."""
        return [op for op in self._ops if op.is_complete]

    def pending(self) -> List[Operation]:
        return [op for op in self._ops if not op.is_complete]

    def processes(self) -> List[str]:
        return sorted(self._process_groups())

    def services(self) -> List[str]:
        return sorted({op.service for op in self._ops})

    def _process_groups(self) -> Dict[str, List[Operation]]:
        """Memoized process → sub-history (invocation order) mapping."""
        if self._process_cache is None:
            groups: Dict[str, List[Operation]] = {}
            for op in self._ops:
                groups.setdefault(op.process, []).append(op)
            for ops in groups.values():
                ops.sort(key=lambda o: (o.invoked_at, o.op_id))
            self._process_cache = groups
        return self._process_cache

    def by_process(self, process: str) -> List[Operation]:
        """A process's sub-history in invocation order (its process order)."""
        return list(self._process_groups().get(process, []))

    def transactions(self) -> List[Operation]:
        return [op for op in self._ops if op.is_transaction]

    def mutations(self) -> List[Operation]:
        """The set W of mutating operations."""
        return [op for op in self._ops if op.is_mutation]

    def _build_writer_index(self) -> None:
        """Index (service, key, value) → writers, for O(1) reads-from lookup.

        Falls back to exact linear scans if any written value is unhashable
        (``_writer_index_exact`` is then False and the index is unused).
        """
        index: Dict[Tuple[str, Any, Any], List[Operation]] = {}
        exact = True
        for op in self._ops:
            written = op.values_written()
            if not written:
                continue
            for key, value in written.items():
                try:
                    index.setdefault((op.service, key, value), []).append(op)
                except TypeError:
                    exact = False
                    break
            if not exact:
                break
        self._writer_index = index if exact else {}
        self._writer_index_exact = exact

    def writers_of(self, key: Any, value: Any, service: str = "kv") -> List[Operation]:
        """Operations that wrote ``value`` to ``key`` (for reads-from)."""
        if self._writer_index is None:
            self._build_writer_index()
        if self._writer_index_exact:
            try:
                return list(self._writer_index.get((service, key, value), ()))
            except TypeError:
                pass  # unhashable query value: fall through to the scan
        found = []
        for op in self._ops:
            if op.service != service:
                continue
            written = op.values_written()
            if key in written and written[key] == value:
                found.append(op)
        return found

    # ------------------------------------------------------------------ #
    # Well-formedness (§3.1)
    # ------------------------------------------------------------------ #
    def check_well_formed(self) -> None:
        """Raise ``ValueError`` if any process has overlapping operations."""
        for process in self.processes():
            ops = self.by_process(process)
            previous: Optional[Operation] = None
            for op in ops:
                if op.is_complete and op.responded_at < op.invoked_at:
                    raise ValueError(f"operation {op.op_id} responds before invocation")
                if previous is not None:
                    if not previous.is_complete:
                        raise ValueError(
                            f"process {process} invoked {op.op_id} while "
                            f"{previous.op_id} was still outstanding"
                        )
                    if op.invoked_at < previous.responded_at:
                        raise ValueError(
                            f"process {process} operations {previous.op_id} and "
                            f"{op.op_id} overlap"
                        )
                previous = op

    def is_well_formed(self) -> bool:
        try:
            self.check_well_formed()
        except ValueError:
            return False
        return True

    # ------------------------------------------------------------------ #
    # JSONL serialization (live traces / offline re-checking)
    # ------------------------------------------------------------------ #
    def to_jsonl(self, destination: Union[str, IO[str]]) -> None:
        """Write the history as JSON Lines: one ``{"type": "op", ...}`` record
        per operation (in recording order) followed by one
        ``{"type": "edge", ...}`` record per message edge.

        ``destination`` is a path or an open text file.  The format is shared
        with the live-cluster trace recorder, so :meth:`from_jsonl` reads both
        offline dumps and live captures.
        """
        if isinstance(destination, str):
            with open(destination, "w", encoding="utf-8") as handle:
                self.to_jsonl(handle)
            return
        for op in self._ops:
            record = {"type": "op"}
            record.update(op.to_dict())
            destination.write(json.dumps(record, separators=(",", ":"),
                                         default=str))
            destination.write("\n")
        for edge in self.message_edges:
            destination.write(json.dumps(
                {"type": "edge", "src_op": edge.src_op, "dst_op": edge.dst_op},
                separators=(",", ":")))
            destination.write("\n")

    @classmethod
    def from_records(cls, records: Iterable[Dict[str, Any]]) -> "History":
        """Build a history from parsed JSONL records (``op``/``edge``;
        anything else, e.g. the live recorder's ``meta`` header, is skipped)."""
        history = cls()
        edges: List[Tuple[int, int]] = []
        for record in records:
            kind = record.get("type")
            if kind == "op":
                history.add(Operation.from_dict(record))
            elif kind == "edge":
                edges.append((record["src_op"], record["dst_op"]))
        for src_id, dst_id in edges:
            history.add_message_edge(history.get(src_id), history.get(dst_id))
        return history

    @classmethod
    def from_jsonl(cls, source: Union[str, IO[str]]) -> "History":
        """Rebuild a history from :meth:`to_jsonl` output (or a live trace).

        Records whose ``type`` is neither ``"op"`` nor ``"edge"`` and blank
        lines are skipped, and a crash-truncated final line is tolerated
        (see :func:`iter_jsonl_records`), so any trace file in the repo's
        JSONL format loads directly.  A path naming a size-rotated trace set
        (``trace.jsonl`` standing for ``trace-0001.jsonl``, ...) loads the
        whole set in order (see :func:`resolve_jsonl_paths`).
        """
        if isinstance(source, str):
            return cls.from_records(
                iter_jsonl_records(_iter_lines(resolve_jsonl_paths(source))))
        return cls.from_records(iter_jsonl_records(source))

    # ------------------------------------------------------------------ #
    # Convenience for tests and examples
    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """Multi-line rendering grouped by process (like the paper figures)."""
        lines = []
        for process in self.processes():
            ops = self.by_process(process)
            rendered = "  ".join(
                f"[{op.invoked_at:g},{op.responded_at if op.responded_at is None else format(op.responded_at, 'g')}] {op.describe()}"
                for op in ops
            )
            lines.append(f"{process}: {rendered}")
        return "\n".join(lines)

    def restricted_to_service(self, service: str) -> "History":
        """A new history containing only operations at ``service``."""
        sub = History()
        keep = set()
        for op in self._ops:
            if op.service == service:
                sub.add(op)
                keep.add(op.op_id)
        sub.message_edges = [
            edge for edge in self.message_edges
            if edge.src_op in keep and edge.dst_op in keep
        ]
        return sub


# --------------------------------------------------------------------------- #
# Rotated JSONL trace sets
# --------------------------------------------------------------------------- #
def resolve_jsonl_paths(path: str) -> List[str]:
    """Resolve a trace path to the ordered list of files holding it.

    A plain existing file resolves to itself.  A missing ``trace.jsonl``
    standing for a size-rotated set resolves to the sorted
    ``trace-0001.jsonl``, ``trace-0002.jsonl``, ... siblings the rotating
    :class:`~repro.net.recorder.TraceWriter` produced.
    """
    if os.path.exists(path):
        return [path]
    stem, suffix = os.path.splitext(path)
    rotated = []
    for name in _glob.glob(f"{_glob.escape(stem)}-[0-9]*{suffix}"):
        # Only the writer's exact `-NNNN` rotation names belong to the set;
        # digit-leading siblings like `trace-2024-backup.jsonl` do not.
        middle = name[len(stem):len(name) - len(suffix)] if suffix else \
            name[len(stem):]
        match = _re.fullmatch(r"-(\d{4,})", middle)
        if match:
            rotated.append((int(match.group(1)), name))
    if rotated:
        # Numeric sort on the rotation index (lexicographic order breaks
        # once the zero padding overflows).
        return [name for _, name in sorted(rotated)]
    raise FileNotFoundError(f"no trace file or rotated set at {path!r}")


def _iter_lines(paths: Iterable[str]) -> Iterable[str]:
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            yield from handle


# --------------------------------------------------------------------------- #
# Epoch segmentation of a live stream (the streaming checkers' front end)
# --------------------------------------------------------------------------- #
@dataclass
class Segment:
    """One epoch of a streamed history.

    ``history`` holds exactly the operations that were invoked *and*
    responded between the previous cut and ``end_time`` (plus, in the final
    segment, any operations still pending at stream close).  Because cuts
    happen only at quiescent frontiers, no operation ever spans two
    segments.
    """

    index: int
    history: History
    start_time: Optional[float]
    end_time: Optional[float]
    final: bool = False

    def __len__(self) -> int:
        return len(self.history)


class SegmentStream:
    """Cut a time-ordered event stream into epochs at quiescent frontiers.

    Feed ``begin(process, invoked_at[, op])`` when an operation is invoked
    and ``complete(op)`` when it responds (events must arrive in
    nondecreasing event-time order, which a live capture satisfies by
    construction).  A *quiescent frontier* is an instant with no invocation
    outstanding; the stream finalizes the current segment at the first
    frontier with at least ``min_epoch_ops`` operations, as soon as a
    strictly later invocation proves that no operation spans it.  Ties
    (an invocation at exactly the candidate cut time) conservatively merge
    into the current epoch — the cross-process real-time order ``a → b``
    requires ``resp(a) < inv(b)`` strictly, so a cut between equal
    timestamps could manufacture precedence that does not exist.

    Completions that were never announced with ``begin`` (e.g. replaying a
    trace recorded without invocation records) permanently disable mid-stream
    cutting: quiescence is unknowable without seeing invocations, so the
    stream degrades to one whole-history segment — exactly batch checking.
    """

    def __init__(self, min_epoch_ops: int = 1):
        self.min_epoch_ops = max(1, int(min_epoch_ops))
        self._history = History()
        self._segment_index = 0
        self._segment_start: Optional[float] = None
        self._outstanding: Dict[str, int] = {}
        self._outstanding_total = 0
        self._pending_ops: Dict[str, List[Operation]] = {}
        self._pending_cut: Optional[float] = None
        self._last_cut: Optional[float] = None
        self._max_responded: Optional[float] = None
        self._matched = True
        self.closed = False
        self.segments_emitted = 0
        self.ops_seen = 0
        self.max_segment_ops = 0

    # ------------------------------------------------------------------ #
    @property
    def current_history(self) -> History:
        """The (mutable) history of the in-progress segment."""
        return self._history

    @property
    def outstanding(self) -> int:
        """Number of announced invocations without a completion."""
        return self._outstanding_total

    def _finalize(self, cut_time: Optional[float], final: bool) -> Segment:
        segment = Segment(
            index=self._segment_index,
            history=self._history,
            start_time=self._segment_start,
            end_time=cut_time,
            final=final,
        )
        self.max_segment_ops = max(self.max_segment_ops, len(segment.history))
        self.segments_emitted += 1
        self._segment_index += 1
        self._history = History()
        self._segment_start = None
        self._max_responded = None
        self._last_cut = cut_time
        self._pending_cut = None
        return segment

    # ------------------------------------------------------------------ #
    def begin(self, process: str, invoked_at: float,
              op: Optional[Operation] = None) -> List[Segment]:
        """Announce an invocation; returns any segment finalized by it.

        ``op`` may carry the (possibly still pending) operation object when
        the caller has it — operations begun but never completed are then
        included in the final segment as pending operations.
        """
        if self.closed:
            raise ValueError("segment stream is closed")
        finalized: List[Segment] = []
        if (self._pending_cut is not None
                and invoked_at > self._pending_cut
                and len(self._history) >= self.min_epoch_ops):
            finalized.append(self._finalize(self._pending_cut, final=False))
        self._pending_cut = None
        if self._last_cut is not None and invoked_at < self._last_cut:
            raise ValueError(
                f"event stream out of order: invocation at t={invoked_at:g} "
                f"arrived after the epoch cut at t={self._last_cut:g}")
        self._outstanding[process] = self._outstanding.get(process, 0) + 1
        self._outstanding_total += 1
        if op is not None:
            self._pending_ops.setdefault(process, []).append(op)
        if self._segment_start is None:
            self._segment_start = invoked_at
        return finalized

    def complete(self, op: Operation) -> List[Segment]:
        """Record a completed operation; never finalizes a segment itself
        (finalization waits for the next strictly-later invocation, or
        :meth:`close`)."""
        if self.closed:
            raise ValueError("segment stream is closed")
        if op.responded_at is None:
            raise ValueError(f"operation {op.op_id} has no response")
        process = op.process
        if self._outstanding.get(process, 0) > 0:
            self._outstanding[process] -= 1
            self._outstanding_total -= 1
            pending = self._pending_ops.get(process)
            if pending:
                # Pair the completion with its own invocation.  A process's
                # in-flight list may hold an op that never completes (e.g. a
                # reconstructed server-side commit added as pending); FIFO
                # pairing would pop that one here and silently drop it from
                # the final segment.
                for index, candidate in enumerate(pending):
                    if candidate.op_id == op.op_id:
                        del pending[index]
                        break
                else:
                    pending.pop(0)
        else:
            # A completion we never saw invoked: quiescence is unknowable
            # from here on, so disable cutting (single-segment fallback).
            # If the invocation predates a cut that was already emitted,
            # the no-op-spans-a-cut invariant is broken retroactively —
            # refuse, like begin() does for out-of-order invocations.
            if (self._last_cut is not None
                    and op.invoked_at < self._last_cut):
                raise ValueError(
                    f"event stream out of order: operation {op.op_id} "
                    f"completed without an announced invocation and was "
                    f"invoked at t={op.invoked_at:g}, before the epoch cut "
                    f"at t={self._last_cut:g}")
            self._matched = False
        self._history.add(op)
        self.ops_seen += 1
        if self._segment_start is None or op.invoked_at < self._segment_start:
            self._segment_start = op.invoked_at
        if self._max_responded is None or op.responded_at > self._max_responded:
            self._max_responded = op.responded_at
        if self._matched and self._outstanding_total == 0:
            self._pending_cut = self._max_responded
        else:
            self._pending_cut = None
        return []

    def abandon(self, process: str, at_time: float) -> List[Segment]:
        """An announced invocation will never complete (aborted out)."""
        if self._outstanding.get(process, 0) > 0:
            self._outstanding[process] -= 1
            self._outstanding_total -= 1
            pending = self._pending_ops.get(process)
            if pending:
                pending.pop(0)
        if (self._matched and self._outstanding_total == 0
                and len(self._history) > 0):
            self._pending_cut = self._max_responded
        return []

    def close(self) -> Optional[Segment]:
        """Finalize the stream; returns the final segment (or ``None`` if
        empty).  Operations begun with an ``op`` payload but never completed
        are appended as pending operations of the final segment."""
        if self.closed:
            return None
        self.closed = True
        for pending in self._pending_ops.values():
            for op in pending:
                if op.op_id not in self._history._by_id:
                    self._history.add(op)
                    self.ops_seen += 1
        self._pending_ops.clear()
        if len(self._history) == 0:
            return None
        return self._finalize(cut_time=None, final=True)
