"""The Lemma 1 / Lemma C.5 transformation.

Given an execution (history) that satisfies RSS (RSC) together with a
serialization ``S`` witnessing it, the lemma constructs an *equivalent*
execution that satisfies strict serializability (linearizability): each
process performs exactly the same operations in the same order with the same
return values, but the operations' real-time intervals are rearranged so that
they occur sequentially in the order given by ``S``.  Figure 2 of the paper
illustrates the construction.

Because the final state of each process depends only on its own sequence of
actions, any invariant that holds under strict serializability therefore also
holds under RSS (Theorem 2) — the transformation is the constructive heart of
the paper's invariant-equivalence result.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

from repro.core.events import Operation
from repro.core.history import History
from repro.core.specification import SequentialSpec
from repro.core.checkers.base import CheckResult, default_spec_for
from repro.core.checkers.regular import check_rsc, check_rss
from repro.core.checkers.realtime import (
    check_linearizability,
    check_strict_serializability,
)

__all__ = ["transform_to_strict", "TransformationError", "equivalent_per_process"]


class TransformationError(Exception):
    """Raised when the input execution does not satisfy RSS/RSC."""


def _find_witness(history: History, spec: Optional[SequentialSpec]) -> List[Operation]:
    transactional = any(op.is_transaction for op in history)
    result = (check_rss if transactional else check_rsc)(history, spec)
    if not result.satisfied:
        raise TransformationError(
            "execution does not satisfy RSS/RSC; cannot transform: " + result.reason
        )
    assert result.witness is not None
    return result.witness


def transform_to_strict(
    history: History,
    serialization: Optional[Sequence[Operation]] = None,
    spec: Optional[SequentialSpec] = None,
    slot_width: float = 1.0,
) -> History:
    """Transform an RSS (RSC) execution into an equivalent strictly
    serializable (linearizable) one.

    Parameters
    ----------
    history:
        The original execution.
    serialization:
        A witness order ``S``.  If omitted, one is found with the exhaustive
        RSS/RSC checker (small histories only).
    slot_width:
        Width of the real-time slot assigned to each operation in the
        transformed execution.

    Returns
    -------
    History
        A new history with the same operations per process, in the same
        per-process order, with the same return values, whose operations
        execute back-to-back in the order of ``S``.
    """
    witness = list(serialization) if serialization is not None else _find_witness(history, spec)
    witness_ids = {op.op_id for op in witness}
    complete_ids = {op.op_id for op in history.complete()}
    if not complete_ids <= witness_ids:
        raise TransformationError("serialization is missing complete operations")

    transformed = History()
    id_map = {}
    for index, op in enumerate(witness):
        start = index * slot_width
        end = start + slot_width / 2.0
        new_op = replace(op, invoked_at=start, responded_at=end,
                         read_set=dict(op.read_set), write_set=dict(op.write_set),
                         meta=dict(op.meta))
        transformed.add(new_op)
        id_map[op.op_id] = new_op
    # Preserve message edges between operations that survived the transform.
    for edge in history.message_edges:
        if edge.src_op in id_map and edge.dst_op in id_map:
            transformed.add_message_edge(id_map[edge.src_op], id_map[edge.dst_op])
    return transformed


def equivalent_per_process(original: History, transformed: History) -> bool:
    """Check the equivalence condition of Lemma 1: every process performs the
    same operations, in the same order, with the same arguments and results.

    Only complete operations of the original are compared (pending ones may
    legitimately be dropped or completed by the transformation).
    """
    for process in original.processes():
        original_ops = [op for op in original.by_process(process) if op.is_complete]
        transformed_ops = [
            op for op in transformed.by_process(process)
            if op.op_id in {o.op_id for o in original_ops}
        ]
        if len(original_ops) != len(transformed_ops):
            return False
        for a, b in zip(original_ops, transformed_ops):
            same = (
                a.op_id == b.op_id
                and a.op_type == b.op_type
                and a.key == b.key
                and a.value == b.value
                and a.result == b.result
                and a.read_set == b.read_set
                and a.write_set == b.write_set
            )
            if not same:
                return False
    return True


def verify_transformation(history: History, transformed: History,
                          spec: Optional[SequentialSpec] = None) -> CheckResult:
    """Convenience: assert the transformed execution is strictly serializable
    (linearizable) and per-process equivalent to the original."""
    spec = spec or default_spec_for(history)
    if not equivalent_per_process(history, transformed):
        return CheckResult(False, "transformation",
                           reason="transformed execution is not per-process equivalent")
    transactional = any(op.is_transaction for op in history)
    checker = check_strict_serializability if transactional else check_linearizability
    return checker(transformed, spec)
