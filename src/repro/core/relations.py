"""Real-time and potential-causality orders over a history (§3.3, App. C.1.7/8).

Both orders are exposed as *direct* edge sets plus reachability queries.  A
total order that respects every direct edge automatically respects the
transitive closure, so checkers only need the direct edges; the reachability
query (`precedes`) is provided for anomaly detection and tests.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.core.events import INITIAL_VALUE, Operation, OpType
from repro.core.history import History

__all__ = [
    "RealTimeOrder",
    "CausalOrder",
    "AmbiguousReadsFrom",
    "conflicting_read_onlys",
    "regular_constraint_edges",
]


class AmbiguousReadsFrom(Exception):
    """Raised when a read's value was written by more than one operation."""


class RealTimeOrder:
    """The real-time precedence relation → over a history's operations."""

    def __init__(self, history: History):
        self.history = history

    def precedes(self, a: Operation, b: Operation) -> bool:
        """True iff ``a``'s response precedes ``b``'s invocation."""
        if a.op_id == b.op_id or not a.is_complete:
            return False
        if a.process == b.process:
            # Within a process, operations are sequential; equal timestamps
            # are still ordered by the process's program order.
            if a.responded_at <= b.invoked_at:
                return (a.invoked_at, a.op_id) < (b.invoked_at, b.op_id)
            return False
        return a.responded_at < b.invoked_at

    def concurrent(self, a: Operation, b: Operation) -> bool:
        return not self.precedes(a, b) and not self.precedes(b, a)

    def edges(self) -> List[Tuple[int, int]]:
        """All direct real-time edges (quadratic; intended for small histories)."""
        ops = self.history.operations()
        result = []
        for a in ops:
            for b in ops:
                if self.precedes(a, b):
                    result.append((a.op_id, b.op_id))
        return result


class CausalOrder:
    """The potential-causality relation ⇝ over a history's operations.

    Direct edges come from (1) process order, (2) the reads-from relation,
    and (3) out-of-band message-passing edges recorded in the history.  The
    relation itself is the transitive closure of those edges.
    """

    def __init__(self, history: History, strict_reads_from: bool = True):
        self.history = history
        self.strict_reads_from = strict_reads_from
        self._adjacency: Dict[int, Set[int]] = {op.op_id: set() for op in history}
        self._reach_cache: Dict[int, FrozenSet[int]] = {}
        self._build()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _add_edge(self, src: int, dst: int) -> None:
        if src != dst:
            self._adjacency[src].add(dst)

    def _build(self) -> None:
        # (1) Process order.
        for process in self.history.processes():
            ops = self.history.by_process(process)
            for earlier, later in zip(ops, ops[1:]):
                self._add_edge(earlier.op_id, later.op_id)
        # (2) Reads-from (History.writers_of is index-backed, so this pass is
        # linear in the number of observed values).
        for op in self.history:
            for key, value in op.values_observed().items():
                if value == INITIAL_VALUE:
                    continue
                writers = [
                    w for w in self.history.writers_of(key, value, service=op.service)
                    if w.op_id != op.op_id
                ]
                if not writers:
                    continue
                if len(writers) > 1 and self.strict_reads_from:
                    raise AmbiguousReadsFrom(
                        f"value {value!r} for key {key!r} written by "
                        f"{len(writers)} operations; use unique values"
                    )
                self._add_edge(writers[0].op_id, op.op_id)
        # (3) Message passing.
        for edge in self.history.message_edges:
            self._add_edge(edge.src_op, edge.dst_op)
        # Reachability memos are only valid for the final edge set; reset
        # once here instead of on every single edge insertion.
        self._reach_cache.clear()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def edges(self) -> List[Tuple[int, int]]:
        """Direct causal edges (process order ∪ reads-from ∪ messages)."""
        return [(src, dst) for src, dsts in self._adjacency.items() for dst in sorted(dsts)]

    def _reachable_from(self, src: int) -> FrozenSet[int]:
        cached = self._reach_cache.get(src)
        if cached is not None:
            return cached
        seen: Set[int] = set()
        stack = [src]
        while stack:
            node = stack.pop()
            for nxt in self._adjacency.get(node, ()):  # pragma: no branch
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        result = frozenset(seen)
        self._reach_cache[src] = result
        return result

    def precedes(self, a: Operation, b: Operation) -> bool:
        """True iff ``a`` ⇝ ``b`` (transitively)."""
        if a.op_id == b.op_id:
            return False
        return b.op_id in self._reachable_from(a.op_id)

    def concurrent(self, a: Operation, b: Operation) -> bool:
        return not self.precedes(a, b) and not self.precedes(b, a)

    def has_cycle(self) -> bool:
        """True if the direct edges contain a cycle (should never happen for
        histories produced by real executions)."""
        for op in self.history:
            if op.op_id in self._reachable_from(op.op_id):
                return True
        return False

    def respects(self, ordered_ops: Iterable[Operation]) -> bool:
        """True if the given total order respects every direct causal edge."""
        position = {op.op_id: i for i, op in enumerate(ordered_ops)}
        for src, dst in self.edges():
            if src in position and dst in position and position[src] > position[dst]:
                return False
        return True


def conflicting_read_onlys(history: History, write_op: Operation) -> List[Operation]:
    """C_α(W): read-only operations that conflict with mutation ``write_op``."""
    return [
        op for op in history
        if op.is_read_only and op.conflicts_with(write_op)
    ]


def regular_constraint_edges(history: History) -> List[Tuple[int, int]]:
    """The "regular" real-time constraint of RSS/RSC (condition 3 in §3.4).

    For every mutation ``w`` and every operation ``o`` that is either another
    mutation or a read-only operation conflicting with ``w``: if ``w``
    finishes before ``o`` starts, then ``w`` must precede ``o`` in the
    serialization.

    Derived by the sweep-line engine in :mod:`repro.core.orders`: the
    returned edges are a transitive reduction of the naive pair set (same
    closure, O(n log n + output) instead of quadratic).
    """
    from repro.core.orders import regular_constraint_edges as _sweep_regular

    return _sweep_regular(history)
