"""Real-time and potential-causality orders over a history (§3.3, App. C.1.7/8).

Both orders are exposed as *direct* edge sets plus reachability queries.  A
total order that respects every direct edge automatically respects the
transitive closure, so checkers only need the direct edges; the reachability
query (`precedes`) is provided for anomaly detection and tests.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.core.events import INITIAL_VALUE, Operation, OpType
from repro.core.history import History

__all__ = [
    "RealTimeOrder",
    "CausalOrder",
    "AmbiguousReadsFrom",
    "conflicting_read_onlys",
    "regular_constraint_edges",
]


class AmbiguousReadsFrom(Exception):
    """Raised when a read's value was written by more than one operation."""


class RealTimeOrder:
    """The real-time precedence relation → over a history's operations."""

    def __init__(self, history: History):
        self.history = history

    def precedes(self, a: Operation, b: Operation) -> bool:
        """True iff ``a``'s response precedes ``b``'s invocation."""
        if a.op_id == b.op_id or not a.is_complete:
            return False
        if a.process == b.process:
            # Within a process, operations are sequential; equal timestamps
            # are still ordered by the process's program order.
            if a.responded_at <= b.invoked_at:
                return (a.invoked_at, a.op_id) < (b.invoked_at, b.op_id)
            return False
        return a.responded_at < b.invoked_at

    def concurrent(self, a: Operation, b: Operation) -> bool:
        return not self.precedes(a, b) and not self.precedes(b, a)

    def edges(self) -> List[Tuple[int, int]]:
        """All direct real-time edges (quadratic; intended for small histories)."""
        ops = self.history.operations()
        result = []
        for a in ops:
            for b in ops:
                if self.precedes(a, b):
                    result.append((a.op_id, b.op_id))
        return result


class CausalOrder:
    """The potential-causality relation ⇝ over a history's operations.

    Direct edges come from (1) process order, (2) the reads-from relation,
    and (3) out-of-band message-passing edges recorded in the history.  The
    relation itself is the transitive closure of those edges.

    The order supports **monotone appends**: :meth:`append` extends the edge
    set for one newly added operation in O(its footprint) without rebuilding,
    so a streaming checker can keep an epoch's causal order current as
    operations arrive.  Reads whose writer has not appeared yet are parked
    and resolved when the writer is appended.
    """

    def __init__(self, history: History, strict_reads_from: bool = True):
        self.history = history
        self.strict_reads_from = strict_reads_from
        self._adjacency: Dict[int, Set[int]] = {op.op_id: set() for op in history}
        self._reach_cache: Dict[int, FrozenSet[int]] = {}
        #: Incremental-append state: last op per process, the chosen writer
        #: per observed (service, key, value), reads still waiting for their
        #: writer to appear, and how often each value was observed (for the
        #: strict ambiguity check on late duplicate writers).
        self._last_of_process: Dict[str, int] = {}
        self._writer_of_value: Dict[Tuple[str, object, object], int] = {}
        self._unresolved_reads: Dict[Tuple[str, object, object], List[int]] = {}
        #: Parked reads of *unhashable* values (rare; matched by equality).
        self._unresolved_any: List[Tuple[int, str, object, object]] = []
        self._observed_values: Dict[Tuple[str, object, object], int] = {}
        self._build()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _add_edge(self, src: int, dst: int) -> None:
        if src != dst:
            self._adjacency[src].add(dst)

    def _build(self) -> None:
        # (1) Process order.
        for process in self.history.processes():
            ops = self.history.by_process(process)
            if ops:
                self._last_of_process[process] = ops[-1].op_id
            for earlier, later in zip(ops, ops[1:]):
                self._add_edge(earlier.op_id, later.op_id)
        # (2) Reads-from (History.writers_of is index-backed, so this pass is
        # linear in the number of observed values).
        for op in self.history:
            for key, value in op.values_observed().items():
                self._resolve_observed(op, key, value)
        for op in self.history:
            for key, value in op.values_written().items():
                self._note_writer(op, key, value)
        # (3) Message passing.
        for edge in self.history.message_edges:
            self._add_edge(edge.src_op, edge.dst_op)
        # Reachability memos are only valid for the final edge set; reset
        # once here instead of on every single edge insertion.
        self._reach_cache.clear()

    def _value_key(self, op: Operation, key: object, value: object
                   ) -> Optional[Tuple[str, object, object]]:
        try:
            hash(value)
        except TypeError:
            return None
        return (op.service, key, value)

    def _note_writer(self, writer: Operation, key: object, value: object) -> None:
        vk = self._value_key(writer, key, value)
        if vk is not None:
            self._writer_of_value.setdefault(vk, writer.op_id)

    def _resolve_observed(self, op: Operation, key: object, value: object) -> None:
        """Add the reads-from edge for one observed (key, value) of ``op``,
        or park the read until its writer appears.

        Shared by the batch build and :meth:`append`: ``History.writers_of``
        covers every writer added so far (falling back to a linear scan for
        unhashable values), so the ambiguity semantics are identical in both
        modes.
        """
        if value == INITIAL_VALUE:
            return
        vk = self._value_key(op, key, value)
        if vk is not None:
            self._observed_values[vk] = self._observed_values.get(vk, 0) + 1
        writers = [
            w for w in self.history.writers_of(key, value, service=op.service)
            if w.op_id != op.op_id
        ]
        if not writers:
            if vk is not None:
                self._unresolved_reads.setdefault(vk, []).append(op.op_id)
            else:
                self._unresolved_any.append((op.op_id, op.service, key, value))
            return
        if len(writers) > 1 and self.strict_reads_from:
            raise AmbiguousReadsFrom(
                f"value {value!r} for key {key!r} written by "
                f"{len(writers)} operations; use unique values"
            )
        self._note_writer(writers[0], key, value)
        self._add_edge(writers[0].op_id, op.op_id)

    # ------------------------------------------------------------------ #
    # Monotone appends
    # ------------------------------------------------------------------ #
    def append(self, op: Operation) -> None:
        """Extend the order for ``op``, already added to the history.

        Equivalent to rebuilding from scratch on the grown history (the
        property tests pin this), except that appends only *add* edges, so
        the reachability memo is cleared rather than recomputed.
        """
        self._adjacency.setdefault(op.op_id, set())
        # (1) Process order.
        prev = self._last_of_process.get(op.process)
        if prev is not None:
            self._add_edge(prev, op.op_id)
        self._last_of_process[op.process] = op.op_id
        # (2a) Values this op observes: resolve against the writers added
        # so far (same code path as the batch build, including unhashable
        # values and the strict ambiguity check).
        for key, value in op.values_observed().items():
            self._resolve_observed(op, key, value)
        # (2b) Values this op writes: resolve parked readers; a duplicate
        # writer of an already-observed value is the same ambiguity the
        # batch build raises on.
        for key, value in op.values_written().items():
            vk = self._value_key(op, key, value)
            if vk is None:
                self._append_unhashable_writer(op, key, value)
                continue
            existing = self._writer_of_value.get(vk)
            if existing is None:
                self._writer_of_value[vk] = op.op_id
                for reader in self._unresolved_reads.pop(vk, ()):
                    if reader != op.op_id:
                        self._add_edge(op.op_id, reader)
            elif (existing != op.op_id and self.strict_reads_from
                  and self._observed_values.get(vk)):
                raise AmbiguousReadsFrom(
                    f"value {value!r} for key {key!r} written by "
                    f"2 operations; use unique values"
                )
        if self._reach_cache:
            self._reach_cache.clear()

    def _append_unhashable_writer(self, op: Operation, key: object,
                                  value: object) -> None:
        """Rare path: an appended mutation wrote an unhashable value.
        Resolve parked readers by equality and mirror the batch build's
        strict ambiguity check (which compares by equality via linear
        scans)."""
        writers = self.history.writers_of(key, value, service=op.service)
        if len(writers) > 1 and self.strict_reads_from:
            for other in self.history:
                if other.service != op.service:
                    continue
                observed = other.values_observed()
                if key in observed and observed[key] == value and len(
                        [w for w in writers if w.op_id != other.op_id]) > 1:
                    raise AmbiguousReadsFrom(
                        f"value {value!r} for key {key!r} written by "
                        f"{len(writers)} operations; use unique values"
                    )
        if len(writers) == 1:
            remaining = []
            for parked in self._unresolved_any:
                reader_id, service, r_key, r_value = parked
                if (service == op.service and r_key == key
                        and r_value == value and reader_id != op.op_id):
                    self._add_edge(op.op_id, reader_id)
                else:
                    remaining.append(parked)
            self._unresolved_any = remaining

    def append_edge(self, src_op: Operation, dst_op: Operation) -> None:
        """Extend the order with a message edge already recorded in the
        history."""
        self._add_edge(src_op.op_id, dst_op.op_id)
        if self._reach_cache:
            self._reach_cache.clear()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def edges(self) -> List[Tuple[int, int]]:
        """Direct causal edges (process order ∪ reads-from ∪ messages)."""
        return [(src, dst) for src, dsts in self._adjacency.items() for dst in sorted(dsts)]

    def _reachable_from(self, src: int) -> FrozenSet[int]:
        cached = self._reach_cache.get(src)
        if cached is not None:
            return cached
        seen: Set[int] = set()
        stack = [src]
        while stack:
            node = stack.pop()
            for nxt in self._adjacency.get(node, ()):  # pragma: no branch
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        result = frozenset(seen)
        self._reach_cache[src] = result
        return result

    def precedes(self, a: Operation, b: Operation) -> bool:
        """True iff ``a`` ⇝ ``b`` (transitively)."""
        if a.op_id == b.op_id:
            return False
        return b.op_id in self._reachable_from(a.op_id)

    def concurrent(self, a: Operation, b: Operation) -> bool:
        return not self.precedes(a, b) and not self.precedes(b, a)

    def has_cycle(self) -> bool:
        """True if the direct edges contain a cycle (should never happen for
        histories produced by real executions)."""
        for op in self.history:
            if op.op_id in self._reachable_from(op.op_id):
                return True
        return False

    def respects(self, ordered_ops: Iterable[Operation]) -> bool:
        """True if the given total order respects every direct causal edge."""
        position = {op.op_id: i for i, op in enumerate(ordered_ops)}
        for src, dst in self.edges():
            if src in position and dst in position and position[src] > position[dst]:
                return False
        return True


def conflicting_read_onlys(history: History, write_op: Operation) -> List[Operation]:
    """C_α(W): read-only operations that conflict with mutation ``write_op``."""
    return [
        op for op in history
        if op.is_read_only and op.conflicts_with(write_op)
    ]


def regular_constraint_edges(history: History) -> List[Tuple[int, int]]:
    """The "regular" real-time constraint of RSS/RSC (condition 3 in §3.4).

    For every mutation ``w`` and every operation ``o`` that is either another
    mutation or a read-only operation conflicting with ``w``: if ``w``
    finishes before ``o`` starts, then ``w`` must precede ``o`` in the
    serialization.

    Derived by the sweep-line engine in :mod:`repro.core.orders`: the
    returned edges are a transitive reduction of the naive pair set (same
    closure, O(n log n + output) instead of quadratic).
    """
    from repro.core.orders import regular_constraint_edges as _sweep_regular

    return _sweep_regular(history)
