"""The read-modify-write update functions shared by every backend.

One table, used by the Gryff coordinator replica
(:meth:`~repro.gryff.replica.GryffReplica._apply_rmw_function`) and by the
Spanner session adapter (:class:`~repro.api.adapters.SpannerSession`), so
the same ``rmw`` call means the same thing on every backend — the
cross-backend equivalence is structural, not by convention.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["RMW_MODES", "apply_rmw"]

#: The modes the unified ``rmw`` surface accepts.
RMW_MODES = ("increment", "append", "set")


def apply_rmw(mode: str, old_value: Any, params: Mapping[str, Any], *,
              strict: bool = True) -> Any:
    """Apply an rmw update function to ``old_value``.

    ``increment`` adds ``amount`` (default 1), ``append`` concatenates
    ``suffix``, ``set`` replaces with ``new_value``.  With ``strict`` an
    unknown mode raises ``ValueError``; without it the mode degrades to
    ``set`` (the wire-facing replica path, which must not crash the server
    on a malformed request).
    """
    if mode == "increment":
        return (old_value or 0) + params.get("amount", 1)
    if mode == "append":
        return (old_value or "") + str(params.get("suffix", ""))
    if mode == "set" or not strict:
        return params.get("new_value")
    raise ValueError(f"unknown rmw mode {mode!r} (known: {RMW_MODES})")
