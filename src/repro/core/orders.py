"""Sweep-line constraint engine for real-time precedence orders.

The consistency checkers need, over and over, the answer to one question:
*which operations must precede which in any admissible serialization because
of real time?*  The seed implementation answered it with quadratic nested
loops emitting the full transitive closure (``n^2`` ``precedes`` calls per
derivation), which caps exhaustive checking and witness validation at toy
history sizes.

This module replaces those loops with a sweep-line derivation.  The
real-time order of a well-formed history is an *interval order*: ``a → b``
iff ``a`` responds before ``b`` is invoked (with a same-process tiebreak for
equal timestamps).  Interval orders have a prefix structure — the
predecessors of any operation are a prefix of the operations sorted by
response time — which lets us compute a **transitive reduction** instead of
the closure:

* sort targets by invocation and intermediates by invocation with a
  suffix-minimum over response times;
* an edge ``a → b`` is *redundant* iff some intermediate ``c`` satisfies
  ``resp(a) < inv(c)`` and ``resp(c) < inv(b)``; with ``f(a)`` the minimum
  response among operations invoked after ``resp(a)``, the non-redundant
  targets of ``a`` are exactly those invoked in the window
  ``(resp(a), f(a)]`` — a contiguous range found by binary search.

The emitted edge set is a subset of the naive pairs whose transitive
closure equals the closure of the naive set, which is all any consumer
(the serialization search, the witness validator) observes.  Derivation is
``O(n log n + output)`` instead of ``O(n^2)``; ``output`` is the reduction
size — near-linear for histories with bounded concurrency.

Edge derivation assumes the history is well-formed (no overlapping
operations within one process — ``History.check_well_formed``); the
pairwise ``precedes`` queries are exact for any history.

The ``naive_*`` functions preserve the seed implementations verbatim: they
are the reference oracles for the property tests and the baseline side of
the performance suite.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.events import Operation
from repro.core.history import History

__all__ = [
    "RealTimeIndex",
    "sweep_edge_pairs",
    "real_time_edges",
    "regular_constraint_edges",
    "osc_u_edges",
    "vv_regularity_edges",
    "conflicting_pair_edges",
    "mutation_order_edges",
    "reads_from_write_order_edges",
    "transitive_closure",
    "naive_real_time_edges",
    "naive_regular_constraint_edges",
]

_INF = float("inf")

Edge = Tuple[int, int]


def _ops_of(history_or_ops: Union[History, Sequence[Operation]]) -> List[Operation]:
    if isinstance(history_or_ops, History):
        return history_or_ops.operations()
    return list(history_or_ops)


_INV_KEY = lambda op: (op.invoked_at, op.op_id)  # noqa: E731 - sort key


class RealTimeIndex:
    """Array-backed O(1) real-time precedence queries over a fixed op set.

    Semantically identical to :meth:`repro.core.relations.RealTimeOrder.precedes`
    but avoids per-call attribute chasing: operations are renumbered densely
    (in op-id order) and the invocation/response/process data live in flat
    arrays, so a query is a couple of list indexings and float compares.
    """

    __slots__ = ("ops", "_index", "_inv", "_resp", "_proc", "_ids", "_proc_ids")

    def __init__(self, history_or_ops: Union[History, Sequence[Operation]]):
        ops = sorted(_ops_of(history_or_ops), key=lambda op: op.op_id)
        self.ops: List[Operation] = ops
        self._index: Dict[int, int] = {}
        inv: List[float] = []
        resp: List[float] = []
        proc: List[int] = []
        ids: List[int] = []
        proc_ids: Dict[str, int] = {}
        for i, op in enumerate(ops):
            self._index[op.op_id] = i
            inv.append(op.invoked_at)
            resp.append(op.responded_at if op.responded_at is not None else _INF)
            proc.append(proc_ids.setdefault(op.process, len(proc_ids)))
            ids.append(op.op_id)
        self._inv = inv
        self._resp = resp
        self._proc = proc
        self._ids = ids
        self._proc_ids = proc_ids

    def __len__(self) -> int:
        return len(self.ops)

    def append(self, op: Operation) -> int:
        """Monotone append: index one more operation, returning its dense
        index.  Queries over previously indexed operations are unaffected
        (dense indices are stable), so a streaming consumer can grow the
        index as operations arrive instead of rebuilding it per epoch."""
        if op.op_id in self._index:
            raise ValueError(f"operation {op.op_id} already indexed")
        i = len(self.ops)
        self.ops.append(op)
        self._index[op.op_id] = i
        self._inv.append(op.invoked_at)
        self._resp.append(op.responded_at if op.responded_at is not None else _INF)
        self._proc.append(self._proc_ids.setdefault(op.process, len(self._proc_ids)))
        self._ids.append(op.op_id)
        return i

    def index_of(self, op_id: int) -> int:
        """Dense index of an operation id."""
        return self._index[op_id]

    def precedes_at(self, i: int, j: int) -> bool:
        """Real-time precedence between dense indices ``i`` and ``j``."""
        if i == j:
            return False
        ri = self._resp[i]
        if ri == _INF:
            return False
        inv_j = self._inv[j]
        if self._proc[i] == self._proc[j]:
            if ri <= inv_j:
                return (self._inv[i], self._ids[i]) < (inv_j, self._ids[j])
            return False
        return ri < inv_j

    def precedes(self, a: Operation, b: Operation) -> bool:
        """True iff ``a``'s response precedes ``b``'s invocation."""
        return self.precedes_at(self._index[a.op_id], self._index[b.op_id])

    def concurrent(self, a: Operation, b: Operation) -> bool:
        return not self.precedes(a, b) and not self.precedes(b, a)

    def reduced_edges(self) -> List[Edge]:
        """Closure-equivalent reduced edge set over all indexed operations."""
        return sorted(set(sweep_edge_pairs(self.ops, self.ops, self.ops)))


# --------------------------------------------------------------------------- #
# The sweep
# --------------------------------------------------------------------------- #
def sweep_edge_pairs(
    sources: Sequence[Operation],
    targets: Sequence[Operation],
    intermediates: Sequence[Operation],
) -> List[Edge]:
    """Reduced real-time edges from ``sources`` to ``targets``.

    Emits a subset of the naive pairs ``{(s, t) : s → t}`` such that every
    naive pair is recovered by transitively chaining covered edges through
    ``intermediates``.  For that recovery to hold, every source→intermediate
    and intermediate→target pair must itself be covered: in-sweep when
    ``intermediates ⊆ targets`` (resp. ``⊆ sources``), otherwise by a
    companion sweep whose output is unioned with this one (e.g. the
    mutation↔mutation sweep that accompanies each per-key writer→reader
    sweep of the regular constraint).

    Ties (same process, response time equal to invocation time) are emitted
    directly — a tie edge is never transitively redundant.
    """
    t_sorted = sorted(targets, key=_INV_KEY)
    t_inv = [op.invoked_at for op in t_sorted]
    inter = sorted(
        (op for op in intermediates if op.responded_at is not None), key=_INV_KEY
    )
    i_inv = [op.invoked_at for op in inter]
    suffix_min_resp: List[float] = [_INF] * (len(inter) + 1)
    for j in range(len(inter) - 1, -1, -1):
        resp_j = inter[j].responded_at
        nxt = suffix_min_resp[j + 1]
        suffix_min_resp[j] = resp_j if resp_j < nxt else nxt

    edges: List[Edge] = []
    append = edges.append
    for s in sources:
        resp = s.responded_at
        if resp is None:
            continue
        window_end = suffix_min_resp[bisect_right(i_inv, resp)]
        lo = bisect_right(t_inv, resp)
        hi = bisect_right(t_inv, window_end, lo) if window_end != _INF else len(t_sorted)
        s_id = s.op_id
        s_proc = s.process
        s_key = (s.invoked_at, s_id)
        for t in t_sorted[lo:hi]:
            if t.op_id == s_id:
                continue
            if t.process == s_proc and not s_key < (t.invoked_at, t.op_id):
                continue
            append((s_id, t.op_id))
        k = lo - 1
        while k >= 0 and t_inv[k] == resp:
            t = t_sorted[k]
            if (
                t.process == s_proc
                and t.op_id != s_id
                and s_key < (t.invoked_at, t.op_id)
            ):
                append((s_id, t.op_id))
            k -= 1
    return edges


# --------------------------------------------------------------------------- #
# Model-specific constraint derivations
# --------------------------------------------------------------------------- #
def real_time_edges(history_or_ops: Union[History, Sequence[Operation]],
                    ops: Optional[Sequence[Operation]] = None) -> List[Edge]:
    """Reduced real-time precedence edges among ``ops``.

    Closure-equivalent to the naive all-pairs set over the same operations
    (linearizability / strict serializability constraints).
    """
    selected = _ops_of(history_or_ops) if ops is None else list(ops)
    return sorted(set(sweep_edge_pairs(selected, selected, selected)))


def mutation_order_edges(ops: Sequence[Operation]) -> List[Edge]:
    """Reduced real-time edges among the mutations of ``ops``."""
    mutations = [op for op in ops if op.is_mutation]
    return sorted(set(sweep_edge_pairs(mutations, mutations, mutations)))


def regular_constraint_edges(history: History) -> List[Edge]:
    """The "regular" real-time constraint of RSS/RSC (condition 3 in §3.4).

    Closure-equivalent to the naive derivation: for every complete mutation
    ``w`` and every operation ``o`` that is another mutation or a read-only
    operation conflicting with ``w``, if ``w`` finishes before ``o`` starts
    then ``w`` precedes ``o``.  Mutation→mutation pairs come from one global
    sweep; mutation→conflicting-read pairs from one sweep per (service, key)
    over that key's writers and read-only readers (the writer sweep supplies
    the mutation↔mutation covering edges the per-key sweeps chain through).
    """
    ops = _ops_of(history)
    mutations = [op for op in ops if op.is_mutation]
    edges = set(sweep_edge_pairs(mutations, mutations, mutations))

    writers_by_key: Dict[Tuple[str, object], List[Operation]] = defaultdict(list)
    for w in mutations:
        for key in w.keys_written():
            writers_by_key[(w.service, key)].append(w)
    readers_by_key: Dict[Tuple[str, object], List[Operation]] = defaultdict(list)
    for op in ops:
        if op.is_read_only:
            for key in op.keys_read():
                readers_by_key[(op.service, key)].append(op)

    for service_key, writers in writers_by_key.items():
        readers = readers_by_key.get(service_key)
        if readers:
            edges.update(sweep_edge_pairs(writers, readers, writers))
    return sorted(edges)


def osc_u_edges(ops: Sequence[Operation]) -> List[Edge]:
    """OSC(U) constraints: every operation that precedes a mutation in real
    time is ordered before it (closure-equivalent to the naive pairs)."""
    ops = list(ops)
    mutations = [op for op in ops if op.is_mutation]
    return sorted(set(sweep_edge_pairs(ops, mutations, mutations)))


def vv_regularity_edges(ops: Sequence[Operation]) -> List[Edge]:
    """Viotti-Vukolić regularity constraints: every operation that follows a
    mutation in real time is ordered after it."""
    ops = list(ops)
    mutations = [op for op in ops if op.is_mutation]
    return sorted(set(sweep_edge_pairs(mutations, ops, mutations)))


def conflicting_pair_edges(ops: Sequence[Operation]) -> List[Edge]:
    """CRDB-style constraints: operations sharing a key (read or write
    footprint, same service) respect their real-time order.

    One sweep per (service, key) group; within a group every operation is a
    valid transitive intermediate, so the per-group reductions union to a
    closure-equivalent of the naive conflicting-pair set.
    """
    groups: Dict[Tuple[str, object], List[Operation]] = defaultdict(list)
    for op in ops:
        for key in op.keys_read() | op.keys_written():
            groups[(op.service, key)].append(op)
    edges: set = set()
    for group in groups.values():
        if len(group) > 1:
            edges.update(sweep_edge_pairs(group, group, group))
    return sorted(edges)


def reads_from_write_order_edges(
    reads: Sequence[Operation],
    writes: Sequence[Operation],
    sources_of: Dict[int, Sequence[int]],
) -> List[Edge]:
    """MWR-Reads-From derived write-order constraints.

    For a read ``q`` that reads from write ``w2`` (``sources_of[q.op_id]``
    lists the ids of such ``w2``) and any write ``w1`` with ``q → w1`` in
    real time, ``w2`` must precede ``w1``.  The read→write successor sets
    are reduced through write intermediates; chaining through the companion
    write-order sweep recovers the dropped pairs.
    """
    edges: set = set()
    for read_id, write_id in sweep_edge_pairs(reads, writes, writes):
        for source_id in sources_of.get(read_id, ()):
            if source_id != write_id:
                edges.add((source_id, write_id))
    return sorted(edges)


# --------------------------------------------------------------------------- #
# Reference implementations and test helpers
# --------------------------------------------------------------------------- #
def transitive_closure(edges: Iterable[Edge]) -> set:
    """All reachable ``(src, dst)`` pairs of an edge set (test helper)."""
    adjacency: Dict[int, set] = defaultdict(set)
    for src, dst in edges:
        adjacency[src].add(dst)
    closure: set = set()
    for start in list(adjacency):
        seen: set = set()
        stack = list(adjacency[start])
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            closure.add((start, node))
            stack.extend(adjacency.get(node, ()))
    return closure


def naive_real_time_edges(history: History, ops: Sequence[Operation]) -> List[Edge]:
    """The seed quadratic derivation: all real-time pairs among ``ops``."""
    from repro.core.relations import RealTimeOrder

    rt = RealTimeOrder(history)
    edges = []
    for a in ops:
        for b in ops:
            if rt.precedes(a, b):
                edges.append((a.op_id, b.op_id))
    return edges


def naive_regular_constraint_edges(history: History) -> List[Edge]:
    """The seed quadratic derivation of the regular constraint."""
    from repro.core.relations import RealTimeOrder, conflicting_read_onlys

    rt = RealTimeOrder(history)
    edges: List[Edge] = []
    mutations = history.mutations()
    for w in mutations:
        if not w.is_complete:
            continue
        candidates = set(op.op_id for op in mutations)
        candidates.update(op.op_id for op in conflicting_read_onlys(history, w))
        for op in history:
            if op.op_id == w.op_id or op.op_id not in candidates:
                continue
            if rt.precedes(w, op):
                edges.append((w.op_id, op.op_id))
    return edges
