"""Sequential specifications (§3.2, App. C.1.5).

A sequential specification defines the legal *sequential* behaviours of a
service.  Checkers test candidate total orders against a specification by
replaying operations one at a time through a small state machine:

* :class:`RegisterSpec` — a multi-key read/write/rmw register (the
  non-transactional key-value store used by Gryff).
* :class:`TransactionalKVSpec` — a transactional key-value store with
  read-only and read-write transactions (the store used by Spanner).
* :class:`FifoQueueSpec` — a FIFO messaging service.
* :class:`CompositeSpec` — the composition of several services: operations
  are routed to the constituent specification named by ``op.service`` and
  legality is per-constituent (§3.2: composition is the set of all
  interleavings).

Each specification exposes ``initial_state()`` and ``apply(state, op)``.
``apply`` returns ``(ok, new_state)`` and never mutates the given state, so
search-based checkers can branch cheaply.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.events import INITIAL_VALUE, Operation, OpType

__all__ = [
    "SequentialSpec",
    "RegisterSpec",
    "TransactionalKVSpec",
    "FifoQueueSpec",
    "CompositeSpec",
    "legal_sequence",
]


def _generic_state_key(state: Any) -> Any:
    """A hashable rendering of an arbitrary state (slow reflective path)."""
    if isinstance(state, dict):
        return tuple(sorted(((repr(k), _generic_state_key(v)) for k, v in state.items())))
    if isinstance(state, (list, tuple)):
        return tuple(_generic_state_key(v) for v in state)
    if isinstance(state, set):
        return tuple(sorted(repr(v) for v in state))
    return repr(state)


def _dict_state_key(state: dict) -> Any:
    """Hashable key for flat dict states (the common case).

    ``frozenset(state.items())`` compares by value equality — exactly the
    equality ``apply`` itself uses when testing observed values — so two
    states with the same key collapse to the same search node.  Unhashable
    values fall back to the reflective rendering.
    """
    try:
        return frozenset(state.items())
    except TypeError:
        return _generic_state_key(state)


class SequentialSpec:
    """Interface for sequential specifications."""

    def initial_state(self) -> Any:
        raise NotImplementedError

    def apply(self, state: Any, op: Operation) -> Tuple[bool, Any]:
        """Apply ``op`` to ``state``; return ``(legal, next_state)``."""
        raise NotImplementedError

    def state_key(self, state: Any) -> Any:
        """A hashable key identifying ``state`` for search memoization.

        Two states with equal keys must behave identically under ``apply``.
        The base implementation walks the state reflectively; subclasses
        override it with direct renderings of their concrete state shape
        (the serialization search calls this once per DFS node, so it is on
        the checker hot path).
        """
        return _generic_state_key(state)

    def legal(self, operations: Iterable[Operation]) -> bool:
        """True if the given sequence is a legal sequential execution."""
        ok, _ = self.replay(operations)
        return ok

    def replay(self, operations: Iterable[Operation]) -> Tuple[bool, Any]:
        """Replay a sequence, returning legality and the final state."""
        state = self.initial_state()
        for op in operations:
            ok, state = self.apply(state, op)
            if not ok:
                return False, state
        return True, state


class RegisterSpec(SequentialSpec):
    """Multi-key read/write register with read-modify-writes.

    State is a mapping key → value; missing keys read as ``INITIAL_VALUE``.
    """

    def __init__(self, initial: Optional[Dict[Any, Any]] = None):
        self.initial = dict(initial or {})

    def initial_state(self) -> Dict[Any, Any]:
        return dict(self.initial)

    def apply(self, state: Dict[Any, Any], op: Operation) -> Tuple[bool, Dict[Any, Any]]:
        if op.op_type == OpType.READ:
            expected = state.get(op.key, INITIAL_VALUE)
            return (op.result == expected, state)
        if op.op_type == OpType.WRITE:
            new_state = dict(state)
            new_state[op.key] = op.value
            return (True, new_state)
        if op.op_type == OpType.RMW:
            expected = state.get(op.key, INITIAL_VALUE)
            if op.result != expected:
                return (False, state)
            new_state = dict(state)
            new_state[op.key] = op.value
            return (True, new_state)
        if op.op_type == OpType.FENCE:
            return (True, state)
        return (False, state)

    def state_key(self, state: Dict[Any, Any]) -> Any:
        return _dict_state_key(state)


class TransactionalKVSpec(SequentialSpec):
    """Transactional key-value store (the paper's Appendix C.3.2 service).

    Read-only transactions must observe, for every key in their read set, the
    most recently written value (or the initial value).  Read-write
    transactions additionally install their write set atomically.
    """

    def __init__(self, initial: Optional[Dict[Any, Any]] = None):
        self.initial = dict(initial or {})

    def initial_state(self) -> Dict[Any, Any]:
        return dict(self.initial)

    def _reads_legal(self, state: Dict[Any, Any], op: Operation) -> bool:
        for key, observed in op.read_set.items():
            if observed != state.get(key, INITIAL_VALUE):
                return False
        return True

    def apply(self, state: Dict[Any, Any], op: Operation) -> Tuple[bool, Dict[Any, Any]]:
        if op.op_type == OpType.RO_TXN:
            return (self._reads_legal(state, op), state)
        if op.op_type == OpType.RW_TXN:
            if not self._reads_legal(state, op):
                return (False, state)
            new_state = dict(state)
            new_state.update(op.write_set)
            return (True, new_state)
        if op.op_type == OpType.FENCE:
            return (True, state)
        # Allow plain reads/writes against the transactional store too: they
        # are single-operation transactions.
        if op.op_type == OpType.READ:
            return (op.result == state.get(op.key, INITIAL_VALUE), state)
        if op.op_type == OpType.WRITE:
            new_state = dict(state)
            new_state[op.key] = op.value
            return (True, new_state)
        return (False, state)

    def state_key(self, state: Dict[Any, Any]) -> Any:
        return _dict_state_key(state)


class FifoQueueSpec(SequentialSpec):
    """A FIFO queue per queue name; dequeue of an empty queue returns None."""

    def initial_state(self) -> Dict[Any, Tuple[Any, ...]]:
        return {}

    def apply(self, state: Dict[Any, Tuple[Any, ...]], op: Operation
              ) -> Tuple[bool, Dict[Any, Tuple[Any, ...]]]:
        queue = state.get(op.key, ())
        if op.op_type == OpType.ENQUEUE:
            new_state = dict(state)
            new_state[op.key] = queue + (op.value,)
            return (True, new_state)
        if op.op_type == OpType.DEQUEUE:
            if not queue:
                return (op.result is None, state)
            head, rest = queue[0], queue[1:]
            if op.result != head:
                return (False, state)
            new_state = dict(state)
            new_state[op.key] = rest
            return (True, new_state)
        if op.op_type == OpType.FENCE:
            return (True, state)
        return (False, state)

    def state_key(self, state: Dict[Any, Tuple[Any, ...]]) -> Any:
        return _dict_state_key(state)


class CompositeSpec(SequentialSpec):
    """Composition of named services (§3.2).

    The composite state maps service name → constituent state.  Each
    operation is routed by ``op.service``; unknown services are rejected.
    """

    def __init__(self, services: Dict[str, SequentialSpec]):
        if not services:
            raise ValueError("composite spec requires at least one service")
        self.services = dict(services)

    def initial_state(self) -> Dict[str, Any]:
        return {name: spec.initial_state() for name, spec in self.services.items()}

    def apply(self, state: Dict[str, Any], op: Operation) -> Tuple[bool, Dict[str, Any]]:
        spec = self.services.get(op.service)
        if spec is None:
            return (False, state)
        ok, sub_state = spec.apply(state[op.service], op)
        if not ok:
            return (False, state)
        new_state = dict(state)
        new_state[op.service] = sub_state
        return (ok, new_state)

    def state_key(self, state: Dict[str, Any]) -> Any:
        return tuple(
            (name, self.services[name].state_key(sub_state))
            for name, sub_state in sorted(state.items())
        )


def legal_sequence(spec: SequentialSpec, operations: Iterable[Operation]) -> bool:
    """Convenience wrapper: is the sequence legal under ``spec``?"""
    return spec.legal(operations)
