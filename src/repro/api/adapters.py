"""Backend adapters: the protocol clients behind the unified surface.

Each adapter wraps an existing protocol client (the same object the
simulator and the live runtime construct) and translates the unified
vocabulary into the protocol's own operations.  Adapters never touch the
environment, the recorder, or the history themselves — the wrapped client's
:class:`~repro.core.recording.SessionRecorder` bookkeeping runs unchanged,
which is what keeps simulations driven through the facade bit-identical to
simulations driven against the raw clients.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.api.errors import UnsupportedOperationError
from repro.api.session import Session
from repro.core.rmw import RMW_MODES, apply_rmw
from repro.gryff.carstamp import Carstamp

__all__ = ["GryffSession", "SpannerSession", "FleetGryffSession",
           "FleetSpannerSession"]


class GryffSession(Session):
    """A Gryff / Gryff-RSC client behind the unified surface.

    Gryff is a register store: ``read``/``write``/``rmw`` map one-to-one
    onto Algorithm 3; ``txn`` and ``read_only`` honor only the shapes a
    register protocol can express (a single blind write, a single-key
    snapshot) and raise :class:`UnsupportedOperationError` for anything
    wider.  The session context is the pending dependency carstamp —
    exactly what a client must carry to resume its causal constraints
    elsewhere.
    """

    backend = "gryff"
    capabilities = frozenset(
        {"read", "write", "rmw", "txn", "read_only", "fence"})

    # -------------------------------------------------------------- #
    def read(self, key: str):
        return self._client.read(key)

    def write(self, key: str, value: Any):
        return self._client.write(key, value)

    def rmw(self, key: str, mode: str = "increment", **params):
        if mode not in RMW_MODES:
            raise ValueError(f"unknown rmw mode {mode!r} (known: {RMW_MODES})")
        return self._client.rmw(key, mode=mode, **params)

    def txn(self, read_keys: List[str],
            updates: Callable[[Dict[str, Any]], Dict[str, Any]]):
        read_keys = list(read_keys)
        if read_keys:
            raise UnsupportedOperationError(
                "gryff cannot execute transactions with read sets; use rmw "
                "for single-key read-modify-writes")
        writes = updates({})
        if len(writes) != 1:
            raise UnsupportedOperationError(
                f"multi-key txn is not supported on gryff "
                f"(writes {sorted(writes)})")
        return self._txn_blind_write(dict(writes))

    def _txn_blind_write(self, writes: Dict[str, Any]):
        ((key, value),) = writes.items()
        carstamp = yield from self._client.write(key, value)
        return {}, writes, carstamp

    def read_only(self, keys: List[str]):
        keys = list(keys)
        if len(keys) != 1:
            raise UnsupportedOperationError(
                f"multi-key read_only is not supported on gryff "
                f"(keys {sorted(keys)}); issue single-key reads")
        return self._read_only_single(keys[0])

    def _read_only_single(self, key: str):
        value = yield from self._client.read(key)
        return {key: value}

    def fence(self):
        return self._client.fence()

    # -------------------------------------------------------------- #
    @property
    def reads_fast(self) -> int:
        return self._client.reads_fast

    @property
    def reads_slow(self) -> int:
        return self._client.reads_slow

    @property
    def dependency(self) -> Optional[Dict[str, Any]]:
        return self._client.dependency

    def _export_context(self) -> Optional[Dict[str, Any]]:
        dependency = self._client.dependency
        if dependency is None:
            return None
        return {"key": dependency["key"], "value": dependency["value"],
                "carstamp": list(dependency["carstamp"])}

    def _import_context(self, context: Optional[Dict[str, Any]]) -> None:
        if context is None:
            return
        incoming = _carstamp(context["carstamp"])
        current = self._client.dependency
        if current is not None:
            if current["key"] != context["key"]:
                # Carstamps only order updates to one key, and the protocol
                # carries a single pending dependency (Algorithm 3's d):
                # adopting the token would silently drop our own causal
                # constraint.  Refuse the ambiguity; a fence() writes the
                # pending dependency back and clears the slot.
                raise UnsupportedOperationError(
                    f"cannot resume a context for key {context['key']!r} "
                    f"while a dependency on {current['key']!r} is pending; "
                    f"fence() first")
            if _carstamp(current["carstamp"]) >= incoming:
                return  # our own pending dependency is at least as recent
        self._client.dependency = {
            "key": context["key"], "value": context["value"],
            "carstamp": incoming.as_tuple(),
        }


def _carstamp(data) -> Carstamp:
    return Carstamp(number=data[0], rmw_count=data[1], writer=data[2])


class SpannerSession(Session):
    """A Spanner / Spanner-RSS client behind the unified surface.

    Transactions are native; single-key operations are degenerate
    transactions (``read`` a one-key read-only transaction, ``write`` a
    blind read-write transaction, ``rmw`` a read-write transaction whose
    update function applies the mode).  The session context is the
    minimum read timestamp ``t_min`` (§4.2).
    """

    backend = "spanner"
    capabilities = frozenset(
        {"read", "write", "rmw", "txn", "read_only", "fence",
         "multi_key_txn", "multi_key_read_only", "sessions"})

    # -------------------------------------------------------------- #
    def read(self, key: str):
        return self._read(key)

    def _read(self, key: str):
        values = yield from self._client.read_only_transaction([key])
        return values[key]

    def write(self, key: str, value: Any):
        return self._write(key, value)

    def _write(self, key: str, value: Any):
        _reads, _writes, commit_ts = yield from self._client.read_write_transaction(
            [], lambda _reads, _key=key, _value=value: {_key: _value})
        return commit_ts

    def rmw(self, key: str, mode: str = "increment", **params):
        if mode not in RMW_MODES:
            raise ValueError(f"unknown rmw mode {mode!r} (known: {RMW_MODES})")
        return self._rmw(key, mode, params)

    def _rmw(self, key: str, mode: str, params: Dict[str, Any]):
        def compute(reads: Dict[str, Any]) -> Dict[str, Any]:
            return {key: apply_rmw(mode, reads.get(key), params)}

        reads, writes, _commit_ts = yield from self._client.read_write_transaction(
            [key], compute)
        return reads.get(key), writes[key]

    def txn(self, read_keys: List[str],
            updates: Callable[[Dict[str, Any]], Dict[str, Any]],
            max_retries: int = 25):
        return self._client.read_write_transaction(
            list(read_keys), updates, max_retries)

    def read_only(self, keys: List[str]):
        return self._client.read_only_transaction(list(keys))

    def fence(self):
        return self._client.fence()

    # -------------------------------------------------------------- #
    @property
    def committed(self) -> int:
        return self._client.committed

    @property
    def aborted_attempts(self) -> int:
        return self._client.aborted_attempts

    @property
    def t_min(self) -> float:
        return self._client.t_min

    def new_session(self) -> None:
        self._client.new_session()

    def _export_context(self) -> float:
        return self._client.export_context()

    def _import_context(self, context: Any) -> None:
        self._client.import_context(float(context))


class FleetGryffSession(GryffSession):
    """A placement-routed Gryff session (fleet backend).

    Operation shapes are exactly the standalone Gryff surface — in
    particular ``txn``/``read_only`` still honor only single-key shapes, so
    a cross-group transaction is rejected the same way a multi-key one is:
    Gryff fleets support single-group operations only.
    """

    capabilities = GryffSession.capabilities | {"fleet_routing"}


class FleetSpannerSession(SpannerSession):
    """A placement-routed Spanner session (fleet backend).

    Cross-group ``txn``/``read_only`` run through the unmodified 2PC /
    RSS machinery over the merged topology, so the full standalone
    vocabulary carries over.
    """

    capabilities = SpannerSession.capabilities | {"fleet_routing"}
