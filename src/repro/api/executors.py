"""Workload executors over the unified session surface.

These are the protocol-agnostic bridges between the workload generators
(:mod:`repro.workloads`) and the unified API: one executor body per
workload, running unchanged against sim-Gryff, sim-Spanner, and live
clusters.  The drivers call ``executor(session, spec)`` for every workload
item; executors are generators driven by the simulation or the live pump.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.spanner.client import TransactionAborted
from repro.workloads.retwis import TransactionSpec
from repro.workloads.ycsb import OperationSpec

__all__ = ["ycsb_executor", "make_retwis_executor", "reset_session"]


def ycsb_executor(session, spec: OperationSpec):
    """One YCSB single-key operation through the unified surface.

    Registers map directly (Gryff); transactional backends execute the
    degenerate single-key transactions (Spanner).  A transaction that
    retries out of its budget counts as abandoned and the loop moves on
    (the recorder already saw the latency of the failed attempts).
    """
    try:
        if spec.kind == "write":
            yield from session.write(spec.key, spec.value)
        else:
            yield from session.read(spec.key)
    except TransactionAborted:
        pass


def make_retwis_executor(workload_by_session: Dict[str, Any]):
    """Executor mapping Retwis transaction specs onto the unified surface.

    ``workload_by_session`` maps session names to their
    :class:`~repro.workloads.retwis.RetwisWorkload` (the workload mints the
    globally unique written values).  Requires a backend with the
    ``multi_key_txn`` capability (Spanner); a register backend raises
    :class:`~repro.api.errors.UnsupportedOperationError` on the first
    multi-key transaction.
    """
    def executor(session, spec: TransactionSpec):
        workload = workload_by_session[session.name]
        try:
            if spec.read_only:
                yield from session.read_only(spec.read_keys)
            else:
                def compute_writes(_reads: Dict[str, Any]) -> Dict[str, Any]:
                    return {key: workload.unique_value()
                            for key in spec.write_keys}

                yield from session.txn(spec.read_keys, compute_writes)
        except TransactionAborted:
            # Retried out; count it and move on (the latency of the failed
            # attempts is already reflected in the recorder via retries).
            pass

    return executor


def reset_session(session) -> None:
    """Driver callback starting a fresh end-user causal context."""
    session.new_session()
