"""Declared consistency levels and the backend capability matrix.

The paper's portability claim is that an application states the consistency
it needs and the deployment underneath can be swapped.  The unified client
API makes that statement explicit: a session is opened *at* a
:class:`ConsistencyLevel`, capability negotiation rejects (backend, level)
pairs the deployment cannot honor, and the level names the checker model the
captured history is validated against.
"""

from __future__ import annotations

from enum import Enum
from typing import FrozenSet, Union

from repro.api.errors import CapabilityError

__all__ = ["ConsistencyLevel", "supported_levels", "native_level", "negotiate"]


class ConsistencyLevel(Enum):
    """The consistency guarantees a session may declare.

    * ``RSC`` — regular sequential consistency (single-object model);
    * ``RSS`` — regular sequential serializability (transactional model);
    * ``LIN`` — linearizability;
    * ``STRICT_SER`` — strict serializability.
    """

    RSC = "rsc"
    RSS = "rss"
    LIN = "lin"
    STRICT_SER = "strict_ser"

    @property
    def checker_model(self) -> str:
        """The :mod:`repro.core.checkers` model name validating this level."""
        return _CHECKER_MODELS[self]

    @classmethod
    def parse(cls, value: Union["ConsistencyLevel", str]) -> "ConsistencyLevel":
        """Coerce a level from its enum, its value, or a checker model name."""
        if isinstance(value, cls):
            return value
        normalized = str(value).strip().lower().replace("-", "_")
        for level in cls:
            if normalized in (level.value, level.name.lower(),
                              level.checker_model):
                return level
        raise ValueError(
            f"unknown consistency level {value!r} "
            f"(known: {[level.value for level in cls]})")


_CHECKER_MODELS = {
    ConsistencyLevel.RSC: "rsc",
    ConsistencyLevel.RSS: "rss",
    ConsistencyLevel.LIN: "linearizability",
    ConsistencyLevel.STRICT_SER: "strict_serializability",
}

#: What each deployment variant can honor.  A system may serve levels
#: *weaker* than its native guarantee only when the object model matches:
#: Gryff (linearizable registers) also honors RSC; Spanner (strictly
#: serializable transactions) also honors RSS.  The RSC/RSS variants honor
#: exactly their relaxed guarantee.
_SUPPORTED = {
    "gryff": frozenset({ConsistencyLevel.LIN, ConsistencyLevel.RSC}),
    "gryff-rsc": frozenset({ConsistencyLevel.RSC}),
    "spanner": frozenset({ConsistencyLevel.STRICT_SER, ConsistencyLevel.RSS}),
    "spanner-rss": frozenset({ConsistencyLevel.RSS}),
}

#: The guarantee each deployment variant is designed around (what a session
#: gets when it does not declare a level).
_NATIVE = {
    "gryff": ConsistencyLevel.LIN,
    "gryff-rsc": ConsistencyLevel.RSC,
    "spanner": ConsistencyLevel.STRICT_SER,
    "spanner-rss": ConsistencyLevel.RSS,
}


def supported_levels(protocol: str) -> FrozenSet[ConsistencyLevel]:
    """The levels a deployment variant can honor."""
    try:
        return _SUPPORTED[protocol]
    except KeyError:
        raise ValueError(f"unknown protocol {protocol!r} "
                         f"(known: {sorted(_SUPPORTED)})") from None


def native_level(protocol: str) -> ConsistencyLevel:
    """The default level of a deployment variant."""
    try:
        return _NATIVE[protocol]
    except KeyError:
        raise ValueError(f"unknown protocol {protocol!r} "
                         f"(known: {sorted(_NATIVE)})") from None


def negotiate(protocol: str,
              level: Union[ConsistencyLevel, str, None]) -> ConsistencyLevel:
    """Resolve a requested level against a backend's capabilities.

    ``None`` selects the backend's native level; anything else must be a
    level the backend can honor, or :class:`CapabilityError` is raised.
    """
    if level is None:
        return native_level(protocol)
    level = ConsistencyLevel.parse(level)
    supported = supported_levels(protocol)
    if level not in supported:
        raise CapabilityError(
            f"backend {protocol!r} cannot honor {level.value!r} "
            f"(supported: {sorted(l.value for l in supported)})")
    return level
