"""Errors raised by the unified client API."""

from __future__ import annotations

from repro.fleet.spec import FleetConfigError

__all__ = [
    "ApiError",
    "CapabilityError",
    "UnsupportedOperationError",
    "InvalidSessionToken",
    "UnknownBackendError",
    "FleetConfigError",
]


class ApiError(Exception):
    """Base class for unified-client-API errors."""


class CapabilityError(ApiError):
    """A backend cannot honor the requested consistency level.

    Raised at session-open time by capability negotiation — e.g. asking a
    Gryff-RSC deployment for ``STRICT_SER``, or a Spanner deployment for
    ``RSC`` (a register-store model it does not implement).
    """


class UnsupportedOperationError(ApiError):
    """The backend cannot execute the requested operation shape.

    Raised at call time — e.g. a multi-key ``txn`` on Gryff, whose protocol
    only supports single-register operations.
    """


class InvalidSessionToken(ApiError, ValueError):
    """A session-context token is malformed or from a different backend."""


class UnknownBackendError(ApiError, ValueError):
    """``open_store`` received a backend spec it does not recognize."""
