"""The unified client API: one protocol-agnostic surface over every backend.

The paper's portability claim — applications keep their invariants while the
system underneath is swapped — is realized here as a software-defined
facade.  A :class:`Store` is opened from a backend spec (``sim-gryff``,
``sim-spanner``, ``live:<cluster.json>``); it negotiates a declared
:class:`ConsistencyLevel` and yields :class:`Session` objects exposing a
single operation vocabulary (``read``/``write``/``rmw``/``txn``/
``read_only``/``fence``) plus opaque session-context tokens
(``session_token``/``resume``) generalizing Spanner's export/import-context
and Gryff's dependency carstamps.  Every workload, app, driver, and example
in the repository talks to this surface; the per-protocol client libraries
are backend adapters behind it.

Quickstart::

    from repro.api import ConsistencyLevel, open_store

    store = open_store("sim-spanner")                    # Spanner-RSS
    alice = store.session("CA", name="alice", level=ConsistencyLevel.RSS)

    def workload():
        yield from alice.txn(["album:alice"], lambda reads: {
            "album:alice": (reads["album:alice"] or ()) + ("p1",)})
        values = yield from alice.read_only(["album:alice"])

    store.spawn(workload())
    store.run()
    assert store.check_consistency()
"""

from repro.api.errors import (
    ApiError,
    CapabilityError,
    FleetConfigError,
    InvalidSessionToken,
    UnknownBackendError,
    UnsupportedOperationError,
)
from repro.api.levels import ConsistencyLevel, native_level, supported_levels
from repro.api.session import Session
from repro.api.adapters import (
    FleetGryffSession,
    FleetSpannerSession,
    GryffSession,
    SpannerSession,
)
from repro.api.store import (
    FleetStore,
    LiveStore,
    SimGryffStore,
    SimSpannerStore,
    Store,
    open_store,
)
from repro.api.executors import make_retwis_executor, reset_session, ycsb_executor
from repro.core.recording import SessionRecorder
from repro.spanner.client import TransactionAborted

__all__ = [
    "ApiError",
    "CapabilityError",
    "ConsistencyLevel",
    "FleetConfigError",
    "FleetGryffSession",
    "FleetSpannerSession",
    "FleetStore",
    "GryffSession",
    "InvalidSessionToken",
    "LiveStore",
    "Session",
    "SessionRecorder",
    "SimGryffStore",
    "SimSpannerStore",
    "SpannerSession",
    "Store",
    "TransactionAborted",
    "UnknownBackendError",
    "UnsupportedOperationError",
    "make_retwis_executor",
    "native_level",
    "open_store",
    "reset_session",
    "supported_levels",
    "ycsb_executor",
]
