"""Store handles: open a backend, get unified sessions out of it.

``open_store`` accepts a *backend spec* and returns a :class:`Store`:

* ``"sim-gryff"`` — a simulated Gryff deployment (the config's variant
  decides Gryff vs Gryff-RSC; default :class:`GryffConfig` is Gryff-RSC);
* ``"sim-spanner"`` — a simulated Spanner deployment (default config is
  Spanner-RSS);
* ``"live:<cluster.json>"`` — a live deployment described by a
  :class:`~repro.net.spec.ClusterSpec` topology file, driven over real
  asyncio TCP;
* an already-built :class:`~repro.gryff.cluster.GryffCluster`,
  :class:`~repro.spanner.cluster.SpannerCluster`, or
  :class:`~repro.net.spec.ClusterSpec` object.

A store negotiates declared :class:`~repro.api.levels.ConsistencyLevel`\\ s
(:class:`~repro.api.errors.CapabilityError` when the backend cannot honor
one) and mints :class:`~repro.api.session.Session` objects whose operations
run through the protocol's own client library — the facade adds no events
and no timing, so simulations through it are bit-identical to simulations
against the raw clients.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, FrozenSet, List, Optional, Union

from repro.api.adapters import GryffSession, SpannerSession
from repro.api.errors import UnknownBackendError
from repro.api.levels import ConsistencyLevel, negotiate, supported_levels
from repro.api.session import Session
from repro.core.history import History
from repro.sim.stats import LatencyRecorder

__all__ = ["Store", "SimGryffStore", "SimSpannerStore", "LiveStore",
           "FleetStore", "open_store"]


class Store:
    """A handle on one deployment, minting unified sessions."""

    #: Adapter class the store's sessions use; subclasses set it.
    session_class = Session

    def __init__(self) -> None:
        self.sessions: List[Session] = []

    # -------------------------------------------------------------- #
    @property
    def protocol(self) -> str:
        """The deployment variant name (``gryff``, ``gryff-rsc``,
        ``spanner``, ``spanner-rss``)."""
        raise NotImplementedError

    @property
    def supported_levels(self) -> FrozenSet[ConsistencyLevel]:
        return supported_levels(self.protocol)

    @property
    def native_level(self) -> ConsistencyLevel:
        return negotiate(self.protocol, None)

    def negotiate(self, level: Union[ConsistencyLevel, str, None]
                  ) -> ConsistencyLevel:
        """Resolve ``level`` (``None`` = native) against this backend;
        raises :class:`~repro.api.errors.CapabilityError` if unsupported."""
        return negotiate(self.protocol, level)

    def supports(self, capability: str) -> bool:
        """Whether sessions of this backend can execute ``capability``."""
        return capability in self.session_class.capabilities

    def session(self, site: Optional[str] = None, name: Optional[str] = None,
                level: Union[ConsistencyLevel, str, None] = None,
                record_history: bool = True) -> Session:
        """Open a session at ``site`` with a declared consistency level."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} protocol={self.protocol} "
                f"sessions={len(self.sessions)}>")


# --------------------------------------------------------------------------- #
# Simulated backends
# --------------------------------------------------------------------------- #
class _SimStore(Store):
    """Common surface of the simulated stores: the wrapped cluster's
    environment, shared history/recorder, and run/spawn/check helpers."""

    def __init__(self, cluster) -> None:
        super().__init__()
        self.cluster = cluster

    @property
    def env(self):
        return self.cluster.env

    @property
    def network(self):
        return self.cluster.network

    @property
    def history(self) -> History:
        return self.cluster.history

    @property
    def recorder(self) -> LatencyRecorder:
        return self.cluster.recorder

    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation until quiescence or ``until`` (ms)."""
        return self.cluster.run(until=until)

    def spawn(self, generator):
        """Start a client workload process."""
        return self.cluster.spawn(generator)

    def session(self, site: Optional[str] = None, name: Optional[str] = None,
                level: Union[ConsistencyLevel, str, None] = None,
                record_history: bool = True) -> Session:
        level = self.negotiate(level)
        if site is None:
            site = self.cluster.config.sites[0]
        client = self.cluster.new_client(site, name=name,
                                         record_history=record_history)
        session = self.session_class(client, level)
        self.sessions.append(session)
        return session

    def check_consistency(self,
                          level: Union[ConsistencyLevel, str, None] = None):
        """Validate the recorded history against ``level``'s checker model
        (``None`` = the deployment's native level)."""
        return self.cluster.check_consistency(
            model=self.negotiate(level).checker_model)


class SimGryffStore(_SimStore):
    """A simulated Gryff / Gryff-RSC deployment."""

    session_class = GryffSession

    def __init__(self, config=None, cluster=None):
        if cluster is None:
            from repro.gryff.cluster import GryffCluster

            cluster = GryffCluster(config)
        super().__init__(cluster)

    @property
    def protocol(self) -> str:
        from repro.gryff.config import GryffVariant

        return ("gryff" if self.cluster.config.variant == GryffVariant.GRYFF
                else "gryff-rsc")


class SimSpannerStore(_SimStore):
    """A simulated Spanner / Spanner-RSS deployment."""

    session_class = SpannerSession

    def __init__(self, config=None, cluster=None):
        if cluster is None:
            from repro.spanner.cluster import SpannerCluster

            cluster = SpannerCluster(config)
        super().__init__(cluster)

    @property
    def protocol(self) -> str:
        from repro.spanner.config import Variant

        return ("spanner" if self.cluster.config.variant == Variant.SPANNER
                else "spanner-rss")

    @property
    def truetime(self):
        return self.cluster.truetime


# --------------------------------------------------------------------------- #
# Live backend
# --------------------------------------------------------------------------- #
class LiveStore(Store):
    """A pure-client process against a running live cluster.

    Sessions are protocol clients bound to the store's
    :class:`~repro.net.cluster.LiveProcess` (shared realtime environment and
    TCP transport).  The shared history may be a
    :class:`~repro.net.recorder.RecordingHistory` streaming to a JSONL
    trace.  Usage::

        store = open_store("live:cluster.json")
        sessions = [store.session() for _ in range(4)]
        await store.start()
        await store.drive(driver)      # any started driver processes
        await store.stop()
    """

    def __init__(self, spec, history: Optional[History] = None,
                 recorder: Optional[LatencyRecorder] = None,
                 codec: str = "binary"):
        from repro.net.cluster import LiveProcess

        super().__init__()
        self.spec = spec
        self.process = LiveProcess(spec, host_nodes=(),   # no server nodes
                                   codec=codec)
        self.history = history if history is not None else History()
        self.recorder = recorder if recorder is not None else LatencyRecorder()
        self._config = None
        self._truetime = None
        self._session_counter = itertools.count(1)
        #: Optional :class:`~repro.obs.backpressure.AdmissionController`;
        #: ``None`` (the default) admits every session unconditionally.
        self.admission = None

    @property
    def protocol(self) -> str:
        return self.spec.protocol

    @property
    def session_class(self):
        return GryffSession if self.spec.is_gryff else SpannerSession

    @property
    def env(self):
        return self.process.env

    def _protocol_config(self):
        if self._config is None:
            self._config = (self.spec.gryff_config() if self.spec.is_gryff
                            else self.spec.spanner_config())
        return self._config

    def session(self, site: Optional[str] = None, name: Optional[str] = None,
                level: Union[ConsistencyLevel, str, None] = None,
                record_history: bool = True) -> Session:
        if self.admission is not None:
            self.admission.admit()
        level = self.negotiate(level)
        sites = self.spec.sites()
        if site is None:
            site = sites[len(self.sessions) % len(sites)]
        if name is None:
            name = f"client{next(self._session_counter)}@{site}"
        config = self._protocol_config()
        if self.spec.is_gryff:
            from repro.gryff.client import GryffClient

            client = GryffClient(
                self.process.env, self.process.transport, config,
                name=name, site=site, history=self.history,
                recorder=self.recorder, record_history=record_history)
        else:
            from repro.sim.clock import TrueTime
            from repro.spanner.client import SpannerClient

            if self._truetime is None:
                self._truetime = TrueTime(
                    self.process.env, epsilon=config.truetime_epsilon_ms)
            client = SpannerClient(
                self.process.env, self.process.transport, self._truetime,
                config, name=name, site=site, history=self.history,
                recorder=self.recorder, record_history=record_history)
        session = self.session_class(client, level)
        self.sessions.append(session)
        return session

    # -------------------------------------------------------------- #
    async def start(self) -> None:
        """Start the live event pump (no listeners: clients only)."""
        await self.process.start()

    async def stop(self) -> None:
        """Stop the pump and close the transport; idempotent."""
        await self.process.stop()

    async def drive(self, driver) -> None:
        """Run a started :mod:`repro.workloads.clients` driver to completion.

        Races the client processes against the event pump: if the pump dies,
        no event (including the drivers' deadline timeouts) ever fires
        again, so waiting on the clients alone would hang forever.
        """
        procs = driver.start()
        clients_done = asyncio.ensure_future(asyncio.gather(
            *(self.process.env.as_future(proc) for proc in procs)))
        await asyncio.wait({clients_done, self.process.pump_task},
                           return_when=asyncio.FIRST_COMPLETED)
        if not clients_done.done():
            clients_done.cancel()
            exc = self.process.pump_task.exception()
            if exc is not None:
                raise exc
            raise RuntimeError("event pump stopped before the load completed")
        await clients_done

    def check_consistency(self,
                          level: Union[ConsistencyLevel, str, None] = None):
        """Validate the captured live history against ``level``'s model."""
        from repro.net.check import check_trace

        return check_trace(self.history, self.protocol,
                           self.negotiate(level).checker_model)


# --------------------------------------------------------------------------- #
# Fleet backend
# --------------------------------------------------------------------------- #
class FleetStore(LiveStore):
    """A client process against a running multi-group fleet.

    The transport dials the *merged* topology (every node of every group is
    addressable), but sessions are placement-routing fleet clients: Gryff
    single-key operations go to the key's owning group, Spanner
    transactions route per key and fall back to the unmodified cross-group
    2PC when a write set spans groups.  The store also owns the
    :class:`~repro.fleet.client.OpTracker` and the live
    :class:`~repro.fleet.ring.PlacementMap` that a
    :class:`~repro.fleet.migration.MigrationController` reconfigures.

    A single-group fleet is byte-identical to a :class:`LiveStore` run: the
    routing hooks resolve to the same replica set a standalone client uses,
    and they add no events and no messages.
    """

    def __init__(self, fleet, history: Optional[History] = None,
                 recorder: Optional[LatencyRecorder] = None,
                 codec: str = "binary"):
        from repro.fleet.client import OpTracker

        super().__init__(fleet.merged_spec(), history=history,
                         recorder=recorder, codec=codec)
        self.fleet = fleet
        self.placement = fleet.placement
        self.tracker = OpTracker()

    @property
    def session_class(self):
        from repro.api.adapters import FleetGryffSession, FleetSpannerSession

        return (FleetGryffSession if self.fleet.is_gryff
                else FleetSpannerSession)

    def _protocol_config(self):
        if self._config is None:
            self._config = (self.fleet.client_gryff_config()
                            if self.fleet.is_gryff
                            else self.fleet.client_spanner_config())
        return self._config

    def session(self, site: Optional[str] = None, name: Optional[str] = None,
                level: Union[ConsistencyLevel, str, None] = None,
                record_history: bool = True) -> Session:
        if self.admission is not None:
            self.admission.admit()
        level = self.negotiate(level)
        sites = self.spec.sites()
        if site is None:
            site = sites[len(self.sessions) % len(sites)]
        if name is None:
            name = f"client{next(self._session_counter)}@{site}"
        config = self._protocol_config()
        if self.fleet.is_gryff:
            from repro.fleet.client import FleetGryffClient

            client = FleetGryffClient(
                self.process.env, self.process.transport, config,
                name=name, site=site,
                groups={gid: self.fleet.group_names(gid)
                        for gid in self.fleet.group_ids()},
                placement=self.placement, tracker=self.tracker,
                history=self.history, recorder=self.recorder,
                record_history=record_history)
        else:
            from repro.fleet.client import FleetSpannerClient
            from repro.sim.clock import TrueTime

            if self._truetime is None:
                self._truetime = TrueTime(
                    self.process.env, epsilon=config.truetime_epsilon_ms)
            client = FleetSpannerClient(
                self.process.env, self.process.transport, self._truetime,
                config, name=name, site=site, tracker=self.tracker,
                history=self.history, recorder=self.recorder,
                record_history=record_history)
        session = self.session_class(client, level)
        self.sessions.append(session)
        return session


# --------------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------------- #
def open_store(backend: Any, *, config: Any = None,
               history: Optional[History] = None,
               recorder: Optional[LatencyRecorder] = None,
               codec: Optional[str] = None) -> Store:
    """Open a :class:`Store` from a backend spec (see module docstring).

    ``config`` customizes the simulated backends (a :class:`GryffConfig` /
    :class:`SpannerConfig`, whose ``variant`` selects the deployment
    flavor).  ``history``/``recorder`` inject shared capture objects into a
    live store (simulated clusters own theirs).  ``codec`` picks a live
    store's wire format (``"binary"`` — the default — or ``"json"``);
    simulated backends have no wire and reject it.
    """
    from repro.gryff.cluster import GryffCluster
    from repro.net.spec import ClusterSpec
    from repro.spanner.cluster import SpannerCluster

    def _reject_ignored(target: str, **kwargs) -> None:
        ignored = [name for name, value in kwargs.items() if value is not None]
        if ignored:
            raise ValueError(f"{', '.join(ignored)} cannot be applied to "
                             f"{target}")

    built = f"an already-built {type(backend).__name__}"
    if isinstance(backend, Store):
        _reject_ignored(built, config=config, history=history,
                        recorder=recorder, codec=codec)
        return backend
    if isinstance(backend, GryffCluster):
        _reject_ignored(built, config=config, history=history,
                        recorder=recorder, codec=codec)
        return SimGryffStore(cluster=backend)
    if isinstance(backend, SpannerCluster):
        _reject_ignored(built, config=config, history=history,
                        recorder=recorder, codec=codec)
        return SimSpannerStore(cluster=backend)
    if isinstance(backend, ClusterSpec):
        _reject_ignored("a live cluster spec (protocol knobs live in its "
                        "params)", config=config)
        return LiveStore(backend, history=history, recorder=recorder,
                         codec=codec if codec is not None else "binary")
    from repro.fleet.spec import FLEET_SCHEMA, FleetSpec

    if isinstance(backend, FleetSpec):
        _reject_ignored("a fleet spec (protocol knobs live in its params)",
                        config=config)
        return FleetStore(backend, history=history, recorder=recorder,
                          codec=codec if codec is not None else "binary")
    if isinstance(backend, str):
        if backend.startswith("live:"):
            _reject_ignored("a live cluster spec (protocol knobs live in "
                            "its params)", config=config)
            path = backend[len("live:"):]
            import json

            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            if data.get("schema") == FLEET_SCHEMA:
                return FleetStore(FleetSpec.from_dict(data), history=history,
                                  recorder=recorder,
                                  codec=codec if codec is not None else "binary")
            return LiveStore(ClusterSpec.from_dict(data),
                             history=history, recorder=recorder,
                             codec=codec if codec is not None else "binary")
        if backend in ("sim-gryff", "sim-spanner"):
            if history is not None or recorder is not None or codec is not None:
                raise ValueError(
                    "simulated clusters own their history/recorder and have "
                    "no wire codec; build a cluster yourself to customize "
                    "capture")
            if backend == "sim-gryff":
                return SimGryffStore(config=config)
            return SimSpannerStore(config=config)
    raise UnknownBackendError(
        f"unknown backend spec {backend!r} (expected 'sim-gryff', "
        f"'sim-spanner', 'live:<cluster.json>', or a cluster object)")
