"""The protocol-agnostic client session surface.

A :class:`Session` is one logical end-user context against a deployment —
sim or live, Gryff or Spanner — exposing a single operation vocabulary:

``read`` / ``write`` / ``rmw``
    single-key operations (registers on Gryff, degenerate transactions on
    Spanner);
``txn(read_keys, updates)`` / ``read_only(keys)``
    transactions (native on Spanner; Gryff honors only shapes its register
    protocol can express and raises :class:`UnsupportedOperationError`
    otherwise);
``fence()``
    the real-time fence of §5.1 / §7.1, used by libRSS when a process
    switches services;
``session_token()`` / ``resume(token)``
    an opaque, JSON-serializable capture of the session's causal context,
    generalizing Spanner's ``export_context``/``import_context`` (a minimum
    read timestamp) and Gryff's dependency carstamps.  Tokens travel out of
    band (an RPC to another service, a cookie, a message queue) and are
    adopted with ``resume`` on any session of the same backend family.

All operation methods are generators, driven by the simulation or the live
event pump exactly like the protocol clients they wrap
(``yield from session.read(key)``).
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, FrozenSet, List

from repro.api.errors import InvalidSessionToken, UnsupportedOperationError
from repro.api.levels import ConsistencyLevel

__all__ = ["Session", "encode_token", "decode_token", "TOKEN_SCHEMA"]

TOKEN_SCHEMA = "repro-session/1"


def encode_token(backend: str, context: Any) -> str:
    """Serialize a session context into an opaque token string."""
    return json.dumps({"schema": TOKEN_SCHEMA, "backend": backend,
                       "context": context}, separators=(",", ":"))


def decode_token(token: str, backend: str) -> Any:
    """Parse a token and check it belongs to ``backend``'s family."""
    try:
        data = json.loads(token)
    except (TypeError, ValueError) as exc:
        raise InvalidSessionToken(f"malformed session token: {exc}") from None
    if not isinstance(data, dict) or data.get("schema") != TOKEN_SCHEMA:
        raise InvalidSessionToken(
            f"not a {TOKEN_SCHEMA} token (schema={data.get('schema')!r})"
            if isinstance(data, dict) else "not a session token object")
    if data.get("backend") != backend:
        raise InvalidSessionToken(
            f"token from backend {data.get('backend')!r} cannot resume a "
            f"{backend!r} session")
    return data.get("context")


class Session:
    """Base class for backend session adapters.

    Subclasses wrap a protocol client, set :attr:`backend` (the token
    family), :attr:`capabilities`, and implement the operation surface.
    The wrapped client keeps doing all history/latency bookkeeping through
    its :class:`~repro.core.recording.SessionRecorder` mixin, so adapters
    add no events, no recording, and no timing of their own — sims through
    the facade are bit-identical to sims against the raw clients.
    """

    #: Token family; subclasses override ("gryff" or "spanner").
    backend: str = "abstract"
    #: Operation names this backend can execute (possibly shape-restricted).
    capabilities: FrozenSet[str] = frozenset()

    def __init__(self, client: Any, level: ConsistencyLevel):
        self._client = client
        self.level = level

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def client(self) -> Any:
        """The wrapped protocol client (escape hatch for protocol tests)."""
        return self._client

    @property
    def name(self) -> str:
        """The client/process name operations are recorded under."""
        return self._client.name

    @property
    def site(self) -> str:
        return self._client.site

    @property
    def history(self):
        return self._client.history

    @property
    def recorder(self):
        return self._client.recorder

    def supports(self, capability: str) -> bool:
        return capability in self.capabilities

    def _require(self, capability: str) -> None:
        if capability not in self.capabilities:
            raise UnsupportedOperationError(
                f"{self.backend!r} sessions do not support {capability!r} "
                f"(capabilities: {sorted(self.capabilities)})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} {self.name!r} "
                f"level={self.level.value}>")

    # ------------------------------------------------------------------ #
    # Operation surface (generators; subclasses implement what they can)
    # ------------------------------------------------------------------ #
    def read(self, key: str):
        """Read ``key`` (generator); returns the value."""
        self._require("read")
        raise NotImplementedError

    def write(self, key: str, value: Any):
        """Write ``value`` to ``key`` (generator); returns a backend commit
        token (carstamp on Gryff, commit timestamp on Spanner)."""
        self._require("write")
        raise NotImplementedError

    def rmw(self, key: str, mode: str = "increment", **params):
        """Atomically read-modify-write ``key`` (generator); returns
        ``(old_value, new_value)``.  ``mode`` is one of ``increment``
        (with ``amount``), ``append`` (with ``suffix``), or ``set`` (with
        ``new_value``)."""
        self._require("rmw")
        raise NotImplementedError

    def txn(self, read_keys: List[str],
            updates: Callable[[Dict[str, Any]], Dict[str, Any]]):
        """Execute a read-write transaction (generator).

        ``updates`` maps the read values to the write set.  Returns
        ``(read_values, writes, commit_token)``.
        """
        self._require("txn")
        raise NotImplementedError

    def read_only(self, keys: List[str]):
        """Execute a read-only transaction (generator); returns key → value."""
        self._require("read_only")
        raise NotImplementedError

    def fence(self):
        """Real-time fence (generator): after it returns, every future read
        anywhere observes state at least as recent as this session's
        causal context."""
        self._require("fence")
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Session context
    # ------------------------------------------------------------------ #
    def session_token(self) -> str:
        """Capture the session's causal context as an opaque token."""
        return encode_token(self.backend, self._export_context())

    def resume(self, token: str) -> None:
        """Adopt a causal context captured by :meth:`session_token` on any
        session of the same backend family."""
        context = decode_token(token, self.backend)
        try:
            self._import_context(context)
        except InvalidSessionToken:
            raise
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            # Tokens travel out of band; a schema-valid token with a
            # malformed context is still an invalid token, not a crash.
            raise InvalidSessionToken(
                f"malformed session context: {exc!r}") from None

    def new_session(self) -> None:
        """Start a fresh end-user context on this client (a no-op for
        backends whose clients carry no cross-operation session state)."""

    def _export_context(self) -> Any:
        raise NotImplementedError

    def _import_context(self, context: Any) -> None:
        raise NotImplementedError
