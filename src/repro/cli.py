"""Command-line interface for the reproduction.

Every table and figure of the paper can be regenerated from the command line:

.. code-block:: console

   $ python -m repro table1
   $ python -m repro appendix-a
   $ python -m repro figure5 --skew 0.7 --duration-ms 30000
   $ python -m repro figure6 --clients 4 16 48
   $ python -m repro figure7 --conflict-rate 0.10
   $ python -m repro overhead
   $ python -m repro anomalies

Each subcommand prints the corresponding plain-text table; ``--json FILE``
additionally writes the raw rows to a JSON file so results can be archived or
plotted elsewhere.

The live cluster runtime (real asyncio TCP instead of the simulator) is
driven by five further subcommands:

.. code-block:: console

   $ python -m repro init-config --protocol gryff-rsc --replicas 3 --out cluster.json
   $ python -m repro serve --config cluster.json --metrics-port 9100
   $ python -m repro load --config cluster.json --clients 4 --duration-ms 2000 \
       --level rsc --trace trace.jsonl
   $ python -m repro live-check trace.jsonl
   $ python -m repro monitor trace.jsonl --metrics-port 9101   # correctness sidecar

``serve --metrics-port`` exposes each node's counters at ``/metrics``
(Prometheus text format); ``monitor`` tails a growing trace, validates
every quiescent epoch, and exits non-zero with a structured alert record
on the first violation outside a declared fault window.

``load`` drives the cluster through the unified client API
(:mod:`repro.api`): ``--level`` declares the consistency level sessions are
opened at — capability negotiation fails fast (exit 2) when the cluster's
protocol cannot honor it, and the inline checker validates the declared
level's model.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
from typing import Any, Dict, List, Optional

from repro.bench.anomalies import (
    spanner_completed_write_misses,
    spanner_in_flight_miss_windows,
)
from repro.bench.appendix_a import appendix_a_report
from repro.bench.gryff_experiments import figure7_experiment, overhead_experiment
from repro.bench.perfsuite import attach_baseline, perf_report_rows, run_perf_suite
from repro.bench.reporting import format_table, write_json_report
from repro.bench.spanner_experiments import (
    figure5_experiment,
    figure6_experiment,
    run_retwis_experiment,
)
from repro.bench.table1 import table1_report
from repro.spanner.config import Variant

__all__ = ["main", "build_parser"]


def _write_json(path: Optional[str], payload: Any) -> None:
    if not path:
        return
    write_json_report(path, payload)


# --------------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------------- #
def _sweep_kwargs(args: argparse.Namespace) -> Dict[str, Any]:
    """The orchestration arguments shared by every sweep subcommand."""
    return {
        "jobs": args.jobs,
        "resume": args.resume,
        "cache_dir": args.cache_dir,
    }


def cmd_table1(args: argparse.Namespace) -> int:
    report = table1_report(**_sweep_kwargs(args))
    print(report["text"])
    _write_json(args.json, report["computed"])
    return 0 if all(report["matches"].values()) else 1


def cmd_appendix_a(args: argparse.Namespace) -> int:
    report = appendix_a_report(**_sweep_kwargs(args))
    print(report["text"])
    _write_json(args.json, report["details"])
    return 0 if not report["mismatches"] else 1


def cmd_figure5(args: argparse.Namespace) -> int:
    outcome = figure5_experiment(
        args.skew,
        duration_ms=args.duration_ms,
        clients_per_site=args.clients_per_site,
        session_arrival_rate_per_sec=args.arrival_rate,
        num_keys=args.num_keys,
        seed=args.seed,
        **_sweep_kwargs(args),
    )
    print(format_table(
        ["percentile", "Spanner (ms)", "Spanner-RSS (ms)", "reduction (%)"],
        [[f"p{row['fraction'] * 100:g}", row["spanner_ms"], row["spanner_rss_ms"],
          row["reduction_pct"]] for row in outcome["rows"]],
        title=f"Figure 5 — Retwis read-only tail latency, skew {args.skew}",
    ))
    _write_json(args.json, outcome["rows"])
    return 0


def cmd_figure6(args: argparse.Namespace) -> int:
    rows = figure6_experiment(client_counts=tuple(args.clients),
                              duration_ms=args.duration_ms,
                              **_sweep_kwargs(args))
    print(format_table(
        ["clients", "Spanner tput", "Spanner p50 (ms)", "Spanner-RSS tput",
         "Spanner-RSS p50 (ms)"],
        [[row["clients"], row["spanner_throughput"], row["spanner_overall_p50_ms"],
          row["spanner_rss_throughput"], row["spanner_rss_overall_p50_ms"]]
         for row in rows],
        title="Figure 6 — throughput vs median latency under high load",
    ))
    _write_json(args.json, rows)
    return 0


def cmd_figure7(args: argparse.Namespace) -> int:
    rows = figure7_experiment(
        args.conflict_rate, write_ratios=tuple(args.write_ratios),
        duration_ms=args.duration_ms, seed=args.seed,
        **_sweep_kwargs(args),
    )
    print(format_table(
        ["write ratio", "Gryff p99 (ms)", "Gryff-RSC p99 (ms)", "reduction (%)"],
        [[row["write_ratio"], row["gryff_p99_ms"], row["gryff_rsc_p99_ms"],
          row["reduction_pct"]] for row in rows],
        title=f"Figure 7 — YCSB p99 read latency, {args.conflict_rate * 100:g}% conflicts",
    ))
    _write_json(args.json, rows)
    return 0


def cmd_overhead(args: argparse.Namespace) -> int:
    rows = overhead_experiment(duration_ms=args.duration_ms,
                               **_sweep_kwargs(args))
    print(format_table(
        ["write ratio", "Gryff tput", "Gryff p50 (ms)", "Gryff-RSC tput",
         "Gryff-RSC p50 (ms)", "tput delta (%)"],
        [[row["write_ratio"], row["gryff_throughput"], row["gryff_p50_ms"],
          row["gryff_rsc_throughput"], row["gryff_rsc_p50_ms"],
          row["throughput_delta_pct"]] for row in rows],
        title="§7.4 — Gryff-RSC overhead",
    ))
    _write_json(args.json, rows)
    return 0


def cmd_anomalies(args: argparse.Namespace) -> int:
    result = run_retwis_experiment(
        Variant.SPANNER_RSS, zipf_skew=args.skew, duration_ms=args.duration_ms,
        clients_per_site=args.clients_per_site,
        session_arrival_rate_per_sec=args.arrival_rate, num_keys=args.num_keys,
        seed=args.seed, record_history=True, check_consistency=True,
    )
    report = spanner_in_flight_miss_windows(result.history)
    misses = spanner_completed_write_misses(result.history)
    rows = report.summary_rows() + [
        ["completed conflicting writes missed (A2)", misses],
        ["history satisfies RSS", result.consistency_ok],
    ]
    print(format_table(["metric", "value"], rows,
                       title="Anomaly windows under Spanner-RSS"))
    _write_json(args.json, {"max_window_ms": report.max_window_ms,
                            "in_flight_misses": report.misses,
                            "completed_misses": misses})
    return 0 if (misses == 0 and bool(result.consistency_ok)) else 1


def cmd_perf(args: argparse.Namespace) -> int:
    payload = attach_baseline(run_perf_suite(args.scale, jobs=args.jobs),
                              baseline_path=args.baseline)
    print(format_table(
        ["metric", "value"], perf_report_rows(payload),
        title=f"Performance suite — scale {args.scale}",
    ))
    if args.json:
        write_json_report(args.json, payload)
    return 0


# --------------------------------------------------------------------------- #
# Live cluster subcommands
# --------------------------------------------------------------------------- #
def _load_topology(path: str):
    """Load a topology file: a ``repro-cluster/1`` :class:`ClusterSpec` or a
    ``repro-fleet/1`` :class:`FleetSpec`, dispatched on the schema header."""
    import json

    from repro.fleet.spec import FLEET_SCHEMA, FleetSpec
    from repro.net.spec import ClusterSpec

    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("schema") == FLEET_SCHEMA:
        return FleetSpec.from_dict(data)
    return ClusterSpec.from_dict(data)


def cmd_init_config(args: argparse.Namespace) -> int:
    from repro.net.spec import ClusterSpec

    if args.groups > 1:
        from repro.fleet.spec import FleetSpec

        is_gryff = args.protocol in ("gryff", "gryff-rsc")
        params = None if is_gryff else {"truetime_epsilon_ms": args.epsilon_ms}
        spec = FleetSpec.build(
            protocol=args.protocol, num_groups=args.groups,
            nodes_per_group=args.replicas if is_gryff else args.shards,
            host=args.host, base_port=args.base_port,
            placement_seed=args.placement_seed, params=params)
        spec.save(args.out)
        print(f"wrote {args.out}: {args.protocol} fleet with "
              f"{args.groups} group(s) x {spec.group_size} node(s) on "
              f"{args.host}:{args.base_port}+")
        return 0
    if args.protocol in ("gryff", "gryff-rsc"):
        spec = ClusterSpec.gryff(num_replicas=args.replicas, host=args.host,
                                 base_port=args.base_port, variant=args.protocol)
    else:
        spec = ClusterSpec.spanner(num_shards=args.shards, host=args.host,
                                   base_port=args.base_port, variant=args.protocol,
                                   params={"truetime_epsilon_ms": args.epsilon_ms})
    spec.save(args.out)
    print(f"wrote {args.out}: {args.protocol} with "
          f"{len(spec.nodes)} node(s) on {args.host}:{args.base_port}+")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.fleet.spec import FleetSpec
    from repro.net.cluster import serve_forever

    topology = _load_topology(args.config)
    if isinstance(topology, FleetSpec):
        host_nodes = None
        if args.group:
            unknown = [gid for gid in args.group
                       if gid not in topology.groups]
            if unknown:
                print(f"unknown group(s) {unknown}; this fleet has "
                      f"{topology.group_ids()}", file=sys.stderr)
                return 2
            host_nodes = [name for gid in args.group
                          for name in topology.group_names(gid)]
        if args.node:
            host_nodes = [args.node]
        return asyncio.run(serve_forever(
            topology.merged_spec(), host_nodes, wal_dir=args.wal_dir,
            metrics_port=args.metrics_port, codec=args.codec,
            node_configs=topology.node_configs()))
    if args.group:
        print("--group requires a fleet topology "
              "(repro init-config --groups N)", file=sys.stderr)
        return 2
    host_nodes = [args.node] if args.node else None
    return asyncio.run(serve_forever(topology, host_nodes,
                                     wal_dir=args.wal_dir,
                                     metrics_port=args.metrics_port,
                                     codec=args.codec))


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import all_scenarios, get_scenario, run_scenario

    if args.list:
        rows = [[s.name, s.protocol,
                 "clean" if s.expect_clean else "windowed", s.description]
                for s in all_scenarios().values()]
        rows.append(["reshard-crash", "gryff-rsc", "clean",
                     "kill -9 the migration controller mid-copy, recover "
                     "the placement from its journal, finish the reshard"])
        print(format_table(["scenario", "protocol", "oracle", "description"],
                           rows, title="Chaos scenarios"))
        return 0
    if not args.scenario:
        print("--scenario NAME is required (or --list)", file=sys.stderr)
        return 2
    if args.scenario == "reshard-crash":
        # The reshard scenario reconfigures a *fleet* mid-load; it has its
        # own runner (live only — the placement is client-process state).
        from repro.chaos.reshard import run_reshard_crash

        report = run_reshard_crash(trace_dir=args.trace_dir)
        print(report.describe())
        _write_json(args.json, [report.to_dict()])
        return 0 if report.ok else 1
    try:
        scenario = get_scenario(args.scenario)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    backends = ["sim", "live"] if args.backend == "both" else [args.backend]
    reports = []
    for backend in backends:
        # Each backend gets its own subdirectory so `--backend both` does
        # not overwrite the first trace with the second.
        trace_dir = args.trace_dir and (
            args.trace_dir if len(backends) == 1
            else os.path.join(args.trace_dir, backend))
        report = run_scenario(scenario, backend=backend,
                              trace_dir=trace_dir)
        reports.append(report)
        print(report.describe())
    _write_json(args.json, [report.to_dict() for report in reports])
    return 0 if all(report.ok for report in reports) else 1


def cmd_load(args: argparse.Namespace) -> int:
    from repro.api.errors import CapabilityError
    from repro.net.load import load_main

    spec = _load_topology(args.config)
    migrations = None
    if args.migrate:
        from repro.fleet.migration import MigrationPlan

        try:
            migrations = [MigrationPlan.parse(text) for text in args.migrate]
        except ValueError as exc:
            print(f"cannot run load: {exc}", file=sys.stderr)
            return 2
    on_verdict = (lambda verdict: print(verdict.describe(), flush=True)) \
        if args.check_inline else None
    metrics = None
    if args.json or args.metrics_port is not None:
        from repro.obs.registry import MetricsRegistry

        metrics = MetricsRegistry()
    try:
        summary = load_main(
            spec,
            num_clients=args.clients,
            duration_ms=None if args.ops_per_client else args.duration_ms,
            ops_per_client=args.ops_per_client,
            workload=args.workload,
            write_ratio=args.write_ratio,
            conflict_rate=args.conflict_rate,
            num_keys=args.num_keys,
            seed=args.seed,
            trace_path=args.trace,
            client_prefix=args.client_prefix,
            think_time_ms=args.think_time_ms,
            level=args.level,
            check_inline=args.check_inline,
            check_min_epoch_ops=args.min_epoch_ops,
            on_verdict=on_verdict,
            trace_flush_every=args.trace_flush_every,
            trace_fsync=args.trace_fsync,
            trace_rotate_bytes=args.trace_rotate_bytes,
            metrics=metrics,
            metrics_port=args.metrics_port,
            codec=args.codec,
            rate=args.rate,
            open_loop=args.open_loop,
            arrival=args.arrival,
            migrations=migrations,
            migration_journal=args.migration_journal,
        )
    except (CapabilityError, ValueError) as exc:
        print(f"cannot run load: {exc}", file=sys.stderr)
        return 2
    rows = [["declared level", summary["level"]],
            ["wire codec", summary["codec"]],
            ["ops completed", summary["ops"]],
            ["duration (ms)", round(summary["duration_ms"], 1)],
            ["throughput (ops/s)", round(summary["throughput_ops_per_s"], 1)]]
    open_loop = summary.get("open_loop")
    if open_loop:
        rows.append(["requested rate (ops/s)",
                     round(open_loop["requested_rate_per_s"], 1)])
        achieved = open_loop["achieved_rate_per_s"]
        rows.append(["achieved rate (ops/s)",
                     round(achieved, 1) if achieved is not None else "n/a"])
        rows.append(["arrival schedule", open_loop["arrival"]])
        rows.append(["backlog peak", open_loop["backlog_peak"]])
        if open_loop["abandoned"]:
            rows.append(["abandoned arrivals", open_loop["abandoned"]])
    for category, percentiles in sorted(summary["categories"].items()):
        label = f"{category} (response)" if open_loop else category
        rows.append([f"{label} p50 (ms)", round(percentiles["p50"], 3)])
        rows.append([f"{label} p99 (ms)", round(percentiles["p99"], 3)])
    migration = summary.get("migration")
    if migration:
        rows.append(["migrations", len(migration["migrations"])])
        rows.append(["placement epoch", migration["placement_epoch"]])
        for entry in migration["migrations"]:
            rows.append([f"{entry['mig_id']} ({entry['plan']})",
                         f"pause {entry['pause_ms']:.1f} ms, "
                         f"{entry['keys_copied']} key(s) copied"])
        rows.append(["migration crashed", migration["crashed"]])
    check = summary.get("check")
    if check:
        rows.append(["inline check", "SATISFIED" if check["satisfied"]
                     else f"VIOLATED ({check['first_violation']})"])
        rows.append(["inline epochs", check["epochs"]])
        rows.append(["inline peak epoch ops", check["max_segment_ops"]])
    print(format_table(["metric", "value"], rows,
                       title=f"Live load — {summary['protocol']} / "
                             f"{summary['workload']}"))
    if args.trace:
        print(f"trace written to {args.trace}")
    _write_json(args.json, summary)
    if summary["ops"] <= 0:
        return 1
    if check and not check["satisfied"]:
        return 1
    if migration and migration["crashed"]:
        return 1
    return 0


def cmd_monitor(args: argparse.Namespace) -> int:
    from repro.obs.monitor import run_monitor

    windows: List[Any] = []
    if args.scenario:
        from repro.chaos import get_scenario

        try:
            scenario = get_scenario(args.scenario)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        windows.extend(scenario.fault_windows())
    for spec in args.fault_window or []:
        try:
            start_text, _, end_text = spec.partition(":")
            windows.append((float(start_text), float(end_text)))
        except ValueError:
            print(f"bad --fault-window {spec!r}; expected START_MS:END_MS",
                  file=sys.stderr)
            return 2
    try:
        report = run_monitor(
            args.trace,
            protocol=args.protocol,
            model=args.model,
            min_epoch_ops=args.min_epoch_ops,
            poll_interval=args.poll_interval,
            max_poll_interval=args.max_poll_interval,
            idle_timeout=args.idle_timeout,
            fault_windows=windows,
            metrics_port=args.metrics_port,
            alert_path=args.alert_file,
            on_verdict=lambda verdict: print(verdict.describe(), flush=True),
        )
    except ValueError as exc:
        print(f"cannot monitor trace: {exc}", file=sys.stderr)
        return 2
    if report.exit_code == 2:
        print(f"no usable records at {report.trace} (missing protocol "
              f"header?)", file=sys.stderr)
        return 2
    verdict = "CLEAN" if report.alert is None else (
        f"ALERT (epoch {report.alert['epoch']['index']}: "
        f"{report.alert['epoch']['reason']})")
    print(f"monitor {report.trace}: {report.ops_checked} ops in "
          f"{report.epochs} epoch(s), {len(report.violations)} violation(s) "
          f"({len(report.violations_outside_windows)} outside fault windows) "
          f"— {report.model}: {verdict}"
          + (" [interrupted]" if report.interrupted else ""))
    _write_json(args.json, report.to_dict())
    return report.exit_code


def _declared_model(meta: Dict[str, Any]) -> Optional[str]:
    """The checker model for the consistency level the load declared when
    it captured the trace (``repro load --level``), if recorded."""
    level = meta.get("level")
    if not level:
        return None
    from repro.api.levels import ConsistencyLevel

    try:
        return ConsistencyLevel.parse(level).checker_model
    except ValueError:
        return None


def _live_check_follow(args: argparse.Namespace, protocol: Optional[str]) -> int:
    """Streaming (epoch-windowed) trace checking for ``live-check --follow``."""
    import itertools

    from repro.net.check import (
        check_record_stream,
        default_model_for,
        streaming_checker_for,
    )
    from repro.net.recorder import follow_trace_records, merge_record_streams

    traces = args.trace
    label = traces[0] if len(traces) == 1 else ",".join(traces)
    checker = None
    interrupted = False
    try:
        if len(traces) == 1:
            records = iter(follow_trace_records(
                traces[0], poll_interval=args.poll_interval,
                idle_timeout=args.idle_timeout))
        else:
            records = iter(merge_record_streams(
                traces, poll_interval=args.poll_interval,
                idle_timeout=args.idle_timeout))
        # Peek at the leading record to learn the protocol from the trace's
        # meta header, then hand the rest to the shared record dispatcher.
        buffered: List[Dict[str, Any]] = []
        first = next(records, None)
        if first is not None:
            declared = None
            if first.get("type") == "meta":
                protocol = protocol or first.get("protocol")
                declared = _declared_model(first)
            buffered.append(first)
            if not protocol:
                print("trace has no protocol header; pass --protocol",
                      file=sys.stderr)
                return 2
            model = args.model or declared or default_model_for(protocol)
            checker = streaming_checker_for(
                protocol, model, min_epoch_ops=args.min_epoch_ops,
                on_verdict=lambda verdict: print(verdict.describe(),
                                                 flush=True))
            check_record_stream(itertools.chain(buffered, records), checker)
    except KeyboardInterrupt:
        interrupted = True
    except ValueError as exc:
        print(f"cannot check trace: {exc}", file=sys.stderr)
        return 2
    if checker is None:
        print(f"no records found at {label}", file=sys.stderr)
        return 2
    report = checker.close()
    verdict = "SATISFIED" if report.satisfied else (
        f"VIOLATED ({report.first_violation.describe()})")
    print(f"live-check --follow {label}: {report.ops_checked} ops in "
          f"{report.epochs} epoch(s), peak epoch {report.max_segment_ops} "
          f"ops — {report.model}: {verdict}"
          + (" [interrupted]" if interrupted else ""))
    _write_json(args.json, {
        "trace": label,
        "protocol": protocol,
        "model": report.model,
        "streaming": True,
        "operations": report.ops_checked,
        "epochs": report.epochs,
        "max_segment_ops": report.max_segment_ops,
        "satisfied": report.satisfied,
        "first_violation": (report.first_violation.describe()
                            if report.first_violation else None),
        "verdicts": [verdict.describe() for verdict in report.verdicts],
    })
    return 0 if report.satisfied else 1


def cmd_live_check(args: argparse.Namespace) -> int:
    from repro.net.check import check_trace, default_model_for
    from repro.net.recorder import read_merged_traces, read_trace

    traces = args.trace
    label = traces[0] if len(traces) == 1 else ",".join(traces)
    if args.follow:
        return _live_check_follow(args, args.protocol)
    try:
        if len(traces) == 1:
            meta, history = read_trace(traces[0])
        else:
            meta, history = read_merged_traces(traces)
    except FileNotFoundError as exc:
        print(f"cannot check trace: {exc}", file=sys.stderr)
        return 2
    protocol = args.protocol or meta.get("protocol")
    if not protocol:
        print("trace has no protocol header; pass --protocol", file=sys.stderr)
        return 2
    try:
        # Precedence: explicit --model, then the level the load declared
        # when capturing the trace, then the protocol's native model.
        model = args.model or _declared_model(meta) or default_model_for(protocol)
    except ValueError as exc:
        print(f"cannot check trace: {exc}", file=sys.stderr)
        return 2
    result = check_trace(history, protocol, model)
    payload = {
        "trace": label,
        "protocol": protocol,
        "model": model,
        "operations": len(history),
        "complete": len(history.complete()),
        "processes": len(history.processes()),
        "satisfied": bool(result),
        "reason": result.reason,
    }
    verdict = "SATISFIED" if result else f"VIOLATED ({result.reason})"
    print(f"live-check {label}: {len(history)} ops from "
          f"{payload['processes']} process(es) — {model}: {verdict}")
    _write_json(args.json, payload)
    return 0 if result else 1


# --------------------------------------------------------------------------- #
# Argument parsing
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of the RSS/RSC paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--json", help="also write raw rows to this JSON file")
        sub.add_argument("--seed", type=int, default=3)

    def add_sweep(sub: argparse.ArgumentParser,
                  default_jobs: Optional[int] = None) -> None:
        default_help = ("all cores" if default_jobs is None
                        else str(default_jobs))
        sub.add_argument(
            "--jobs", type=int, default=default_jobs,
            help=f"worker processes for the trial grid (default: "
                 f"{default_help}; 1 = serial, bit-identical output)")
        sub.add_argument(
            "--resume", action="store_true",
            help="reuse cached trial results and cache new ones, so an "
                 "interrupted sweep continues where it stopped")
        sub.add_argument(
            "--cache-dir",
            help="trial-result cache location (default: $REPRO_CACHE_DIR "
                 "or .repro_cache); implies --resume")

    table1 = subparsers.add_parser("table1", help="Table 1 (invariants/anomalies)")
    add_common(table1)
    add_sweep(table1, default_jobs=1)
    table1.set_defaults(func=cmd_table1)

    appendix = subparsers.add_parser("appendix-a", help="Appendix A model comparison")
    add_common(appendix)
    add_sweep(appendix, default_jobs=1)
    appendix.set_defaults(func=cmd_appendix_a)

    figure5 = subparsers.add_parser("figure5", help="Figure 5 (Spanner RO tail latency)")
    add_common(figure5)
    add_sweep(figure5)
    figure5.add_argument("--skew", type=float, default=0.7)
    figure5.add_argument("--duration-ms", type=float, default=30_000.0)
    figure5.add_argument("--clients-per-site", type=int, default=6)
    figure5.add_argument("--arrival-rate", type=float, default=2.0)
    figure5.add_argument("--num-keys", type=int, default=2_000)
    figure5.set_defaults(func=cmd_figure5)

    figure6 = subparsers.add_parser("figure6", help="Figure 6 (throughput vs latency)")
    add_common(figure6)
    add_sweep(figure6)
    figure6.add_argument("--clients", type=int, nargs="+", default=[4, 16, 48])
    figure6.add_argument("--duration-ms", type=float, default=1_000.0)
    figure6.set_defaults(func=cmd_figure6)

    figure7 = subparsers.add_parser("figure7", help="Figure 7 (Gryff p99 read latency)")
    add_common(figure7)
    add_sweep(figure7)
    figure7.add_argument("--conflict-rate", type=float, default=0.10)
    figure7.add_argument("--write-ratios", type=float, nargs="+",
                         default=[0.1, 0.3, 0.5, 0.7, 0.9])
    figure7.add_argument("--duration-ms", type=float, default=30_000.0)
    figure7.set_defaults(func=cmd_figure7)

    overhead = subparsers.add_parser("overhead", help="§7.4 (Gryff-RSC overhead)")
    add_common(overhead)
    add_sweep(overhead)
    overhead.add_argument("--duration-ms", type=float, default=2_000.0)
    overhead.set_defaults(func=cmd_overhead)

    anomalies = subparsers.add_parser("anomalies",
                                      help="extension: anomaly-window measurement")
    add_common(anomalies)
    anomalies.add_argument("--skew", type=float, default=0.9)
    anomalies.add_argument("--duration-ms", type=float, default=10_000.0)
    anomalies.add_argument("--clients-per-site", type=int, default=3)
    anomalies.add_argument("--arrival-rate", type=float, default=2.0)
    anomalies.add_argument("--num-keys", type=int, default=500)
    anomalies.set_defaults(func=cmd_anomalies)

    perf = subparsers.add_parser(
        "perf", help="checker/sim hot-path performance suite (BENCH_perf.json)")
    perf.add_argument("--scale", choices=["quick", "full"], default="quick")
    perf.add_argument("--jobs", type=int, default=None,
                      help="worker processes for the sweep wall-clock section "
                           "(default: all cores)")
    perf.add_argument("--json", help="write the perf payload to this JSON file")
    perf.add_argument("--baseline",
                      help="seed baseline JSON to compare against "
                           "(default: benchmarks/BENCH_seed_baseline.json)")
    perf.set_defaults(func=cmd_perf)

    init_config = subparsers.add_parser(
        "init-config", help="write a live-cluster topology file")
    init_config.add_argument("--protocol", default="gryff-rsc",
                             choices=["gryff", "gryff-rsc", "spanner", "spanner-rss"])
    init_config.add_argument("--replicas", type=int, default=3,
                             help="Gryff replica count (default 3)")
    init_config.add_argument("--shards", type=int, default=2,
                             help="Spanner shard count (default 2)")
    init_config.add_argument("--host", default="127.0.0.1")
    init_config.add_argument("--base-port", type=int, default=7400,
                             help="first listen port; node i uses base+i")
    init_config.add_argument("--epsilon-ms", type=float, default=10.0,
                             help="TrueTime uncertainty for Spanner clusters")
    init_config.add_argument("--groups", type=int, default=1,
                             help="shard groups; >1 writes a repro-fleet/1 "
                                  "fleet topology (N groups of --replicas/"
                                  "--shards nodes behind a consistent-hash "
                                  "placement map)")
    init_config.add_argument("--placement-seed", type=int, default=0,
                             help="seed of the fleet's consistent-hash ring "
                                  "(deterministic placement; default 0)")
    init_config.add_argument("--out", default="cluster.json")
    init_config.set_defaults(func=cmd_init_config)

    serve = subparsers.add_parser(
        "serve", help="run live cluster server nodes over asyncio TCP")
    serve.add_argument("--config", required=True,
                       help="cluster or fleet spec JSON")
    serve.add_argument("--node",
                       help="host only this node (one process per node); "
                            "default: every server node as asyncio tasks")
    serve.add_argument("--group", action="append",
                       help="host every node of this shard group (fleet "
                            "topologies; repeatable — one process can serve "
                            "any subset of groups)")
    serve.add_argument("--wal-dir",
                       help="write-ahead-log directory: hosted nodes log "
                            "durably to <dir>/<node>.wal and recover from "
                            "it on restart")
    serve.add_argument("--metrics-port", type=int, default=None,
                       help="serve Prometheus metrics for this process at "
                            "http://127.0.0.1:PORT/metrics (0 = ephemeral "
                            "port, announced in the ready message)")
    serve.add_argument("--codec", default="binary",
                       choices=["binary", "json"],
                       help="wire format for connections this process "
                            "initiates (binary = wire v2, the default; "
                            "json = the nc-able v1 debug format); inbound "
                            "connections are served in whichever codec the "
                            "peer speaks")
    serve.set_defaults(func=cmd_serve)

    chaos = subparsers.add_parser(
        "chaos", help="fault-injection scenarios with checker-verified "
                      "guarantees (crash/partition/skew + WAL recovery)")
    chaos.add_argument("--scenario", help="scenario name (see --list)")
    chaos.add_argument("--backend", default="sim",
                       choices=["sim", "live", "both"],
                       help="simulated cluster, live asyncio TCP cluster, "
                            "or both in sequence")
    chaos.add_argument("--list", action="store_true",
                       help="list the scenario catalog and exit")
    chaos.add_argument("--trace-dir",
                       help="keep the JSONL trace and per-node WALs here "
                            "(default: a fresh temporary directory)")
    chaos.add_argument("--json", help="also write the report(s) to this "
                                      "JSON file")
    chaos.set_defaults(func=cmd_chaos)

    load = subparsers.add_parser(
        "load", help="drive a live cluster and capture a history trace")
    load.add_argument("--config", required=True,
                      help="cluster or fleet spec JSON")
    load.add_argument("--clients", type=int, default=4)
    load.add_argument("--duration-ms", type=float, default=2_000.0)
    load.add_argument("--ops-per-client", type=int, default=None,
                      help="stop after N ops per client instead of a duration")
    load.add_argument("--workload", default="ycsb", choices=["ycsb", "retwis"])
    load.add_argument("--write-ratio", type=float, default=0.5)
    load.add_argument("--conflict-rate", type=float, default=0.10)
    load.add_argument("--num-keys", type=int, default=1_000)
    load.add_argument("--seed", type=int, default=1)
    load.add_argument("--trace", help="write the live history to this JSONL file")
    load.add_argument("--level",
                      choices=["rsc", "rss", "lin", "strict_ser"],
                      help="declared consistency level for the sessions "
                           "(default: the protocol's native level); "
                           "negotiation fails fast if the cluster cannot "
                           "honor it, and --check-inline validates this "
                           "level's model")
    load.add_argument("--client-prefix", default="client",
                      help="client name prefix (make unique across "
                           "concurrent load processes)")
    load.add_argument("--think-time-ms", type=float, default=0.0,
                      help="client think time between operations; closed "
                           "loops with zero think time never quiesce, so "
                           "give the streaming checker a few ms of gaps "
                           "for epoch cuts to form")
    load.add_argument("--check-inline", action="store_true",
                      help="validate each quiescent epoch with the streaming "
                           "checker while the load runs (exit 1 on violation)")
    load.add_argument("--min-epoch-ops", type=int, default=64,
                      help="cut an epoch at the first quiescent frontier "
                           "with at least this many ops (default 64)")
    load.add_argument("--trace-flush-every", type=int, default=1,
                      help="flush the trace every N records (default 1)")
    load.add_argument("--trace-fsync", action="store_true",
                      help="fsync the trace on every flush")
    load.add_argument("--trace-rotate-bytes", type=int, default=None,
                      help="rotate the trace into trace-0001.jsonl, ... "
                           "once a file reaches this size")
    load.add_argument("--metrics-port", type=int, default=None,
                      help="serve the load generator's metrics at "
                           "http://127.0.0.1:PORT/metrics while it runs "
                           "(0 = ephemeral port)")
    load.add_argument("--json", help="also write the summary to this JSON "
                                     "file (includes a metrics section)")
    load.add_argument("--codec", default="binary",
                      choices=["binary", "json"],
                      help="wire format to dial the cluster with (binary = "
                           "wire v2, the default; json = the nc-able v1 "
                           "debug format — a v2 server accepts either)")
    load.add_argument("--migrate", action="append",
                      metavar="AT_MS:KIND:RANGE:DST",
                      help="run an online key-range migration at AT_MS into "
                           "the run (fleet topologies only; repeatable). "
                           "KIND is split (RANGE = a fraction inside the "
                           "range to bisect), merge (RANGE = a fraction "
                           "inside the range to absorb), or move (RANGE = "
                           "LO-HI point fractions); DST is the receiving "
                           "group, e.g. 1000:split:0.5:g1")
    load.add_argument("--migration-journal",
                      help="WAL-journal migrations to this file so a "
                           "crashed controller's placement can be "
                           "recovered (repro-migration/1)")
    load.add_argument("--rate", type=float, default=None,
                      help="open-loop arrival rate in ops/s: arrivals keep "
                           "coming at this rate regardless of completions, "
                           "and latency is measured from each arrival's "
                           "intended send time (coordinated-omission-"
                           "correct); --clients sizes the session pool")
    load.add_argument("--open-loop", action="store_true",
                      help="require the open-loop driver (implied by "
                           "--rate; errors out if --rate is missing)")
    load.add_argument("--arrival", default="poisson",
                      choices=["poisson", "fixed"],
                      help="open-loop arrival schedule: seeded Poisson "
                           "(default) or deterministic fixed spacing")
    load.set_defaults(func=cmd_load)

    live_check = subparsers.add_parser(
        "live-check", help="replay a captured trace through the checkers")
    live_check.add_argument("trace", nargs="+",
                            help="JSONL trace (or rotated set base "
                                          "path) from `repro load`")
    live_check.add_argument("--protocol",
                            choices=["gryff", "gryff-rsc", "spanner", "spanner-rss"],
                            help="override the trace's protocol header")
    live_check.add_argument("--model",
                            help="override the protocol's default model")
    live_check.add_argument("--follow", action="store_true",
                            help="stream the trace as it is written, "
                                 "checking one quiescent epoch at a time "
                                 "with bounded memory")
    live_check.add_argument("--min-epoch-ops", type=int, default=64,
                            help="epoch size floor for --follow (default 64)")
    live_check.add_argument("--idle-timeout", type=float, default=None,
                            help="stop --follow after this many seconds "
                                 "without new records (default: follow until "
                                 "interrupted; 0 = read what exists and stop)")
    live_check.add_argument("--poll-interval", type=float, default=0.2,
                            help="--follow poll interval in seconds")
    live_check.add_argument("--json", help="also write the verdict to this JSON file")
    live_check.set_defaults(func=cmd_live_check)

    monitor = subparsers.add_parser(
        "monitor", help="correctness sidecar: tail a live trace, check every "
                        "epoch, alert + exit non-zero on an out-of-window "
                        "violation")
    monitor.add_argument("trace", nargs="+",
                         help="JSONL trace (or rotated set base "
                                       "path) being written by `repro load`")
    monitor.add_argument("--protocol",
                         choices=["gryff", "gryff-rsc", "spanner", "spanner-rss"],
                         help="override the trace's protocol header")
    monitor.add_argument("--model",
                         help="override the trace's declared checker model")
    monitor.add_argument("--min-epoch-ops", type=int, default=64,
                         help="epoch size floor (default 64)")
    monitor.add_argument("--poll-interval", type=float, default=0.2,
                         help="initial poll interval in seconds (default 0.2)")
    monitor.add_argument("--max-poll-interval", type=float, default=2.0,
                         help="idle polls back off exponentially up to this "
                              "interval (default 2.0)")
    monitor.add_argument("--idle-timeout", type=float, default=None,
                         help="stop after this many seconds without new "
                              "records (default: follow until interrupted; "
                              "0 = read what exists and stop)")
    monitor.add_argument("--metrics-port", type=int, default=None,
                         help="serve the monitor's own metrics at "
                              "http://127.0.0.1:PORT/metrics (0 = ephemeral)")
    monitor.add_argument("--scenario",
                         help="chaos scenario whose fault windows excuse "
                              "violations (see `repro chaos --list`)")
    monitor.add_argument("--fault-window", action="append",
                         metavar="START_MS:END_MS",
                         help="trace-relative fault window; violations whose "
                              "epochs overlap one are expected, not alerts "
                              "(repeatable, adds to --scenario windows)")
    monitor.add_argument("--alert-file",
                         help="append the structured alert record to this "
                              "JSONL file (also printed to stderr)")
    monitor.add_argument("--json", help="also write the monitor report to "
                                        "this JSON file")
    monitor.set_defaults(func=cmd_monitor)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # Sweeps flush their resume cache before this propagates (see
        # ParallelRunner); exit with the conventional SIGINT code and no
        # traceback.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
