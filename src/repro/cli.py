"""Command-line interface for the reproduction.

Every table and figure of the paper can be regenerated from the command line:

.. code-block:: console

   $ python -m repro table1
   $ python -m repro appendix-a
   $ python -m repro figure5 --skew 0.7 --duration-ms 30000
   $ python -m repro figure6 --clients 4 16 48
   $ python -m repro figure7 --conflict-rate 0.10
   $ python -m repro overhead
   $ python -m repro anomalies

Each subcommand prints the corresponding plain-text table; ``--json FILE``
additionally writes the raw rows to a JSON file so results can be archived or
plotted elsewhere.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional

from repro.bench.anomalies import (
    spanner_completed_write_misses,
    spanner_in_flight_miss_windows,
)
from repro.bench.appendix_a import appendix_a_report
from repro.bench.gryff_experiments import figure7_experiment, overhead_experiment
from repro.bench.perfsuite import attach_baseline, perf_report_rows, run_perf_suite
from repro.bench.reporting import format_table, write_json_report
from repro.bench.spanner_experiments import (
    figure5_experiment,
    figure6_experiment,
    run_retwis_experiment,
)
from repro.bench.table1 import table1_report
from repro.spanner.config import Variant

__all__ = ["main", "build_parser"]


def _write_json(path: Optional[str], payload: Any) -> None:
    if not path:
        return
    write_json_report(path, payload)


# --------------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------------- #
def _sweep_kwargs(args: argparse.Namespace) -> Dict[str, Any]:
    """The orchestration arguments shared by every sweep subcommand."""
    return {
        "jobs": args.jobs,
        "resume": args.resume,
        "cache_dir": args.cache_dir,
    }


def cmd_table1(args: argparse.Namespace) -> int:
    report = table1_report(**_sweep_kwargs(args))
    print(report["text"])
    _write_json(args.json, report["computed"])
    return 0 if all(report["matches"].values()) else 1


def cmd_appendix_a(args: argparse.Namespace) -> int:
    report = appendix_a_report(**_sweep_kwargs(args))
    print(report["text"])
    _write_json(args.json, report["details"])
    return 0 if not report["mismatches"] else 1


def cmd_figure5(args: argparse.Namespace) -> int:
    outcome = figure5_experiment(
        args.skew,
        duration_ms=args.duration_ms,
        clients_per_site=args.clients_per_site,
        session_arrival_rate_per_sec=args.arrival_rate,
        num_keys=args.num_keys,
        seed=args.seed,
        **_sweep_kwargs(args),
    )
    print(format_table(
        ["percentile", "Spanner (ms)", "Spanner-RSS (ms)", "reduction (%)"],
        [[f"p{row['fraction'] * 100:g}", row["spanner_ms"], row["spanner_rss_ms"],
          row["reduction_pct"]] for row in outcome["rows"]],
        title=f"Figure 5 — Retwis read-only tail latency, skew {args.skew}",
    ))
    _write_json(args.json, outcome["rows"])
    return 0


def cmd_figure6(args: argparse.Namespace) -> int:
    rows = figure6_experiment(client_counts=tuple(args.clients),
                              duration_ms=args.duration_ms,
                              **_sweep_kwargs(args))
    print(format_table(
        ["clients", "Spanner tput", "Spanner p50 (ms)", "Spanner-RSS tput",
         "Spanner-RSS p50 (ms)"],
        [[row["clients"], row["spanner_throughput"], row["spanner_overall_p50_ms"],
          row["spanner_rss_throughput"], row["spanner_rss_overall_p50_ms"]]
         for row in rows],
        title="Figure 6 — throughput vs median latency under high load",
    ))
    _write_json(args.json, rows)
    return 0


def cmd_figure7(args: argparse.Namespace) -> int:
    rows = figure7_experiment(
        args.conflict_rate, write_ratios=tuple(args.write_ratios),
        duration_ms=args.duration_ms, seed=args.seed,
        **_sweep_kwargs(args),
    )
    print(format_table(
        ["write ratio", "Gryff p99 (ms)", "Gryff-RSC p99 (ms)", "reduction (%)"],
        [[row["write_ratio"], row["gryff_p99_ms"], row["gryff_rsc_p99_ms"],
          row["reduction_pct"]] for row in rows],
        title=f"Figure 7 — YCSB p99 read latency, {args.conflict_rate * 100:g}% conflicts",
    ))
    _write_json(args.json, rows)
    return 0


def cmd_overhead(args: argparse.Namespace) -> int:
    rows = overhead_experiment(duration_ms=args.duration_ms,
                               **_sweep_kwargs(args))
    print(format_table(
        ["write ratio", "Gryff tput", "Gryff p50 (ms)", "Gryff-RSC tput",
         "Gryff-RSC p50 (ms)", "tput delta (%)"],
        [[row["write_ratio"], row["gryff_throughput"], row["gryff_p50_ms"],
          row["gryff_rsc_throughput"], row["gryff_rsc_p50_ms"],
          row["throughput_delta_pct"]] for row in rows],
        title="§7.4 — Gryff-RSC overhead",
    ))
    _write_json(args.json, rows)
    return 0


def cmd_anomalies(args: argparse.Namespace) -> int:
    result = run_retwis_experiment(
        Variant.SPANNER_RSS, zipf_skew=args.skew, duration_ms=args.duration_ms,
        clients_per_site=args.clients_per_site,
        session_arrival_rate_per_sec=args.arrival_rate, num_keys=args.num_keys,
        seed=args.seed, record_history=True, check_consistency=True,
    )
    report = spanner_in_flight_miss_windows(result.history)
    misses = spanner_completed_write_misses(result.history)
    rows = report.summary_rows() + [
        ["completed conflicting writes missed (A2)", misses],
        ["history satisfies RSS", result.consistency_ok],
    ]
    print(format_table(["metric", "value"], rows,
                       title="Anomaly windows under Spanner-RSS"))
    _write_json(args.json, {"max_window_ms": report.max_window_ms,
                            "in_flight_misses": report.misses,
                            "completed_misses": misses})
    return 0 if (misses == 0 and bool(result.consistency_ok)) else 1


def cmd_perf(args: argparse.Namespace) -> int:
    payload = attach_baseline(run_perf_suite(args.scale, jobs=args.jobs),
                              baseline_path=args.baseline)
    print(format_table(
        ["metric", "value"], perf_report_rows(payload),
        title=f"Performance suite — scale {args.scale}",
    ))
    if args.json:
        write_json_report(args.json, payload)
    return 0


# --------------------------------------------------------------------------- #
# Argument parsing
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of the RSS/RSC paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--json", help="also write raw rows to this JSON file")
        sub.add_argument("--seed", type=int, default=3)

    def add_sweep(sub: argparse.ArgumentParser,
                  default_jobs: Optional[int] = None) -> None:
        default_help = ("all cores" if default_jobs is None
                        else str(default_jobs))
        sub.add_argument(
            "--jobs", type=int, default=default_jobs,
            help=f"worker processes for the trial grid (default: "
                 f"{default_help}; 1 = serial, bit-identical output)")
        sub.add_argument(
            "--resume", action="store_true",
            help="reuse cached trial results and cache new ones, so an "
                 "interrupted sweep continues where it stopped")
        sub.add_argument(
            "--cache-dir",
            help="trial-result cache location (default: $REPRO_CACHE_DIR "
                 "or .repro_cache); implies --resume")

    table1 = subparsers.add_parser("table1", help="Table 1 (invariants/anomalies)")
    add_common(table1)
    add_sweep(table1, default_jobs=1)
    table1.set_defaults(func=cmd_table1)

    appendix = subparsers.add_parser("appendix-a", help="Appendix A model comparison")
    add_common(appendix)
    add_sweep(appendix, default_jobs=1)
    appendix.set_defaults(func=cmd_appendix_a)

    figure5 = subparsers.add_parser("figure5", help="Figure 5 (Spanner RO tail latency)")
    add_common(figure5)
    add_sweep(figure5)
    figure5.add_argument("--skew", type=float, default=0.7)
    figure5.add_argument("--duration-ms", type=float, default=30_000.0)
    figure5.add_argument("--clients-per-site", type=int, default=6)
    figure5.add_argument("--arrival-rate", type=float, default=2.0)
    figure5.add_argument("--num-keys", type=int, default=2_000)
    figure5.set_defaults(func=cmd_figure5)

    figure6 = subparsers.add_parser("figure6", help="Figure 6 (throughput vs latency)")
    add_common(figure6)
    add_sweep(figure6)
    figure6.add_argument("--clients", type=int, nargs="+", default=[4, 16, 48])
    figure6.add_argument("--duration-ms", type=float, default=1_000.0)
    figure6.set_defaults(func=cmd_figure6)

    figure7 = subparsers.add_parser("figure7", help="Figure 7 (Gryff p99 read latency)")
    add_common(figure7)
    add_sweep(figure7)
    figure7.add_argument("--conflict-rate", type=float, default=0.10)
    figure7.add_argument("--write-ratios", type=float, nargs="+",
                         default=[0.1, 0.3, 0.5, 0.7, 0.9])
    figure7.add_argument("--duration-ms", type=float, default=30_000.0)
    figure7.set_defaults(func=cmd_figure7)

    overhead = subparsers.add_parser("overhead", help="§7.4 (Gryff-RSC overhead)")
    add_common(overhead)
    add_sweep(overhead)
    overhead.add_argument("--duration-ms", type=float, default=2_000.0)
    overhead.set_defaults(func=cmd_overhead)

    anomalies = subparsers.add_parser("anomalies",
                                      help="extension: anomaly-window measurement")
    add_common(anomalies)
    anomalies.add_argument("--skew", type=float, default=0.9)
    anomalies.add_argument("--duration-ms", type=float, default=10_000.0)
    anomalies.add_argument("--clients-per-site", type=int, default=3)
    anomalies.add_argument("--arrival-rate", type=float, default=2.0)
    anomalies.add_argument("--num-keys", type=int, default=500)
    anomalies.set_defaults(func=cmd_anomalies)

    perf = subparsers.add_parser(
        "perf", help="checker/sim hot-path performance suite (BENCH_perf.json)")
    perf.add_argument("--scale", choices=["quick", "full"], default="quick")
    perf.add_argument("--jobs", type=int, default=None,
                      help="worker processes for the sweep wall-clock section "
                           "(default: all cores)")
    perf.add_argument("--json", help="write the perf payload to this JSON file")
    perf.add_argument("--baseline",
                      help="seed baseline JSON to compare against "
                           "(default: benchmarks/BENCH_seed_baseline.json)")
    perf.set_defaults(func=cmd_perf)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
