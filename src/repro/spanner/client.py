"""Spanner / Spanner-RSS client library (Algorithm 1 and the RW protocol of §5).

A client executes read-write transactions with two-phase locking and
two-phase commit, and read-only transactions with either Spanner's blocking
protocol or Spanner-RSS's Algorithm 1, depending on the configured variant.
Every completed transaction is appended to a :class:`~repro.core.history.History`
(with its commit/snapshot timestamp in ``meta``) and its latency recorded.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.events import Operation
from repro.core.history import History
from repro.core.recording import SessionRecorder
from repro.sim.clock import TrueTime
from repro.sim.engine import Environment, Event
from repro.sim.network import Message, Network
from repro.sim.node import Node
from repro.sim.stats import LatencyRecorder
from repro.spanner.config import SpannerConfig, Variant

__all__ = ["SpannerClient", "TransactionAborted"]


class TransactionAborted(Exception):
    """Raised when a read-write transaction exhausts its retry budget."""


@dataclass
class _PendingRO:
    """Client-side state for an outstanding Spanner-RSS read-only transaction."""

    ro_id: int
    slow_replies: List[Dict[str, Any]] = field(default_factory=list)
    wakeup: Optional[Event] = None


class SpannerClient(SessionRecorder, Node):
    """A client (application server) session talking to the Spanner shards."""

    def __init__(self, env: Environment, network: Network, truetime: TrueTime,
                 config: SpannerConfig, name: str, site: str,
                 history: Optional[History] = None,
                 recorder: Optional[LatencyRecorder] = None,
                 record_history: bool = True):
        super().__init__(env, network, name, site)
        self.truetime = truetime
        self.config = config
        self._init_recording(history, recorder, record_history)
        #: Minimum read timestamp capturing this session's causal constraints.
        self.t_min = 0.0
        #: Session counter: load generators reuse a client node for many
        #: independent end-user sessions (§6.1); each session is a separate
        #: causal context, so operations are recorded under a per-session
        #: process name and t_min restarts from zero.
        self.session = 0
        self._txn_counter = itertools.count(1)
        self._ro_counter = itertools.count(1)
        self._pending_ro: Dict[int, _PendingRO] = {}
        self.committed = 0
        self.aborted_attempts = 0

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _shards_for(self, keys) -> Dict[str, List[str]]:
        grouped: Dict[str, List[str]] = {}
        for key in keys:
            grouped.setdefault(self.config.shard_for_key(key), []).append(key)
        return grouped

    def _new_txn_id(self) -> str:
        return f"{self.name}:txn{next(self._txn_counter)}"

    def import_context(self, t_min: float) -> None:
        """Adopt a causal context received out of band (§4.2)."""
        if t_min > self.t_min:
            self.t_min = t_min

    def export_context(self) -> float:
        """The causal context to propagate to another process."""
        return self.t_min

    @property
    def history_process(self) -> str:
        """The process name operations are recorded under (per session)."""
        if self.session == 0:
            return self.name
        return f"{self.name}/s{self.session}"

    def new_session(self) -> None:
        """Start a fresh end-user session with its own causal context."""
        self.session += 1
        self.t_min = 0.0

    # ------------------------------------------------------------------ #
    # Read-write transactions
    # ------------------------------------------------------------------ #
    def read_write_transaction(
        self,
        read_keys: List[str],
        compute_writes: Callable[[Dict[str, Any]], Dict[str, Any]],
        max_retries: int = 25,
    ):
        """Execute a read-write transaction (generator).

        ``compute_writes`` receives the mapping of read values and returns the
        write set.  Returns ``(read_values, writes, commit_ts)``.
        """
        attempt = 0
        while True:
            attempt += 1
            invoked_at = self.env.now
            self._note_invocation(invoked_at)
            outcome = yield from self._attempt_rw(read_keys, compute_writes)
            if outcome is not None:
                read_values, writes, commit_ts, earliest_end_ts, txn_id = outcome
                # The client ensures t_ee has passed before the transaction's
                # client-side end (§5 / §6 optimization 2).
                yield from self.truetime.wait_until_after(earliest_end_ts)
                responded_at = self.env.now
                self.t_min = max(self.t_min, commit_ts)
                self.committed += 1
                self._record(Operation.rw_txn(
                    self.history_process, read_set=dict(read_values),
                    write_set=dict(writes),
                    invoked_at=invoked_at, responded_at=responded_at,
                    commit_ts=commit_ts, txn_id=txn_id,
                ), "rw", invoked_at, responded_at)
                return read_values, writes, commit_ts
            self.aborted_attempts += 1
            self._note_abandoned()
            if attempt > max_retries:
                raise TransactionAborted(
                    f"{self.name}: transaction aborted {attempt} times"
                )
            yield self.env.timeout(self.config.retry_backoff_ms)

    def _attempt_rw(self, read_keys: List[str],
                    compute_writes: Callable[[Dict[str, Any]], Dict[str, Any]]):
        txn_id = self._new_txn_id()
        start_ts = self.truetime.now().latest
        priority = start_ts
        read_groups = self._shards_for(read_keys)

        # Execution phase: acquire read locks and fetch current values.
        calls = [
            (shard, self.rpc_call(shard, "rw_read", txn_id=txn_id,
                                  keys=keys, priority=priority))
            for shard, keys in read_groups.items()
        ]
        read_values: Dict[str, Any] = {}
        contacted: Set[str] = set(read_groups)
        failed = False
        for shard, call in calls:
            reply = yield call
            if reply["status"] != "ok":
                failed = True
            else:
                for key, entry in reply["values"].items():
                    read_values[key] = entry["value"]
        if failed:
            self._abort_everywhere(txn_id, contacted)
            return None

        writes = compute_writes(dict(read_values))
        write_groups = self._shards_for(writes)
        participant_names = sorted(set(read_groups) | set(write_groups))
        participants = {
            shard: {
                "writes": {k: writes[k] for k in write_groups.get(shard, [])},
                "read_keys": read_groups.get(shard, []),
            }
            for shard in participant_names
        }
        coordinator = self._choose_coordinator(participant_names)
        participant_sites = [
            self.network.node(shard).site for shard in participant_names
        ]
        min_latency = self.config.min_commit_latency_ms(
            self.network.node(coordinator).site, participant_sites, self.site,
        )
        earliest_end_ts = self.truetime.now().earliest + min_latency

        reply = yield self.rpc_call(
            coordinator, "commit_txn",
            txn_id=txn_id, priority=priority, start_ts=start_ts,
            earliest_end_ts=earliest_end_ts, participants=participants,
        )
        if reply["status"] != "commit":
            self._abort_everywhere(txn_id, contacted | set(participant_names))
            return None
        return (read_values, writes, reply["commit_ts"], reply["earliest_end_ts"],
                txn_id)

    def _choose_coordinator(self, participant_names: List[str]) -> str:
        """Pick the participant that minimizes the estimated commit latency."""
        participant_sites = [
            self.network.node(shard).site for shard in participant_names
        ]
        best_name = participant_names[0]
        best_latency = float("inf")
        for shard in participant_names:
            latency = self.config.min_commit_latency_ms(
                self.network.node(shard).site, participant_sites, self.site,
            )
            if latency < best_latency:
                best_latency = latency
                best_name = shard
        return best_name

    def _abort_everywhere(self, txn_id: str, shards: Set[str]) -> None:
        for shard in shards:
            self.send(shard, "commit_decision", txn_id=txn_id, decision="abort")

    # ------------------------------------------------------------------ #
    # Read-only transactions
    # ------------------------------------------------------------------ #
    def read_only_transaction(self, keys: List[str]):
        """Execute a read-only transaction (generator); returns key → value."""
        if self.config.variant == Variant.SPANNER:
            result = yield from self._ro_spanner(keys)
        else:
            result = yield from self._ro_spanner_rss(keys)
        return result

    def _record_ro(self, invoked_at: float, values: Dict[str, Any],
                   snapshot_ts: float, raw_snapshot_ts: Optional[float] = None) -> None:
        responded_at = self.env.now
        self._record(Operation.ro_txn(
            self.history_process, read_set=dict(values),
            invoked_at=invoked_at, responded_at=responded_at,
            snapshot_ts=snapshot_ts,
            raw_snapshot_ts=(snapshot_ts if raw_snapshot_ts is None
                             else raw_snapshot_ts),
        ), "ro", invoked_at, responded_at)

    def _ro_spanner(self, keys: List[str]):
        """Spanner's strictly serializable read-only transaction."""
        invoked_at = self.env.now
        self._note_invocation(invoked_at)
        t_read = self.truetime.now().latest
        groups = self._shards_for(keys)
        calls = [
            self.rpc_call(shard, "ro_read", keys=shard_keys, t_read=t_read)
            for shard, shard_keys in groups.items()
        ]
        values: Dict[str, Any] = {}
        for call in calls:
            reply = yield call
            for key, entry in reply["values"].items():
                values[key] = entry["value"]
        self._record_ro(invoked_at, values, snapshot_ts=t_read)
        return values

    def _ro_spanner_rss(self, keys: List[str]):
        """Spanner-RSS's read-only transaction (Algorithm 1)."""
        invoked_at = self.env.now
        self._note_invocation(invoked_at)
        t_min_at_start = self.t_min
        t_read = self.truetime.now().latest
        ro_id = next(self._ro_counter)
        pending = _PendingRO(ro_id=ro_id)
        self._pending_ro[ro_id] = pending
        groups = self._shards_for(keys)
        calls = [
            self.rpc_call(shard, "ro_commit", keys=shard_keys, t_read=t_read,
                          t_min=self.t_min, ro_id=ro_id)
            for shard, shard_keys in groups.items()
        ]

        # Collect fast replies from every shard (line 6).
        versions: Dict[str, List[Tuple[float, Any]]] = {key: [] for key in keys}
        prepared: Dict[str, float] = {}
        prepared_writes: Dict[str, Dict[str, Any]] = {}
        committed_writers: Dict[str, float] = {}
        for call in calls:
            reply = yield call
            for key, entry in reply["values"].items():
                versions[key].append((entry["commit_ts"], entry["value"]))
                writer = entry.get("writer")
                if writer:
                    committed_writers[writer] = entry["commit_ts"]
            for info in reply["prepared"]:
                prepared[info["txn_id"]] = info["prepare_ts"]
            for txn_id, writes in reply.get("prepared_writes", {}).items():
                prepared_writes[txn_id] = writes

        # Line 8: the snapshot timestamp is the earliest time for which the
        # client has a value for every key.
        t_snap = 0.0
        for key in keys:
            key_versions = versions[key]
            earliest = min((ts for ts, _ in key_versions), default=0.0)
            t_snap = max(t_snap, earliest)

        # First optimization of §6: if another shard's value reveals that a
        # skipped prepared transaction already committed, materialize its
        # writes without waiting for the slow reply.
        for txn_id, commit_ts in committed_writers.items():
            if txn_id in prepared and txn_id in prepared_writes:
                for key, value in prepared_writes[txn_id].items():
                    versions.setdefault(key, []).append((commit_ts, value))
                del prepared[txn_id]

        # Lines 9-11: wait for slow replies while some prepared transaction
        # could still belong in the snapshot.
        while prepared and min(prepared.values()) <= t_snap:
            reply = yield from self._next_slow_reply(pending)
            txn_id = reply["txn_id"]
            prepared.pop(txn_id, None)
            if reply["decision"] == "commit":
                commit_ts = reply["commit_ts"]
                for key, entry in reply["values"].items():
                    if key in versions:
                        versions[key].append((commit_ts, entry["value"]))

        # Line 12: advance the session's minimum read timestamp.
        self.t_min = max(self.t_min, t_snap)
        del self._pending_ro[ro_id]

        # Line 13: return the state of the database at t_snap.
        values = {}
        for key in keys:
            eligible = [(ts, value) for ts, value in versions[key] if ts <= t_snap]
            if eligible:
                values[key] = max(eligible, key=lambda item: item[0])[1]
            else:
                values[key] = None
        # The returned snapshot is also valid at the session's minimum read
        # timestamp: no conflicting write can commit between t_snap and t_min
        # (such a transaction would either have been returned by the shards or
        # have forced the transaction to block).  Recording the later of the
        # two as the serialization timestamp keeps the witness order (Theorem
        # D.5) consistent with the session's causal order even when the read
        # keys are cold.
        effective_ts = max(t_snap, t_min_at_start)
        responded_at = self.env.now
        self._record(Operation.ro_txn(
            self.history_process, read_set=dict(values),
            invoked_at=invoked_at, responded_at=responded_at,
            snapshot_ts=effective_ts, raw_snapshot_ts=t_snap,
            t_read=t_read, t_min=t_min_at_start,
            skipped_prepared=len(prepared_writes),
        ), "ro", invoked_at, responded_at)
        return values

    def _next_slow_reply(self, pending: _PendingRO):
        while not pending.slow_replies:
            pending.wakeup = self.env.event()
            yield pending.wakeup
        return pending.slow_replies.pop(0)

    def on_ro_slow(self, message: Message) -> None:
        """Handle an Algorithm 2 slow reply (lines 13-17 of Algorithm 2)."""
        payload = message.payload
        pending = self._pending_ro.get(payload["ro_id"])
        if pending is None:
            return
        pending.slow_replies.append(payload)
        if pending.wakeup is not None and not pending.wakeup.triggered:
            pending.wakeup.succeed()

    # ------------------------------------------------------------------ #
    # Real-time fence (§5.1)
    # ------------------------------------------------------------------ #
    def fence(self):
        """Block until every future read-only transaction (anywhere) reflects
        a state at least as recent as this session's ``t_min``."""
        target = self.t_min + self.config.fence_bound_ms
        yield from self.truetime.wait_until_after(target)
        return target
