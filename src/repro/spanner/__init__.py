"""Spanner and Spanner-RSS (§5, §6).

A from-scratch simulation of Spanner's transaction protocols and the paper's
Spanner-RSS variant:

* read-write transactions use strict two-phase locking with wound-wait,
  two-phase commit across shard leaders, TrueTime commit timestamps, and
  commit wait;
* Spanner's read-only transactions read at ``TT.now().latest`` and block
  behind conflicting prepared transactions;
* Spanner-RSS's read-only transactions (Algorithms 1 and 2) carry ``t_min``,
  skip prepared transactions whose earliest end time ``t_ee`` is still in the
  future, and assemble a consistent snapshot at ``t_snap`` on the client.

The top-level entry point is :class:`repro.spanner.cluster.SpannerCluster`.
"""

from repro.spanner.config import SpannerConfig, Variant
from repro.spanner.cluster import SpannerCluster
from repro.spanner.client import SpannerClient, TransactionAborted
from repro.spanner.locks import LockMode, LockTable
from repro.spanner.mvstore import MultiVersionStore
from repro.spanner.replication import ReplicationLog

__all__ = [
    "SpannerConfig",
    "Variant",
    "SpannerCluster",
    "SpannerClient",
    "TransactionAborted",
    "LockMode",
    "LockTable",
    "MultiVersionStore",
    "ReplicationLog",
]
