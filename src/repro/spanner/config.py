"""Configuration for the simulated Spanner deployment (§6)."""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sim.network import LatencyMatrix, spanner_wan, single_dc

__all__ = ["Variant", "SpannerConfig"]


class Variant(enum.Enum):
    """Which read-only transaction protocol the deployment runs."""

    SPANNER = "spanner"
    SPANNER_RSS = "spanner-rss"


@dataclass
class SpannerConfig:
    """Deployment and protocol parameters.

    Defaults follow §6.1: three shards whose leaders are spread across
    California, Virginia, and Ireland; replicas in the other two sites;
    TrueTime uncertainty of 10 ms.
    """

    variant: Variant = Variant.SPANNER_RSS
    num_shards: int = 3
    num_keys: int = 10_000
    #: Site of each shard's Paxos leader, round-robin over ``sites`` if empty.
    leader_sites: List[str] = field(default_factory=lambda: ["CA", "VA", "IR"])
    #: All replication sites (each shard is replicated at every site).
    sites: List[str] = field(default_factory=lambda: ["CA", "VA", "IR"])
    #: TrueTime uncertainty epsilon, in ms (paper: 10 ms at p99.9).
    truetime_epsilon_ms: float = 10.0
    #: Per-message network/processing overhead added to every message, in ms.
    processing_ms: float = 0.05
    #: Per-message CPU time at each (single-threaded) shard leader, in ms.
    #: Zero disables CPU modelling; the high-load experiment (Figure 6) sets
    #: it so that throughput saturates.
    server_cpu_ms: float = 0.0
    #: Per-message network jitter bound, in ms.
    jitter_ms: float = 0.5
    #: Safety margin subtracted when clients estimate the earliest end time
    #: t_ee of a read-write transaction (clients use minimum observed RTTs).
    tee_margin_ms: float = 0.0
    #: Bound L on (t_c - t_ee) used by Spanner-RSS real-time fences (§5.1).
    fence_bound_ms: float = 250.0
    #: Abort/backoff delay before a client retries an aborted transaction.
    retry_backoff_ms: float = 5.0
    #: Include skipped prepared transactions' buffered writes in fast replies
    #: (first optimization of §6).
    fast_path_prepared_writes: bool = True
    #: Advance t_ee by wound-wait blocking time (second optimization of §6).
    adjust_tee_for_blocking: bool = True
    #: Random seed for the network and workload.
    seed: int = 1
    #: Prefix prepended to every shard name.  Empty for standalone
    #: clusters; fleet groups use ``"g<id>/"`` so node names stay unique
    #: across the merged multi-group topology.
    name_prefix: str = ""

    def latency_matrix(self) -> LatencyMatrix:
        """The WAN latency matrix implied by ``sites``."""
        if set(self.sites) <= {"CA", "VA", "IR"} and len(self.sites) > 1:
            return spanner_wan()
        return single_dc(self.sites, rtt_ms=0.2)

    def leader_site(self, shard_index: int) -> str:
        sites = self.leader_sites or self.sites
        return sites[shard_index % len(sites)]

    def shard_name(self, shard_index: int) -> str:
        return f"{self.name_prefix}shard{shard_index}"

    def shard_for_key(self, key: str) -> str:
        """Deterministic key → shard-leader-name mapping (stable across runs)."""
        digest = zlib.crc32(str(key).encode("utf-8"))
        return self.shard_name(digest % self.num_shards)

    def all_shard_names(self) -> List[str]:
        return [self.shard_name(i) for i in range(self.num_shards)]

    def min_commit_latency_ms(self, coordinator_site: str, participant_sites: Sequence[str],
                              client_site: str) -> float:
        """A lower bound on the wall-clock duration of two-phase commit.

        Clients use this to estimate a read-write transaction's earliest
        client-side end time t_ee (§6): the commit request must reach the
        coordinator, participants must prepare and replicate, and the
        outcome must travel back to the client.
        """
        matrix = self.latency_matrix()
        to_coord = matrix.one_way(client_site, coordinator_site)
        prepare = 0.0
        for site in participant_sites:
            if site == coordinator_site:
                continue
            round_trip = matrix.rtt(coordinator_site, site)
            prepare = max(prepare, round_trip)
        replication = self._replication_delay(coordinator_site)
        back = matrix.one_way(coordinator_site, client_site)
        return to_coord + prepare + replication + back - self.tee_margin_ms

    def _replication_delay(self, leader_site: str) -> float:
        """One Paxos round from ``leader_site`` to its nearest majority."""
        matrix = self.latency_matrix()
        others = sorted(
            matrix.rtt(leader_site, site) for site in self.sites if site != leader_site
        )
        majority = (len(self.sites) // 2 + 1) - 1  # leader counts toward majority
        if majority <= 0 or not others:
            return 0.0
        return others[majority - 1]
