"""Strict two-phase locking with wound-wait deadlock avoidance (§5).

Each shard leader owns one :class:`LockTable`.  Transactions acquire read
locks while executing and write locks while preparing; all locks are released
when the transaction commits or aborts.  Deadlocks are avoided with
wound-wait [79]: an older transaction (smaller priority timestamp) that finds
a younger holder *wounds* it (the younger transaction is aborted); a younger
requester waits for older holders.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.sim.engine import Environment, Event

__all__ = ["LockMode", "LockTable", "LockRequest"]


class LockMode(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass
class LockRequest:
    """A pending lock request waiting in a key's queue."""

    txn_id: str
    mode: LockMode
    priority: float
    event: Event
    granted: bool = False


@dataclass
class _KeyLockState:
    holders: Dict[str, LockMode] = field(default_factory=dict)
    waiters: Deque[LockRequest] = field(default_factory=deque)


class LockTable:
    """Per-shard lock table.

    Parameters
    ----------
    env:
        Simulation environment (used to create wait events).
    wound_callback:
        Called with a transaction id when that transaction is wounded; the
        shard is responsible for aborting it (releasing its locks and
        rejecting its later prepare/commit).
    """

    def __init__(self, env: Environment,
                 wound_callback: Optional[Callable[[str], None]] = None):
        self.env = env
        self.wound_callback = wound_callback
        self._keys: Dict[str, _KeyLockState] = {}
        self._txn_keys: Dict[str, Set[str]] = {}
        self._priorities: Dict[str, float] = {}
        self.wounds = 0
        self.waits = 0

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def acquire(self, key: str, mode: LockMode, txn_id: str, priority: float) -> Event:
        """Request a lock; returns an event that fires True when granted.

        If the request conflicts with younger holders, those holders are
        wounded (and the request keeps waiting for their release).  The
        returned event fires with ``True`` once the lock is granted; it fires
        with ``False`` if the requesting transaction is itself wounded while
        waiting.
        """
        self._priorities[txn_id] = priority
        state = self._keys.setdefault(key, _KeyLockState())
        event = self.env.event()
        request = LockRequest(txn_id=txn_id, mode=mode, priority=priority, event=event)
        if self._compatible(state, request):
            self._grant(key, state, request)
            return event
        # Wound-wait: queue the request, then wound any younger holders (the
        # wound callback releases their locks, which may immediately promote
        # this request from the wait queue).
        self.waits += 1
        state.waiters.append(request)
        for holder_id in list(state.holders):
            if holder_id == txn_id:
                continue
            holder_priority = self._priorities.get(holder_id, float("inf"))
            if priority < holder_priority:
                self._wound(holder_id)
        return event

    def try_write_lock(self, key: str, txn_id: str, priority: float,
                       protected: Callable[[str], bool]) -> bool:
        """Attempt to take a write lock without waiting (prepare phase).

        Conflicting holders that are younger *and* not protected (e.g. not yet
        prepared) are wounded; if any conflicting holder is older or
        protected, the request fails and the caller must abort.  Never
        waiting during the prepare phase keeps two-phase commit free of
        distributed deadlocks involving prepared transactions.
        """
        self._priorities[txn_id] = priority
        state = self._keys.setdefault(key, _KeyLockState())
        conflicting = [holder for holder in state.holders if holder != txn_id]
        for holder in conflicting:
            holder_priority = self._priorities.get(holder, float("inf"))
            if protected(holder) or priority >= holder_priority:
                return False
        for holder in conflicting:
            self._wound(holder)
        still_conflicting = [h for h in state.holders if h != txn_id]
        if still_conflicting:
            return False
        event = self.env.event()
        request = LockRequest(txn_id=txn_id, mode=LockMode.WRITE,
                              priority=priority, event=event)
        self._grant(key, state, request)
        return True

    def holders_of(self, key: str) -> Dict[str, LockMode]:
        state = self._keys.get(key)
        return dict(state.holders) if state else {}

    def release_all(self, txn_id: str) -> None:
        """Release every lock held by ``txn_id`` and cancel its waiters."""
        keys = self._txn_keys.pop(txn_id, set())
        for key in keys:
            state = self._keys.get(key)
            if state is None:
                continue
            state.holders.pop(txn_id, None)
            self._promote_waiters(key, state)
        # Cancel requests still waiting anywhere.
        for key, state in self._keys.items():
            new_waiters = deque()
            for request in state.waiters:
                if request.txn_id == txn_id:
                    if not request.event.triggered:
                        request.event.succeed(False)
                else:
                    new_waiters.append(request)
            state.waiters = new_waiters
            self._promote_waiters(key, state)
        self._priorities.pop(txn_id, None)

    def holds(self, txn_id: str, key: str, mode: Optional[LockMode] = None) -> bool:
        state = self._keys.get(key)
        if state is None or txn_id not in state.holders:
            return False
        if mode is None:
            return True
        held = state.holders[txn_id]
        if mode == LockMode.READ:
            return True  # a write lock subsumes a read lock
        return held == LockMode.WRITE

    def held_keys(self, txn_id: str) -> Set[str]:
        return set(self._txn_keys.get(txn_id, set()))

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _compatible(self, state: _KeyLockState, request: LockRequest) -> bool:
        for holder_id, held_mode in state.holders.items():
            if holder_id == request.txn_id:
                continue
            if request.mode == LockMode.WRITE or held_mode == LockMode.WRITE:
                return False
        # FIFO fairness: a write request must also wait behind earlier waiters.
        if request.mode == LockMode.WRITE and state.waiters:
            return False
        return True

    def _grant(self, key: str, state: _KeyLockState, request: LockRequest) -> None:
        current = state.holders.get(request.txn_id)
        if current != LockMode.WRITE:
            state.holders[request.txn_id] = request.mode
        self._txn_keys.setdefault(request.txn_id, set()).add(key)
        request.granted = True
        if not request.event.triggered:
            request.event.succeed(True)

    def _wound(self, txn_id: str) -> None:
        self.wounds += 1
        if self.wound_callback is not None:
            self.wound_callback(txn_id)

    def _promote_waiters(self, key: str, state: _KeyLockState) -> None:
        progressed = True
        while progressed and state.waiters:
            progressed = False
            request = state.waiters[0]
            if self._compatible_for_waiter(state, request):
                state.waiters.popleft()
                self._grant(key, state, request)
                progressed = True

    def _compatible_for_waiter(self, state: _KeyLockState, request: LockRequest) -> bool:
        for holder_id, held_mode in state.holders.items():
            if holder_id == request.txn_id:
                continue
            if request.mode == LockMode.WRITE or held_mode == LockMode.WRITE:
                return False
        return True
