"""Simulated shard replication.

The paper's implementation replicates each shard with viewstamped
replication; only the *latency* of replication and the Paxos safe-time
mechanism matter to the protocols under study.  :class:`ReplicationLog`
models a leader-based log where appending an entry costs one round trip to
the nearest majority of replica sites and advances the maximum replicated
write timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sim.engine import Environment
from repro.sim.network import LatencyMatrix

__all__ = ["LeaderLease", "ReplicationLog"]


@dataclass
class _LogEntry:
    kind: str
    payload: Dict[str, Any]
    timestamp: float
    #: Leader term the entry was appended under (0 when no lease is in play).
    term: int = 0


class LeaderLease:
    """A time-bounded, term-numbered leadership claim for one shard.

    The replication stub has no real Paxos group to elect from, so the lease
    is the whole election: a leader may serve writes only while it holds the
    lease, it renews the lease on every request it serves, and a crashed
    leader's claim simply expires ``duration_ms`` after its last renewal.
    Whoever acquires next (in this runtime: the recovered leader process,
    since shard routing is by node name) gets a larger **term**, which is
    stamped onto replication-log entries as the fencing token.

    The current holder renews without a term bump; a free or expired lease is
    granted with ``term + 1``; a live lease held by someone else is refused.
    Time is the caller's clock (``env.now``) — in the live runtime every
    process measures against the shared cluster epoch, so expiry is
    comparable across processes.
    """

    def __init__(self, duration_ms: float = 500.0):
        if duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        self.duration_ms = duration_ms
        self.holder: Optional[str] = None
        self.term = 0
        self.expires_at = float("-inf")
        #: ``(time, holder, term)`` per grant — the election history.
        self.transitions: List[tuple] = []

    def expired(self, now: float) -> bool:
        return now >= self.expires_at

    def held_by(self, name: str, now: float) -> bool:
        return self.holder == name and not self.expired(now)

    def try_acquire(self, candidate: str, now: float) -> bool:
        """Acquire or renew the lease for ``candidate`` at time ``now``."""
        if self.holder == candidate and not self.expired(now):
            self.expires_at = now + self.duration_ms
            return True
        if self.holder is None or self.expired(now):
            self.holder = candidate
            self.term += 1
            self.expires_at = now + self.duration_ms
            self.transitions.append((now, candidate, self.term))
            return True
        return False

    def release(self, name: str) -> None:
        """Voluntarily give up the lease (a clean step-down)."""
        if self.holder == name:
            self.holder = None
            self.expires_at = float("-inf")


class ReplicationLog:
    """A leader's replicated log for one shard."""

    def __init__(self, env: Environment, leader_site: str, replica_sites: List[str],
                 latency: LatencyMatrix, processing_ms: float = 0.0):
        self.env = env
        self.leader_site = leader_site
        self.replica_sites = list(replica_sites)
        self.latency = latency
        self.processing_ms = processing_ms
        self.entries: List[_LogEntry] = []
        #: Largest timestamp carried by a replicated write (Paxos::MaxWriteTS).
        self.max_write_ts = 0.0
        self.appends = 0
        #: Current leader term, stamped onto every appended entry.  Stays 0
        #: unless a :class:`LeaderLease` is managing this shard's leadership.
        self.term = 0

    def majority_delay(self) -> float:
        """Round-trip time to the nearest majority of the other replicas."""
        others = sorted(
            self.latency.rtt(self.leader_site, site)
            for site in self.replica_sites
            if site != self.leader_site
        )
        total = len(self.replica_sites)
        majority = total // 2 + 1
        needed_from_others = majority - 1  # the leader itself counts
        if needed_from_others <= 0 or not others:
            return 0.0
        return others[needed_from_others - 1]

    def append(self, kind: str, payload: Dict[str, Any], timestamp: float):
        """Replicate an entry; generator that completes after a majority
        acknowledges (one round trip to the nearest majority)."""
        self.appends += 1
        delay = self.majority_delay() + self.processing_ms
        if delay > 0:
            yield self.env.timeout(delay)
        self.entries.append(_LogEntry(kind=kind, payload=dict(payload),
                                      timestamp=timestamp, term=self.term))
        if timestamp > self.max_write_ts:
            self.max_write_ts = timestamp
        return timestamp
