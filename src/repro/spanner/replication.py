"""Simulated shard replication.

The paper's implementation replicates each shard with viewstamped
replication; only the *latency* of replication and the Paxos safe-time
mechanism matter to the protocols under study.  :class:`ReplicationLog`
models a leader-based log where appending an entry costs one round trip to
the nearest majority of replica sites and advances the maximum replicated
write timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sim.engine import Environment
from repro.sim.network import LatencyMatrix

__all__ = ["ReplicationLog"]


@dataclass
class _LogEntry:
    kind: str
    payload: Dict[str, Any]
    timestamp: float


class ReplicationLog:
    """A leader's replicated log for one shard."""

    def __init__(self, env: Environment, leader_site: str, replica_sites: List[str],
                 latency: LatencyMatrix, processing_ms: float = 0.0):
        self.env = env
        self.leader_site = leader_site
        self.replica_sites = list(replica_sites)
        self.latency = latency
        self.processing_ms = processing_ms
        self.entries: List[_LogEntry] = []
        #: Largest timestamp carried by a replicated write (Paxos::MaxWriteTS).
        self.max_write_ts = 0.0
        self.appends = 0

    def majority_delay(self) -> float:
        """Round-trip time to the nearest majority of the other replicas."""
        others = sorted(
            self.latency.rtt(self.leader_site, site)
            for site in self.replica_sites
            if site != self.leader_site
        )
        total = len(self.replica_sites)
        majority = total // 2 + 1
        needed_from_others = majority - 1  # the leader itself counts
        if needed_from_others <= 0 or not others:
            return 0.0
        return others[needed_from_others - 1]

    def append(self, kind: str, payload: Dict[str, Any], timestamp: float):
        """Replicate an entry; generator that completes after a majority
        acknowledges (one round trip to the nearest majority)."""
        self.appends += 1
        delay = self.majority_delay() + self.processing_ms
        if delay > 0:
            yield self.env.timeout(delay)
        self.entries.append(_LogEntry(kind=kind, payload=dict(payload), timestamp=timestamp))
        if timestamp > self.max_write_ts:
            self.max_write_ts = timestamp
        return timestamp
