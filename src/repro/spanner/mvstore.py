"""Multi-version key-value storage used by each Spanner shard.

Each key maps to a list of ``(commit_ts, value)`` versions in timestamp
order.  Reads at a timestamp return the newest version at or below it
(Algorithm 2's ``ReadAtTimestamp``).
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["MultiVersionStore", "Version"]

#: ``(commit_ts, value, writer)`` — writer is the committing transaction id.
Version = Tuple[float, Any, Optional[str]]


class MultiVersionStore:
    """A per-shard multi-versioned store."""

    def __init__(self) -> None:
        self._versions: Dict[str, List[Version]] = {}
        self._timestamps: Dict[str, List[float]] = {}
        self.max_commit_ts = 0.0

    def apply(self, key: str, value: Any, commit_ts: float,
              writer: Optional[str] = None) -> None:
        """Install a committed version.

        Commits arrive in nearly sorted timestamp order, so the common case
        appends in O(1); only out-of-order installs pay the O(n) insert.
        """
        timestamps = self._timestamps.setdefault(key, [])
        versions = self._versions.setdefault(key, [])
        if not timestamps or commit_ts >= timestamps[-1]:
            timestamps.append(commit_ts)
            versions.append((commit_ts, value, writer))
        else:
            index = bisect.bisect_right(timestamps, commit_ts)
            timestamps.insert(index, commit_ts)
            versions.insert(index, (commit_ts, value, writer))
        if commit_ts > self.max_commit_ts:
            self.max_commit_ts = commit_ts

    def apply_many(self, writes: Dict[str, Any], commit_ts: float,
                   writer: Optional[str] = None) -> None:
        for key, value in writes.items():
            self.apply(key, value, commit_ts, writer=writer)

    def read_at(self, key: str, timestamp: float) -> Version:
        """Return ``(commit_ts, value, writer)`` of the newest version at or
        below ``timestamp`` (or ``(0.0, None, None)`` if none exists)."""
        timestamps = self._timestamps.get(key)
        if not timestamps:
            return 0.0, None, None
        index = bisect.bisect_right(timestamps, timestamp) - 1
        if index < 0:
            return 0.0, None, None
        return self._versions[key][index]

    def read_latest(self, key: str) -> Version:
        """Return the newest committed version of ``key``."""
        versions = self._versions.get(key)
        if not versions:
            return 0.0, None, None
        return versions[-1]

    def latest_commit_ts(self, key: str) -> float:
        timestamps = self._timestamps.get(key)
        if not timestamps:
            return 0.0
        return timestamps[-1]

    def keys(self) -> Iterable[str]:
        return self._versions.keys()

    def all_versions(self) -> Iterable[Tuple[str, float, Any, Optional[str]]]:
        """Iterate over every committed version as (key, ts, value, writer)."""
        for key, versions in self._versions.items():
            for commit_ts, value, writer in versions:
                yield key, commit_ts, value, writer

    def version_count(self, key: str) -> int:
        return len(self._versions.get(key, ()))

    def purge(self, key: str) -> int:
        """Drop every version of ``key`` (key-range migration cleanup).

        Returns the number of versions removed.  ``max_commit_ts`` is left
        untouched: it is a monotonicity marker, not derived state.
        """
        removed = len(self._versions.pop(key, ()))
        self._timestamps.pop(key, None)
        return removed
