"""Spanner / Spanner-RSS shard leader (Algorithm 2 and the RW protocol of §5).

Each shard leader owns a lock table, a multi-version store, a prepared-
transaction table, and a replication log.  It plays both the participant and
the coordinator roles of two-phase commit, and serves read-only transactions
with either Spanner's blocking protocol or Spanner-RSS's Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.sim.clock import TrueTime
from repro.sim.engine import Environment, Event
from repro.sim.network import Message, Network
from repro.sim.node import Node
from repro.spanner.config import SpannerConfig, Variant
from repro.spanner.locks import LockMode, LockTable
from repro.spanner.mvstore import MultiVersionStore
from repro.spanner.replication import ReplicationLog

__all__ = ["ShardLeader", "PreparedTransaction"]

#: Minimum separation between timestamps chosen by the same shard.
TS_DELTA = 1e-3


@dataclass
class PreparedTransaction:
    """State kept for a prepared-but-unresolved read-write transaction."""

    txn_id: str
    prepare_ts: float
    earliest_end_ts: float
    writes: Dict[str, Any]
    resolved: Event
    status: str = "prepared"          # prepared | committed | aborted
    commit_ts: Optional[float] = None


class ShardLeader(Node):
    """A shard's Paxos leader."""

    def __init__(self, env: Environment, network: Network, truetime: TrueTime,
                 config: SpannerConfig, name: str, site: str):
        super().__init__(env, network, name, site, cpu_time_ms=config.server_cpu_ms)
        self.truetime = truetime
        self.config = config
        self.locks = LockTable(env, wound_callback=self._wound)
        self.store = MultiVersionStore()
        self.log = ReplicationLog(
            env, leader_site=site, replica_sites=list(config.sites),
            latency=config.latency_matrix(), processing_ms=config.processing_ms,
        )
        #: txn_id -> PreparedTransaction
        self.prepared: Dict[str, PreparedTransaction] = {}
        #: Transactions aborted locally (wounded or explicitly aborted).
        self.aborted: Set[str] = set()
        self._last_prepare_ts = 0.0
        self._last_commit_ts = 0.0
        # Statistics used by the evaluation harness.
        self.stats = {
            "ro_requests": 0,
            "ro_blocked": 0,
            "ro_skipped_prepared": 0,
            "slow_replies": 0,
            "prepares": 0,
            "commits": 0,
            "aborts": 0,
            "wounds": 0,
        }

    # ------------------------------------------------------------------ #
    # Wound-wait support
    # ------------------------------------------------------------------ #
    def _wound(self, txn_id: str) -> None:
        """Abort a younger conflicting transaction, unless it already prepared."""
        if txn_id in self.prepared or txn_id in self.aborted:
            return
        self.stats["wounds"] += 1
        self.aborted.add(txn_id)
        self.locks.release_all(txn_id)

    def _is_aborted(self, txn_id: str) -> bool:
        return txn_id in self.aborted

    # ------------------------------------------------------------------ #
    # Timestamp selection
    # ------------------------------------------------------------------ #
    def _choose_prepare_ts(self) -> float:
        ts = max(
            self.truetime.now().latest,
            self._last_prepare_ts + TS_DELTA,
            self._last_commit_ts + TS_DELTA,
            self.log.max_write_ts + TS_DELTA,
        )
        self._last_prepare_ts = ts
        return ts

    def _note_commit_ts(self, commit_ts: float) -> None:
        if commit_ts > self._last_commit_ts:
            self._last_commit_ts = commit_ts

    # ------------------------------------------------------------------ #
    # Read-write transactions: execution-phase reads
    # ------------------------------------------------------------------ #
    def on_rw_read(self, message: Message):
        """Acquire read locks for a transaction and return current values."""
        payload = message.payload
        txn_id = payload["txn_id"]
        keys = payload["keys"]
        priority = payload["priority"]
        if self._is_aborted(txn_id):
            return {"status": "abort"}
        blocked_for = 0.0
        for key in keys:
            start = self.env.now
            granted = yield self.locks.acquire(key, LockMode.READ, txn_id, priority)
            blocked_for += self.env.now - start
            if not granted or self._is_aborted(txn_id):
                self.locks.release_all(txn_id)
                return {"status": "abort"}
        values = {}
        for key in keys:
            commit_ts, value, writer = self.store.read_latest(key)
            values[key] = {"value": value, "commit_ts": commit_ts, "writer": writer}
        return {"status": "ok", "values": values, "blocked_ms": blocked_for}

    # ------------------------------------------------------------------ #
    # Two-phase commit: participant
    # ------------------------------------------------------------------ #
    def on_prepare(self, message: Message):
        result = yield from self._prepare_locally(
            txn_id=message.payload["txn_id"],
            priority=message.payload["priority"],
            writes=message.payload.get("writes", {}),
            read_keys=message.payload.get("read_keys", []),
            earliest_end_ts=message.payload["earliest_end_ts"],
        )
        return result

    def _prepare_locally(self, txn_id: str, priority: float, writes: Dict[str, Any],
                         read_keys: List[str], earliest_end_ts: float):
        """Participant prepare: verify read locks, take write locks, choose a
        prepare timestamp, replicate, and record the prepared transaction."""
        if self._is_aborted(txn_id):
            return {"status": "abort"}
        # (1) Read locks must still be held (wound-wait may have revoked them).
        for key in read_keys:
            if not self.locks.holds(txn_id, key, LockMode.READ):
                self._abort_locally(txn_id)
                return {"status": "abort"}
        # (2) Acquire write locks.  The prepare phase never waits: conflicting
        # younger (unprepared) holders are wounded, and if an older or already
        # prepared holder is in the way the transaction aborts and the client
        # retries.  Never waiting here keeps two-phase commit deadlock-free
        # even though prepared transactions cannot be wounded.
        blocked_for = 0.0
        for key in sorted(writes):
            start = self.env.now
            granted = self.locks.try_write_lock(
                key, txn_id, priority,
                protected=lambda holder: holder in self.prepared,
            )
            blocked_for += self.env.now - start
            if not granted or self._is_aborted(txn_id):
                self._abort_locally(txn_id)
                return {"status": "abort"}
        # (3) Choose the prepare timestamp and optionally stretch t_ee by the
        # time spent blocked on locks (second optimization of §6).
        prepare_ts = self._choose_prepare_ts()
        if self.config.adjust_tee_for_blocking:
            earliest_end_ts += blocked_for
        # (4) Replicate the prepare record.
        yield self.env.process(
            self.log.append("prepare", {"txn_id": txn_id, "writes": writes}, prepare_ts)
        )
        if self._is_aborted(txn_id):
            self._abort_locally(txn_id)
            return {"status": "abort"}
        record = PreparedTransaction(
            txn_id=txn_id,
            prepare_ts=prepare_ts,
            earliest_end_ts=earliest_end_ts,
            writes=dict(writes),
            resolved=self.env.event(),
        )
        self.prepared[txn_id] = record
        self.stats["prepares"] += 1
        return {"status": "prepared", "prepare_ts": prepare_ts,
                "earliest_end_ts": earliest_end_ts}

    def _abort_locally(self, txn_id: str) -> None:
        self.aborted.add(txn_id)
        record = self.prepared.pop(txn_id, None)
        if record is not None:
            record.status = "aborted"
            if not record.resolved.triggered:
                record.resolved.succeed(("abort", None))
        self.locks.release_all(txn_id)
        self.stats["aborts"] += 1

    def _commit_locally(self, txn_id: str, commit_ts: float,
                        writes: Optional[Dict[str, Any]] = None) -> None:
        record = self.prepared.pop(txn_id, None)
        if record is not None:
            writes = record.writes
            record.status = "committed"
            record.commit_ts = commit_ts
        if writes:
            self.store.apply_many(writes, commit_ts, writer=txn_id)
        self._note_commit_ts(commit_ts)
        self.locks.release_all(txn_id)
        self.stats["commits"] += 1
        if record is not None and not record.resolved.triggered:
            record.resolved.succeed(("commit", commit_ts))

    def on_commit_decision(self, message: Message) -> None:
        """Commit/abort notification from the coordinator (one-way)."""
        payload = message.payload
        txn_id = payload["txn_id"]
        if payload["decision"] == "commit":
            self._commit_locally(txn_id, payload["commit_ts"])
        else:
            self._abort_locally(txn_id)

    # ------------------------------------------------------------------ #
    # Two-phase commit: coordinator
    # ------------------------------------------------------------------ #
    def on_commit_txn(self, message: Message):
        """Coordinate two-phase commit for a client's read-write transaction.

        The payload carries, per participant shard, the writes and the keys
        whose read locks must still be valid, plus the client's estimated
        earliest end time ``t_ee`` and start timestamp.
        """
        payload = message.payload
        txn_id = payload["txn_id"]
        priority = payload["priority"]
        start_ts = payload["start_ts"]
        earliest_end_ts = payload["earliest_end_ts"]
        participants: Dict[str, Dict[str, Any]] = payload["participants"]

        # Fan out prepares to the other participants while preparing locally.
        other_names = [name for name in participants if name != self.name]
        calls = []
        for shard_name in other_names:
            part = participants[shard_name]
            calls.append((shard_name, self.rpc_call(
                shard_name, "prepare",
                txn_id=txn_id, priority=priority,
                writes=part.get("writes", {}),
                read_keys=part.get("read_keys", []),
                earliest_end_ts=earliest_end_ts,
            )))
        own = participants.get(self.name, {"writes": {}, "read_keys": []})
        local_result = yield from self._prepare_locally(
            txn_id=txn_id, priority=priority,
            writes=own.get("writes", {}), read_keys=own.get("read_keys", []),
            earliest_end_ts=earliest_end_ts,
        )
        results = {self.name: local_result}
        for shard_name, call in calls:
            reply = yield call
            results[shard_name] = reply

        if any(result["status"] != "prepared" for result in results.values()):
            # Abort everywhere.
            self._abort_locally(txn_id)
            for shard_name in other_names:
                self.send(shard_name, "commit_decision", txn_id=txn_id, decision="abort")
            return {"status": "abort"}

        prepare_ts = max(result["prepare_ts"] for result in results.values())
        adjusted_tee = max(result["earliest_end_ts"] for result in results.values())
        commit_ts = max(
            prepare_ts,
            self.truetime.now().latest,
            start_ts + TS_DELTA,
            self._last_commit_ts + TS_DELTA,
        )
        # Replicate the commit record, then observe commit wait before
        # releasing locks and acknowledging (§5: commit wait).
        yield self.env.process(
            self.log.append("commit", {"txn_id": txn_id}, commit_ts)
        )
        yield from self.truetime.wait_until_after(commit_ts)
        self._commit_locally(txn_id, commit_ts)
        for shard_name in other_names:
            self.send(shard_name, "commit_decision", txn_id=txn_id,
                      decision="commit", commit_ts=commit_ts)
        return {"status": "commit", "commit_ts": commit_ts,
                "earliest_end_ts": adjusted_tee}

    # ------------------------------------------------------------------ #
    # Read-only transactions
    # ------------------------------------------------------------------ #
    def _conflicting_prepared(self, keys: List[str], t_read: float
                              ) -> List[PreparedTransaction]:
        keys_set = set(keys)
        return [
            record for record in self.prepared.values()
            if record.status == "prepared"
            and record.prepare_ts <= t_read
            and keys_set & set(record.writes)
        ]

    def _read_values(self, keys: List[str], timestamp: float) -> Dict[str, Dict[str, Any]]:
        values = {}
        for key in keys:
            commit_ts, value, writer = self.store.read_at(key, timestamp)
            values[key] = {"value": value, "commit_ts": commit_ts, "writer": writer}
        return values

    def on_ro_read(self, message: Message):
        """Spanner's read-only transaction handler (strict serializability).

        Blocks behind every conflicting prepared transaction with a prepare
        timestamp at or below the read timestamp.
        """
        payload = message.payload
        keys = payload["keys"]
        t_read = payload["t_read"]
        self.stats["ro_requests"] += 1
        conflicting = self._conflicting_prepared(keys, t_read)
        if conflicting:
            self.stats["ro_blocked"] += 1
            yield self.env.all_of([record.resolved for record in conflicting])
        return {"values": self._read_values(keys, t_read)}

    def on_ro_commit(self, message: Message):
        """Spanner-RSS's read-only transaction handler (Algorithm 2)."""
        payload = message.payload
        client = message.src
        keys = payload["keys"]
        t_read = payload["t_read"]
        t_min = payload["t_min"]
        ro_id = payload["ro_id"]
        self.stats["ro_requests"] += 1

        # Line 5: conflicting prepared transactions with t_p <= t_read.
        conflicting = self._conflicting_prepared(keys, t_read)
        # Line 6: the subset that must be observed (causal constraint) or
        # could already have finished at the client (t_ee <= t_read).
        blocking = [
            record for record in conflicting
            if record.prepare_ts <= t_min or record.earliest_end_ts <= t_read
        ]
        if blocking:
            self.stats["ro_blocked"] += 1
            yield self.env.all_of([record.resolved for record in blocking])

        skipped = [
            record for record in conflicting
            if record not in blocking and record.status == "prepared"
        ]
        self.stats["ro_skipped_prepared"] += len(skipped)

        values = self._read_values(keys, t_read)
        prepared_info = [
            {"txn_id": record.txn_id, "prepare_ts": record.prepare_ts}
            for record in skipped
        ]
        prepared_writes = {}
        if self.config.fast_path_prepared_writes:
            for record in skipped:
                relevant = {k: v for k, v in record.writes.items() if k in keys}
                if relevant:
                    prepared_writes[record.txn_id] = relevant
        self.rpc_reply(message, {
            "values": values,
            "prepared": prepared_info,
            "prepared_writes": prepared_writes,
        })

        # Lines 11-18: slow replies as skipped transactions resolve.
        for record in skipped:
            if not record.resolved.triggered:
                yield record.resolved
            self.stats["slow_replies"] += 1
            if record.status == "committed":
                commit_values = {
                    key: {"value": value, "commit_ts": record.commit_ts}
                    for key, value in record.writes.items() if key in keys
                }
                self.send(client, "ro_slow", ro_id=ro_id, txn_id=record.txn_id,
                          decision="commit", commit_ts=record.commit_ts,
                          values=commit_values)
            else:
                self.send(client, "ro_slow", ro_id=ro_id, txn_id=record.txn_id,
                          decision="abort", commit_ts=0.0, values={})
        return None

    # ------------------------------------------------------------------ #
    # Real-time fence support (§5.1)
    # ------------------------------------------------------------------ #
    def max_prepared_gap(self) -> float:
        """Observed maximum (t_c - t_ee); exposed for fence calibration tests."""
        return self.config.fence_bound_ms
