"""Spanner / Spanner-RSS shard leader (Algorithm 2 and the RW protocol of §5).

Each shard leader owns a lock table, a multi-version store, a prepared-
transaction table, and a replication log.  It plays both the participant and
the coordinator roles of two-phase commit, and serves read-only transactions
with either Spanner's blocking protocol or Spanner-RSS's Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.sim.clock import TrueTime
from repro.sim.engine import Environment, Event
from repro.sim.network import Message, Network
from repro.sim.node import Node
from repro.spanner.config import SpannerConfig, Variant
from repro.spanner.locks import LockMode, LockTable
from repro.spanner.mvstore import MultiVersionStore
from repro.spanner.replication import LeaderLease, ReplicationLog
from repro.storage.wal import WriteAheadLog

__all__ = ["ShardLeader", "PreparedTransaction"]

#: Minimum separation between timestamps chosen by the same shard.
TS_DELTA = 1e-3


@dataclass
class PreparedTransaction:
    """State kept for a prepared-but-unresolved read-write transaction."""

    txn_id: str
    prepare_ts: float
    earliest_end_ts: float
    writes: Dict[str, Any]
    resolved: Event
    status: str = "prepared"          # prepared | committed | aborted
    commit_ts: Optional[float] = None
    #: Coordinator shard for this transaction (used by crash recovery: a
    #: restarted leader aborts prepares it was itself coordinating, since
    #: the undecided 2PC state died with the process).
    coordinator: Optional[str] = None
    #: Wound-wait priority, persisted so recovery can re-take write locks.
    priority: float = 0.0


class ShardLeader(Node):
    """A shard's Paxos leader."""

    def __init__(self, env: Environment, network: Network, truetime: TrueTime,
                 config: SpannerConfig, name: str, site: str,
                 wal: Optional[WriteAheadLog] = None,
                 lease: Optional[LeaderLease] = None):
        super().__init__(env, network, name, site, cpu_time_ms=config.server_cpu_ms)
        self.truetime = truetime
        self.config = config
        self.locks = LockTable(env, wound_callback=self._wound)
        self.store = MultiVersionStore()
        self.log = ReplicationLog(
            env, leader_site=site, replica_sites=list(config.sites),
            latency=config.latency_matrix(), processing_ms=config.processing_ms,
        )
        #: txn_id -> PreparedTransaction
        self.prepared: Dict[str, PreparedTransaction] = {}
        #: Transactions aborted locally (wounded or explicitly aborted).
        self.aborted: Set[str] = set()
        self._last_prepare_ts = 0.0
        self._last_commit_ts = 0.0
        #: Optional write-ahead log (chaos engine): prepare/commit/abort
        #: transitions are durably logged before they become externally
        #: visible, and a restarted leader replays them (see
        #: :meth:`_recover_from_wal`).
        self.wal = wal
        self._replaying = False
        #: Optional lease-based election: the leader serves the write path
        #: only while it can acquire/renew the lease, and stamps the lease
        #: term onto replication-log entries.
        self.lease = lease
        # Statistics used by the evaluation harness.
        self.stats = {
            "ro_requests": 0,
            "ro_blocked": 0,
            "ro_skipped_prepared": 0,
            "slow_replies": 0,
            "prepares": 0,
            "commits": 0,
            "aborts": 0,
            "wounds": 0,
        }
        if wal is not None:
            self._recover_from_wal()

    # ------------------------------------------------------------------ #
    # Wound-wait support
    # ------------------------------------------------------------------ #
    def _wound(self, txn_id: str) -> None:
        """Abort a younger conflicting transaction, unless it already prepared."""
        if txn_id in self.prepared or txn_id in self.aborted:
            return
        self.stats["wounds"] += 1
        self.aborted.add(txn_id)
        self.locks.release_all(txn_id)

    def _is_aborted(self, txn_id: str) -> bool:
        return txn_id in self.aborted

    # ------------------------------------------------------------------ #
    # Lease-gated leadership
    # ------------------------------------------------------------------ #
    def _lease_ok(self) -> bool:
        """Acquire/renew the leader lease; refuse to serve writes without it.

        With no lease configured every request is served (the failure-free
        sims).  Serving a request renews the lease, so an active leader never
        loses it; after a crash the lease expires ``duration_ms`` after the
        last served request, and the recovered leader re-acquires it with a
        bumped term that fences its replication-log entries.
        """
        if self.lease is None:
            return True
        granted = self.lease.try_acquire(self.name, self.env.now)
        if granted:
            self.log.term = self.lease.term
        return granted

    # ------------------------------------------------------------------ #
    # Timestamp selection
    # ------------------------------------------------------------------ #
    def _choose_prepare_ts(self) -> float:
        ts = max(
            self.truetime.now().latest,
            self._last_prepare_ts + TS_DELTA,
            self._last_commit_ts + TS_DELTA,
            self.log.max_write_ts + TS_DELTA,
        )
        self._last_prepare_ts = ts
        return ts

    def _note_commit_ts(self, commit_ts: float) -> None:
        if commit_ts > self._last_commit_ts:
            self._last_commit_ts = commit_ts

    # ------------------------------------------------------------------ #
    # Read-write transactions: execution-phase reads
    # ------------------------------------------------------------------ #
    def on_rw_read(self, message: Message):
        """Acquire read locks for a transaction and return current values."""
        payload = message.payload
        txn_id = payload["txn_id"]
        keys = payload["keys"]
        priority = payload["priority"]
        if self._is_aborted(txn_id) or not self._lease_ok():
            return {"status": "abort"}
        blocked_for = 0.0
        for key in keys:
            start = self.env.now
            granted = yield self.locks.acquire(key, LockMode.READ, txn_id, priority)
            blocked_for += self.env.now - start
            if not granted or self._is_aborted(txn_id):
                self.locks.release_all(txn_id)
                return {"status": "abort"}
        values = {}
        for key in keys:
            commit_ts, value, writer = self.store.read_latest(key)
            values[key] = {"value": value, "commit_ts": commit_ts, "writer": writer}
        return {"status": "ok", "values": values, "blocked_ms": blocked_for}

    # ------------------------------------------------------------------ #
    # Two-phase commit: participant
    # ------------------------------------------------------------------ #
    def on_prepare(self, message: Message):
        result = yield from self._prepare_locally(
            txn_id=message.payload["txn_id"],
            priority=message.payload["priority"],
            writes=message.payload.get("writes", {}),
            read_keys=message.payload.get("read_keys", []),
            earliest_end_ts=message.payload["earliest_end_ts"],
            coordinator=message.src,
        )
        return result

    def _prepare_locally(self, txn_id: str, priority: float, writes: Dict[str, Any],
                         read_keys: List[str], earliest_end_ts: float,
                         coordinator: Optional[str] = None):
        """Participant prepare: verify read locks, take write locks, choose a
        prepare timestamp, replicate, and record the prepared transaction."""
        if self._is_aborted(txn_id) or not self._lease_ok():
            return {"status": "abort"}
        existing = self.prepared.get(txn_id)
        if existing is not None:
            # Duplicate prepare (at-least-once redelivery across a reconnect,
            # or a coordinator retry): answer with the recorded decision
            # instead of re-running lock acquisition against ourselves.
            return {"status": "prepared", "prepare_ts": existing.prepare_ts,
                    "earliest_end_ts": existing.earliest_end_ts}
        # (1) Read locks must still be held (wound-wait may have revoked them).
        for key in read_keys:
            if not self.locks.holds(txn_id, key, LockMode.READ):
                self._abort_locally(txn_id)
                return {"status": "abort"}
        # (2) Acquire write locks.  The prepare phase never waits: conflicting
        # younger (unprepared) holders are wounded, and if an older or already
        # prepared holder is in the way the transaction aborts and the client
        # retries.  Never waiting here keeps two-phase commit deadlock-free
        # even though prepared transactions cannot be wounded.
        blocked_for = 0.0
        for key in sorted(writes):
            start = self.env.now
            granted = self.locks.try_write_lock(
                key, txn_id, priority,
                protected=lambda holder: holder in self.prepared,
            )
            blocked_for += self.env.now - start
            if not granted or self._is_aborted(txn_id):
                self._abort_locally(txn_id)
                return {"status": "abort"}
        # (3) Choose the prepare timestamp and optionally stretch t_ee by the
        # time spent blocked on locks (second optimization of §6).
        prepare_ts = self._choose_prepare_ts()
        if self.config.adjust_tee_for_blocking:
            earliest_end_ts += blocked_for
        # (4) Replicate the prepare record.
        yield self.env.process(
            self.log.append("prepare", {"txn_id": txn_id, "writes": writes}, prepare_ts)
        )
        if self._is_aborted(txn_id):
            self._abort_locally(txn_id)
            return {"status": "abort"}
        record = PreparedTransaction(
            txn_id=txn_id,
            prepare_ts=prepare_ts,
            earliest_end_ts=earliest_end_ts,
            writes=dict(writes),
            resolved=self.env.event(),
            coordinator=coordinator,
            priority=priority,
        )
        self.prepared[txn_id] = record
        self.stats["prepares"] += 1
        self._wal_append({
            "kind": "prepare", "txn_id": txn_id, "prepare_ts": prepare_ts,
            "earliest_end_ts": earliest_end_ts, "writes": dict(writes),
            "priority": priority, "coordinator": coordinator,
        })
        return {"status": "prepared", "prepare_ts": prepare_ts,
                "earliest_end_ts": earliest_end_ts}

    def _abort_locally(self, txn_id: str) -> None:
        newly = txn_id not in self.aborted
        self.aborted.add(txn_id)
        record = self.prepared.pop(txn_id, None)
        if record is not None:
            record.status = "aborted"
            if not record.resolved.triggered:
                record.resolved.succeed(("abort", None))
        self.locks.release_all(txn_id)
        self.stats["aborts"] += 1
        if newly or record is not None:
            self._wal_append({"kind": "abort", "txn_id": txn_id})

    def _commit_locally(self, txn_id: str, commit_ts: float,
                        writes: Optional[Dict[str, Any]] = None) -> None:
        record = self.prepared.pop(txn_id, None)
        if record is None and writes is None:
            # A duplicate commit decision (at-least-once redelivery) for a
            # transaction already resolved: only advance the clock marker.
            self._note_commit_ts(commit_ts)
            return
        if record is not None:
            writes = record.writes
            record.status = "committed"
            record.commit_ts = commit_ts
        if writes:
            self.store.apply_many(writes, commit_ts, writer=txn_id)
        self._wal_append({"kind": "commit", "txn_id": txn_id,
                          "commit_ts": commit_ts, "writes": dict(writes or {})})
        self._note_commit_ts(commit_ts)
        self.locks.release_all(txn_id)
        self.stats["commits"] += 1
        if record is not None and not record.resolved.triggered:
            record.resolved.succeed(("commit", commit_ts))

    def on_commit_decision(self, message: Message) -> None:
        """Commit/abort notification from the coordinator (one-way)."""
        payload = message.payload
        txn_id = payload["txn_id"]
        if payload["decision"] == "commit":
            self._commit_locally(txn_id, payload["commit_ts"])
        else:
            self._abort_locally(txn_id)

    # ------------------------------------------------------------------ #
    # Two-phase commit: coordinator
    # ------------------------------------------------------------------ #
    def on_commit_txn(self, message: Message):
        """Coordinate two-phase commit for a client's read-write transaction.

        The payload carries, per participant shard, the writes and the keys
        whose read locks must still be valid, plus the client's estimated
        earliest end time ``t_ee`` and start timestamp.
        """
        payload = message.payload
        txn_id = payload["txn_id"]
        priority = payload["priority"]
        start_ts = payload["start_ts"]
        earliest_end_ts = payload["earliest_end_ts"]
        participants: Dict[str, Dict[str, Any]] = payload["participants"]
        if not self._lease_ok():
            return {"status": "abort"}

        # Fan out prepares to the other participants while preparing locally.
        other_names = [name for name in participants if name != self.name]
        calls = []
        for shard_name in other_names:
            part = participants[shard_name]
            calls.append((shard_name, self.rpc_call(
                shard_name, "prepare",
                txn_id=txn_id, priority=priority,
                writes=part.get("writes", {}),
                read_keys=part.get("read_keys", []),
                earliest_end_ts=earliest_end_ts,
            )))
        own = participants.get(self.name, {"writes": {}, "read_keys": []})
        local_result = yield from self._prepare_locally(
            txn_id=txn_id, priority=priority,
            writes=own.get("writes", {}), read_keys=own.get("read_keys", []),
            earliest_end_ts=earliest_end_ts,
            coordinator=self.name,
        )
        results = {self.name: local_result}
        for shard_name, call in calls:
            reply = yield call
            results[shard_name] = reply

        if any(result["status"] != "prepared" for result in results.values()):
            # Abort everywhere.
            self._abort_locally(txn_id)
            for shard_name in other_names:
                self.send(shard_name, "commit_decision", txn_id=txn_id, decision="abort")
            return {"status": "abort"}

        prepare_ts = max(result["prepare_ts"] for result in results.values())
        adjusted_tee = max(result["earliest_end_ts"] for result in results.values())
        commit_ts = max(
            prepare_ts,
            self.truetime.now().latest,
            start_ts + TS_DELTA,
            self._last_commit_ts + TS_DELTA,
        )
        # Replicate the commit record, then observe commit wait before
        # releasing locks and acknowledging (§5: commit wait).
        yield self.env.process(
            self.log.append("commit", {"txn_id": txn_id}, commit_ts)
        )
        yield from self.truetime.wait_until_after(commit_ts)
        self._commit_locally(txn_id, commit_ts)
        for shard_name in other_names:
            self.send(shard_name, "commit_decision", txn_id=txn_id,
                      decision="commit", commit_ts=commit_ts)
        return {"status": "commit", "commit_ts": commit_ts,
                "earliest_end_ts": adjusted_tee}

    # ------------------------------------------------------------------ #
    # Read-only transactions
    # ------------------------------------------------------------------ #
    def _conflicting_prepared(self, keys: List[str], t_read: float
                              ) -> List[PreparedTransaction]:
        keys_set = set(keys)
        return [
            record for record in self.prepared.values()
            if record.status == "prepared"
            and record.prepare_ts <= t_read
            and keys_set & set(record.writes)
        ]

    def _read_values(self, keys: List[str], timestamp: float) -> Dict[str, Dict[str, Any]]:
        values = {}
        for key in keys:
            commit_ts, value, writer = self.store.read_at(key, timestamp)
            values[key] = {"value": value, "commit_ts": commit_ts, "writer": writer}
        return values

    def on_ro_read(self, message: Message):
        """Spanner's read-only transaction handler (strict serializability).

        Blocks behind every conflicting prepared transaction with a prepare
        timestamp at or below the read timestamp.
        """
        payload = message.payload
        keys = payload["keys"]
        t_read = payload["t_read"]
        self.stats["ro_requests"] += 1
        conflicting = self._conflicting_prepared(keys, t_read)
        if conflicting:
            self.stats["ro_blocked"] += 1
            yield self.env.all_of([record.resolved for record in conflicting])
        return {"values": self._read_values(keys, t_read)}

    def on_ro_commit(self, message: Message):
        """Spanner-RSS's read-only transaction handler (Algorithm 2)."""
        payload = message.payload
        client = message.src
        keys = payload["keys"]
        t_read = payload["t_read"]
        t_min = payload["t_min"]
        ro_id = payload["ro_id"]
        self.stats["ro_requests"] += 1

        # Line 5: conflicting prepared transactions with t_p <= t_read.
        conflicting = self._conflicting_prepared(keys, t_read)
        # Line 6: the subset that must be observed (causal constraint) or
        # could already have finished at the client (t_ee <= t_read).
        blocking = [
            record for record in conflicting
            if record.prepare_ts <= t_min or record.earliest_end_ts <= t_read
        ]
        if blocking:
            self.stats["ro_blocked"] += 1
            yield self.env.all_of([record.resolved for record in blocking])

        skipped = [
            record for record in conflicting
            if record not in blocking and record.status == "prepared"
        ]
        self.stats["ro_skipped_prepared"] += len(skipped)

        values = self._read_values(keys, t_read)
        prepared_info = [
            {"txn_id": record.txn_id, "prepare_ts": record.prepare_ts}
            for record in skipped
        ]
        prepared_writes = {}
        if self.config.fast_path_prepared_writes:
            for record in skipped:
                relevant = {k: v for k, v in record.writes.items() if k in keys}
                if relevant:
                    prepared_writes[record.txn_id] = relevant
        self.rpc_reply(message, {
            "values": values,
            "prepared": prepared_info,
            "prepared_writes": prepared_writes,
        })

        # Lines 11-18: slow replies as skipped transactions resolve.
        for record in skipped:
            if not record.resolved.triggered:
                yield record.resolved
            self.stats["slow_replies"] += 1
            if record.status == "committed":
                commit_values = {
                    key: {"value": value, "commit_ts": record.commit_ts}
                    for key, value in record.writes.items() if key in keys
                }
                self.send(client, "ro_slow", ro_id=ro_id, txn_id=record.txn_id,
                          decision="commit", commit_ts=record.commit_ts,
                          values=commit_values)
            else:
                self.send(client, "ro_slow", ro_id=ro_id, txn_id=record.txn_id,
                          decision="abort", commit_ts=0.0, values={})
        return None

    # ------------------------------------------------------------------ #
    # Key-range migration (fleet layer)
    # ------------------------------------------------------------------ #
    def on_mig_dump(self, message: Message):
        """Dump every committed version for a migration copy.

        The controller filters to the moving key range client-side, so the
        shard stays placement-blind.
        """
        return {"versions": [
            [key, commit_ts, value, writer]
            for key, commit_ts, value, writer in self.store.all_versions()]}

    def on_mig_install(self, message: Message):
        """Install migrated versions preserving their original commit
        timestamps and writers.

        Each installed version is WAL-journaled as an ordinary ``commit``
        record, so crash recovery replays it with zero new code paths; a
        version whose exact timestamp is already present is skipped, which
        makes re-installs and races with live dual-writes idempotent.
        """
        installed = 0
        for key, commit_ts, value, writer in message.payload["versions"]:
            ts = float(commit_ts)
            existing_ts, _, _ = self.store.read_at(key, ts)
            if existing_ts == ts:
                continue
            self.store.apply(key, value, ts, writer=writer)
            # Journaled under a "mig:" txn id so recovery replay can never
            # collide with a prepare this shard holds for the original txn.
            self._wal_append({"kind": "commit", "txn_id": f"mig:{writer}",
                              "commit_ts": ts, "writes": {key: value}})
            self._note_commit_ts(ts)
            installed += 1
        return {"ack": True, "installed": installed}

    def on_mig_purge(self, message: Message):
        """Drop versions of keys that migrated away (post-flip cleanup)."""
        removed = 0
        for key in message.payload["keys"]:
            removed += self.store.purge(key)
        if removed:
            self._wal_append({"kind": "mig_purge",
                              "keys": list(message.payload["keys"])})
        return {"ack": True, "removed": removed}

    # ------------------------------------------------------------------ #
    # Real-time fence support (§5.1)
    # ------------------------------------------------------------------ #
    def max_prepared_gap(self) -> float:
        """Observed maximum (t_c - t_ee); exposed for fence calibration tests."""
        return self.config.fence_bound_ms

    # ------------------------------------------------------------------ #
    # Durability (chaos engine)
    # ------------------------------------------------------------------ #
    def _wal_append(self, record: Dict[str, Any]) -> None:
        if self.wal is not None and not self._replaying:
            self.wal.append(record)
            self.wal.maybe_checkpoint(self._wal_state)

    def _wal_state(self) -> Dict[str, Any]:
        """Full shard state for a WAL checkpoint."""
        return {
            "versions": [[key, commit_ts, value, writer]
                         for key, commit_ts, value, writer
                         in self.store.all_versions()],
            "prepared": {
                txn_id: {"prepare_ts": record.prepare_ts,
                         "earliest_end_ts": record.earliest_end_ts,
                         "writes": dict(record.writes),
                         "priority": record.priority,
                         "coordinator": record.coordinator}
                for txn_id, record in self.prepared.items()
                if record.status == "prepared"},
            "aborted": sorted(self.aborted),
            "last_prepare_ts": self._last_prepare_ts,
            "last_commit_ts": self._last_commit_ts,
            "max_write_ts": self.log.max_write_ts,
        }

    def _recover_from_wal(self) -> None:
        """Rebuild shard state from checkpoint + surviving log records.

        Committed versions, the aborted set, and the timestamp monotonicity
        markers are restored directly.  Prepared-but-undecided transactions
        are re-instated with fresh resolution events and re-acquired write
        locks (the lock table is volatile) — except those this shard was
        itself *coordinating*: their 2PC decision state died with the
        process, and since the decision had not been durably committed here,
        no participant can have applied it, so aborting them is safe (the
        client never received an acknowledgement).
        """
        snapshot = self.wal.recover()
        self._replaying = True
        try:
            state = snapshot.state or {}
            for key, commit_ts, value, writer in state.get("versions", []):
                self.store.apply(key, value, commit_ts, writer=writer)
            self.aborted.update(state.get("aborted", []))
            self._last_prepare_ts = float(state.get("last_prepare_ts", 0.0))
            self._last_commit_ts = float(state.get("last_commit_ts", 0.0))
            self.log.max_write_ts = float(state.get("max_write_ts", 0.0))
            pending: Dict[str, Dict[str, Any]] = dict(state.get("prepared", {}))
            for record in snapshot.records:
                kind = record.get("kind")
                txn_id = record.get("txn_id")
                if kind == "prepare":
                    pending[txn_id] = {
                        key: record.get(key)
                        for key in ("prepare_ts", "earliest_end_ts", "writes",
                                    "priority", "coordinator")}
                    self._last_prepare_ts = max(self._last_prepare_ts,
                                                float(record["prepare_ts"]))
                elif kind == "commit":
                    entry = pending.pop(txn_id, None)
                    writes = record.get("writes") or (entry or {}).get("writes") or {}
                    commit_ts = float(record["commit_ts"])
                    self.store.apply_many(writes, commit_ts, writer=txn_id)
                    self._note_commit_ts(commit_ts)
                elif kind == "abort":
                    pending.pop(txn_id, None)
                    self.aborted.add(txn_id)
                elif kind == "mig_purge":
                    for key in record.get("keys", []):
                        self.store.purge(key)
            for txn_id in sorted(pending):
                entry = pending[txn_id]
                if entry.get("coordinator") == self.name:
                    # Own coordination state is gone; the decision was never
                    # durably taken, so abort is the only safe resolution.
                    self.aborted.add(txn_id)
                    self._wal_replay_abort(txn_id)
                    continue
                restored = PreparedTransaction(
                    txn_id=txn_id,
                    prepare_ts=float(entry["prepare_ts"]),
                    earliest_end_ts=float(entry["earliest_end_ts"]),
                    writes=dict(entry.get("writes") or {}),
                    resolved=self.env.event(),
                    coordinator=entry.get("coordinator"),
                    priority=float(entry.get("priority") or 0.0),
                )
                self.prepared[txn_id] = restored
                for key in sorted(restored.writes):
                    self.locks.try_write_lock(
                        key, txn_id, restored.priority,
                        protected=lambda holder: holder in self.prepared)
            self.log.max_write_ts = max(self.log.max_write_ts,
                                        self._last_prepare_ts,
                                        self._last_commit_ts)
        finally:
            self._replaying = False

    def _wal_replay_abort(self, txn_id: str) -> None:
        """Durably record an abort decided *during* recovery."""
        if self.wal is not None:
            self.wal.append({"kind": "abort", "txn_id": txn_id})
