"""Assembly of a complete simulated Spanner / Spanner-RSS deployment."""

from __future__ import annotations

import itertools
import os
import random
from typing import Dict, Iterable, List, Optional

from repro.core.events import Operation
from repro.core.history import History
from repro.core.checkers import check_with_witness
from repro.core.checkers.base import CheckResult
from repro.core.checkers.witness import order_by_timestamp
from repro.core.specification import TransactionalKVSpec
from repro.sim.clock import TrueTime
from repro.sim.engine import Environment
from repro.sim.network import Network
from repro.sim.stats import LatencyRecorder
from repro.spanner.client import SpannerClient
from repro.spanner.config import SpannerConfig, Variant
from repro.spanner.shard import ShardLeader

__all__ = ["SpannerCluster", "spanner_witness_order",
           "augment_with_server_commits"]


def spanner_witness_order(history: History) -> List[Operation]:
    """The serialization implied by commit/snapshot timestamps (Theorem
    D.5's construction).  Works on any history whose operations carry
    ``meta["commit_ts"]`` / ``meta["snapshot_ts"]`` — simulated runs and
    live traces alike."""
    def key(op):
        ts = op.meta.get("commit_ts", op.meta.get("snapshot_ts", 0.0))
        return (ts, 0 if op.is_mutation else 1, op.invoked_at, op.op_id)

    return order_by_timestamp(history, key)


def augment_with_server_commits(history: History, shards: Iterable[ShardLeader],
                                invoked_at: float = 0.0) -> History:
    """Augment ``history`` with server-committed transactions no client
    recorded.

    A client may crash (or, under chaos, time out and abandon the attempt)
    after initiating two-phase commit; the transaction can still commit at
    the shards even though the client never recorded it.  The model's
    "add zero or more responses" clause covers exactly this case: such
    transactions are reconstructed from the shards' version stores and added
    as *pending* operations so that readers of their values have a writer in
    the history.  ``invoked_at`` places the reconstructed invocations — the
    chaos engine passes the start of the fault window so that epochs cut
    before the faults began remain independently checkable.
    """
    known_txn_ids = {
        op.meta.get("txn_id") for op in history if op.meta.get("txn_id")
    }
    orphans: Dict[str, Dict] = {}
    for shard in shards:
        for key, commit_ts, value, writer in shard.store.all_versions():
            if writer is None or writer in known_txn_ids:
                continue
            record = orphans.setdefault(writer, {"writes": {}, "commit_ts": commit_ts})
            record["writes"][key] = value
            record["commit_ts"] = max(record["commit_ts"], commit_ts)
    if not orphans:
        return history
    augmented = History()
    augmented.extend(history)
    for txn_id, record in sorted(orphans.items()):
        # The client abandoned this attempt, so its outcome is indeterminate
        # to that session: the reconstruction must not create process-order
        # edges against the client's later operations.  Each orphan gets its
        # own synthetic single-op process (the txn id is unique).
        augmented.add(Operation.rw_txn(
            txn_id, read_set={}, write_set=record["writes"],
            invoked_at=invoked_at, responded_at=None,
            commit_ts=record["commit_ts"], txn_id=txn_id, reconstructed=True,
        ))
    return augmented


class SpannerCluster:
    """A simulated deployment: environment, network, TrueTime, shard leaders.

    The cluster also aggregates a shared history and latency recorder across
    all the clients it creates, so experiment drivers can produce the paper's
    figures directly and integration tests can validate consistency.
    """

    def __init__(self, config: Optional[SpannerConfig] = None,
                 wal_dir: Optional[str] = None,
                 leases: Optional[Dict[str, "LeaderLease"]] = None):
        self.config = config or SpannerConfig()
        self.env = Environment()
        self.network = Network(
            self.env,
            latency=self.config.latency_matrix(),
            jitter_ms=self.config.jitter_ms,
            processing_ms=self.config.processing_ms,
            seed=self.config.seed,
        )
        self.truetime = TrueTime(self.env, epsilon=self.config.truetime_epsilon_ms)
        self.history = History()
        self.recorder = LatencyRecorder()
        #: When set, every shard leader appends to ``<wal_dir>/<name>.wal``
        #: and crash/restart (chaos engine) recovers from it.
        self.wal_dir = wal_dir
        #: Optional per-shard :class:`~repro.spanner.replication.LeaderLease`.
        self.leases = dict(leases or {})
        self.shards: Dict[str, ShardLeader] = {}
        for index in range(self.config.num_shards):
            name = self.config.shard_name(index)
            site = self.config.leader_site(index)
            self.shards[name] = ShardLeader(
                self.env, self.network, self.truetime, self.config,
                name=name, site=site,
                wal=self._wal_for(name), lease=self.leases.get(name),
            )
        self.clients: List[SpannerClient] = []
        self._client_counter = itertools.count(1)

    def _wal_for(self, name: str):
        if self.wal_dir is None:
            return None
        from repro.storage.wal import WriteAheadLog

        return WriteAheadLog(os.path.join(self.wal_dir, f"{name}.wal"))

    # ------------------------------------------------------------------ #
    # Crash / restart (chaos engine)
    # ------------------------------------------------------------------ #
    def crash_shard(self, name: str) -> ShardLeader:
        """Kill -9 a shard leader (see ``GryffCluster.crash_replica``)."""
        shard = self.shards[name]
        if shard.wal is not None:
            shard.wal.close()
        shard.stop()
        return shard

    def restart_shard(self, name: str) -> ShardLeader:
        """Restart a crashed leader, recovering its state from the WAL.

        The recovered leader shares the cluster's TrueTime (a restarted
        process re-synchronises its clock) and re-contends for its lease —
        which, having expired during the outage, is granted with a bumped
        term."""
        index = self.config.all_shard_names().index(name)
        self.network.deregister(name)
        shard = ShardLeader(
            self.env, self.network, self.truetime, self.config,
            name=name, site=self.config.leader_site(index),
            wal=self._wal_for(name), lease=self.leases.get(name),
        )
        self.shards[name] = shard
        return shard

    # ------------------------------------------------------------------ #
    # Client management
    # ------------------------------------------------------------------ #
    def new_client(self, site: str, name: Optional[str] = None,
                   record_history: bool = True) -> SpannerClient:
        """Create a client session located at ``site``."""
        name = name or f"client{next(self._client_counter)}@{site}"
        client = SpannerClient(
            self.env, self.network, self.truetime, self.config,
            name=name, site=site,
            history=self.history, recorder=self.recorder,
            record_history=record_history,
        )
        self.clients.append(client)
        return client

    # ------------------------------------------------------------------ #
    # Execution helpers
    # ------------------------------------------------------------------ #
    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation until quiescence or ``until`` (ms)."""
        return self.env.run(until=until)

    def spawn(self, generator):
        """Start a client workload process."""
        return self.env.process(generator)

    # ------------------------------------------------------------------ #
    # Statistics and verification
    # ------------------------------------------------------------------ #
    def shard_stats(self) -> Dict[str, Dict[str, int]]:
        return {name: dict(shard.stats) for name, shard in self.shards.items()}

    def total_committed(self) -> int:
        return sum(client.committed for client in self.clients)

    def kv_history(self) -> History:
        """The recorded history restricted to the key-value store service.

        Applications (e.g. the photo-sharing example) may share the cluster
        history with other services; the Spanner consistency check concerns
        only its own operations.
        """
        if len(self.history.services()) <= 1:
            return self.history
        return self.history.restricted_to_service("kv")

    def _history_for_checking(self) -> History:
        """The kv history augmented with server-side-committed transactions.

        A client may crash after initiating two-phase commit; the transaction
        can still commit at the shards even though the client never recorded
        it.  The model's "add zero or more responses" clause covers exactly
        this case: such transactions are reconstructed from the shards'
        version stores and added as pending operations so that readers of
        their values have a writer in the history.
        """
        return augment_with_server_commits(self.kv_history(),
                                           self.shards.values())

    def witness_order(self, history: Optional[History] = None):
        """The serialization implied by commit/snapshot timestamps
        (see :func:`spanner_witness_order`)."""
        return spanner_witness_order(history or self.kv_history())

    def check_consistency(self, model: Optional[str] = None) -> CheckResult:
        """Validate the recorded history against the deployment's model.

        Spanner must be strictly serializable; Spanner-RSS must satisfy RSS.
        """
        if model is None:
            model = ("strict_serializability"
                     if self.config.variant == Variant.SPANNER else "rss")
        history = self._history_for_checking()
        return check_with_witness(
            history, self.witness_order(history), model=model,
            spec=TransactionalKVSpec(),
        )
