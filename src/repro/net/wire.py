"""Length-prefixed JSON wire codec.

Every frame on a live-cluster connection is a 4-byte big-endian length
followed by a UTF-8 JSON object.  Data frames carry one protocol message:

.. code-block:: json

   {"v": 1, "src": "client1@CA", "dst": "replica0",
    "kind": "read1", "payload": {...}, "send_time": 123.4}

JSON keeps the codec debuggable (``nc``-able) and matches the payload
conventions of the simulated network: payloads are dicts of scalars, lists,
and nested dicts.  Tuples (Gryff carstamps) become lists in flight; the
protocol code already normalizes with ``tuple()``/indexing on receipt, so
the sim and live wire formats are interchangeable.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Callable, Dict, Optional

from repro.sim.network import Message

__all__ = [
    "WIRE_VERSION",
    "MAX_FRAME_BYTES",
    "WireError",
    "encode_frame",
    "read_frame",
    "FrameDecoder",
    "message_to_frame",
    "frame_to_message",
]

WIRE_VERSION = 1

#: Upper bound on one frame; a peer announcing more is treated as corrupt.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class WireError(Exception):
    """Raised for malformed or oversized frames."""


def encode_frame(record: Dict[str, Any]) -> bytes:
    """Serialize one record to a length-prefixed JSON frame."""
    body = json.dumps(record, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(body)) + body


async def read_frame(
    reader: "asyncio.StreamReader",
    on_bytes: "Optional[Callable[[int], None]]" = None,
) -> Optional[Dict[str, Any]]:
    """Read one frame; returns ``None`` on a clean EOF at a frame boundary.

    ``on_bytes``, when given, is called with the frame's total wire size
    (header + body) once the frame is fully read — the transport's
    bytes-received accounting.
    """
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireError("connection closed mid-frame") from exc
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"peer announced a {length}-byte frame")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise WireError("connection closed mid-frame") from exc
    if on_bytes is not None:
        on_bytes(_LENGTH.size + length)
    return _decode_body(body)


def _decode_body(body: bytes) -> Dict[str, Any]:
    """Decode one frame body to a record, with the shared error contract."""
    try:
        record = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable frame: {exc}") from exc
    if not isinstance(record, dict):
        raise WireError(f"frame is not an object: {record!r}")
    return record


class FrameDecoder:
    """Incremental frame decoder for arbitrarily fragmented byte streams.

    :func:`read_frame` already handles partial reads on an asyncio stream
    (``readexactly`` resumes across any fragmentation — the regression tests
    feed it one byte at a time); this class provides the same decoding for
    callers that receive raw chunks (tests, tools, non-asyncio transports).
    ``feed`` buffers fragments and returns every completed record, raising
    :class:`WireError` for oversized or undecodable frames as soon as the
    offending header/body is complete — an announced oversize is rejected
    from the 4 header bytes alone, before any body arrives.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward the next (incomplete) frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> "list[Dict[str, Any]]":
        records = []
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < _LENGTH.size:
                return records
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise WireError(f"peer announced a {length}-byte frame")
            end = _LENGTH.size + length
            if len(self._buffer) < end:
                return records
            body = bytes(self._buffer[_LENGTH.size:end])
            del self._buffer[:end]
            records.append(_decode_body(body))


def message_to_frame(message: Message) -> Dict[str, Any]:
    """The wire record for one protocol message."""
    return {
        "v": WIRE_VERSION,
        "src": message.src,
        "dst": message.dst,
        "kind": message.kind,
        "payload": message.payload,
        "send_time": message.send_time,
        "msg_id": message.msg_id,
    }


def frame_to_message(record: Dict[str, Any], deliver_time: float) -> Message:
    """Rebuild a :class:`~repro.sim.network.Message` from a data frame."""
    try:
        return Message(
            src=record["src"],
            dst=record["dst"],
            kind=record["kind"],
            payload=record.get("payload"),
            send_time=record.get("send_time", 0.0),
            deliver_time=deliver_time,
            msg_id=record.get("msg_id", 0),
        )
    except KeyError as exc:
        raise WireError(f"data frame missing field {exc}") from exc
