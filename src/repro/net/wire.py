"""Length-prefixed wire codec: JSON v1 and binary v2.

Every frame on a live-cluster connection is a 4-byte big-endian length
followed by a body.  The first body byte selects the codec version:

* ``{`` (0x7B) — a UTF-8 JSON object, the v1 data frame::

     {"v": 1, "src": "client1@CA", "dst": "replica0",
      "kind": "read1", "payload": {...}, "send_time": 123.4, "msg_id": 7}

* ``0xB2`` — a binary v2 frame: magic byte, frame-type byte, then a
  struct-packed body (layout diagram in ``docs/live_runtime.md``).  Three
  frame types exist:

  - ``HELLO`` (1): the sender's wire version plus a snapshot of its
    string-intern table.  Sent first on every (re)connection, so the
    receiver can resolve interned ids even after the sender reconnects
    mid-run with a warm table.
  - ``MSG`` (2): one protocol message.
  - ``BATCH`` (3): a varint message count followed by that many messages —
    the unit the transport coalesces one event-loop tick's sends into.

  A message is ``src``/``dst``/``kind`` as interned-string refs,
  ``send_time`` as a big-endian float64, ``msg_id`` as a varint, and the
  payload as a msgpack-style tagged value tree (None/bool/int/float/str/
  list/dict; dict keys are interned — protocol payloads repeat the same
  small key set millions of times).  An interned-string ref is
  ``varint(id << 1 | define)``; with ``define`` set, a varint byte length
  and the UTF-8 bytes follow and the receiver learns the mapping.
  Receivers keep one intern table per connection (inside their
  :class:`FrameDecoder`); senders keep theirs per channel, surviving
  reconnects — the HELLO snapshot re-synchronizes the other side.

Because version dispatch is per-frame, a v2 listener serves a v1 (JSON)
connection transparently: replies go out in JSON unless a v2 HELLO arrived
on that connection first.  JSON stays the ``nc``-able debug codec
(``--codec json``); payload semantics are identical in both directions
(tuples become lists in flight, which the protocol code re-normalizes on
receipt), so the sim and live wire formats remain interchangeable.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.sim.network import Message

__all__ = [
    "WIRE_VERSION",
    "JSON_WIRE_VERSION",
    "BINARY_MAGIC",
    "MAX_FRAME_BYTES",
    "WireError",
    "encode_frame",
    "read_frame",
    "BinaryEncoder",
    "FrameDecoder",
    "message_to_frame",
    "frame_to_message",
]

#: Current (binary) wire version announced in HELLO frames.
WIRE_VERSION = 2
#: The length-prefixed JSON format every peer understands.
JSON_WIRE_VERSION = 1

#: First body byte of every v2 frame.  JSON bodies always start with ``{``
#: (0x7B), so one byte distinguishes the codecs per-frame.
BINARY_MAGIC = 0xB2

_FT_HELLO = 1
_FT_MSG = 2
_FT_BATCH = 3

_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3
_T_FLOAT = 4
_T_STR = 5
_T_LIST = 6
_T_DICT = 7

#: Upper bound on one frame; a peer announcing more is treated as corrupt.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")
_FLOAT = struct.Struct(">d")


class WireError(Exception):
    """Raised for malformed or oversized frames."""


def encode_frame(record: Dict[str, Any]) -> bytes:
    """Serialize one record to a length-prefixed JSON (v1) frame."""
    body = json.dumps(record, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(body)) + body


async def read_frame(
    reader: "asyncio.StreamReader",
    on_bytes: "Optional[Callable[[int], None]]" = None,
) -> Optional[Dict[str, Any]]:
    """Read one JSON (v1) frame; returns ``None`` on a clean EOF at a frame
    boundary.

    This is the single-frame v1 helper kept for tools and tests that speak
    raw JSON over a socket (the ``nc``-able path).  The transport itself
    reads through :class:`FrameDecoder`, which also understands v2 binary
    frames (a v2 BATCH decodes to *several* records, which does not fit
    this one-record-per-call contract).

    ``on_bytes``, when given, is called with the frame's total wire size
    (header + body) once the frame is fully read.
    """
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireError("connection closed mid-frame") from exc
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"peer announced a {length}-byte frame")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise WireError("connection closed mid-frame") from exc
    if on_bytes is not None:
        on_bytes(_LENGTH.size + length)
    return _decode_body(body)


def _decode_body(body: bytes) -> Dict[str, Any]:
    """Decode one JSON frame body to a record, with the error contract."""
    try:
        record = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable frame: {exc}") from exc
    if not isinstance(record, dict):
        raise WireError(f"frame is not an object: {record!r}")
    return record


# --------------------------------------------------------------------- #
# Binary v2 primitives
# --------------------------------------------------------------------- #
def _write_varint(out: bytearray, value: int) -> None:
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_varint(view, pos: int, end: int) -> "tuple[int, int]":
    result = 0
    shift = 0
    while True:
        if pos >= end:
            raise WireError("truncated varint in v2 frame")
        byte = view[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise WireError("varint too long in v2 frame")


#: Cap on interned strings per channel.  Data-dependent dict keys (Spanner
#: write maps are keyed by user keys) would otherwise grow the sender table
#: — and every reconnect HELLO — without bound; once full, unseen strings
#: travel as one-shot literals (define ref 0) and are not remembered.
_INTERN_LIMIT = 4096


def _frame(body: bytearray) -> bytes:
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(body)) + bytes(body)


def _coerce_key(key: Any) -> str:
    """Match ``json.dumps``'s coercion of non-string dict keys, so a payload
    round-trips identically through either codec."""
    if key is True:
        return "true"
    if key is False:
        return "false"
    if key is None:
        return "null"
    if isinstance(key, (int, float)):
        return str(key)
    raise WireError(f"unencodable dict key: {key!r}")


class BinaryEncoder:
    """Per-channel sender state for the v2 binary codec.

    The intern table grows monotonically for the channel's lifetime and is
    never reset: after a reconnect the channel sends :meth:`hello_frame`
    (a full snapshot) before any data, so the receiving side's fresh
    per-connection table catches up to every id already assigned here.
    Inline re-definitions from a re-sent in-flight frame are harmless —
    they overwrite an existing id with the identical string.  Growth stops
    at ``_INTERN_LIMIT`` entries: past that, strings the table has not
    seen travel as one-shot literals, so data-dependent dict keys cannot
    balloon the table (or the HELLO snapshot) on a long-lived channel.
    """

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}

    def hello_frame(self) -> bytes:
        """HELLO: wire version + a snapshot of the intern table so far."""
        body = bytearray((BINARY_MAGIC, _FT_HELLO))
        _write_varint(body, WIRE_VERSION)
        _write_varint(body, len(self._ids))
        for text in self._ids:  # dict insertion order == id order
            data = text.encode("utf-8")
            _write_varint(body, len(data))
            body += data
        return _frame(body)

    def encode_batch(self, messages: "Sequence[Message]") -> bytes:
        """One MSG frame for a single message, else one BATCH frame."""
        if len(messages) == 1:
            body = bytearray((BINARY_MAGIC, _FT_MSG))
            self._encode_message(body, messages[0])
        else:
            body = bytearray((BINARY_MAGIC, _FT_BATCH))
            _write_varint(body, len(messages))
            for message in messages:
                self._encode_message(body, message)
        return _frame(body)

    def _intern(self, out: bytearray, text: str) -> None:
        ids = self._ids
        ident = ids.get(text)
        if ident is not None:
            ref = ident << 1
            if ref < 0x80:
                out.append(ref)
            else:
                _write_varint(out, ref)
            return
        data = text.encode("utf-8")
        if len(ids) >= _INTERN_LIMIT:
            out.append(1)  # define ref 0: one-shot literal, not remembered
        else:
            ids[text] = len(ids)
            _write_varint(out, len(ids) << 1 | 1)  # define ref is id + 1
        _write_varint(out, len(data))
        out += data

    def _encode_message(self, out: bytearray, message: Message) -> None:
        intern = self._intern
        intern(out, message.src)
        intern(out, message.dst)
        intern(out, message.kind)
        out += _FLOAT.pack(message.send_time)
        if message.msg_id < 0:
            raise WireError(f"negative msg_id {message.msg_id}")
        _write_varint(out, message.msg_id)
        self._encode_value(out, message.payload)

    def _encode_value(self, out: bytearray, value: Any) -> None:
        # Identity checks first (bool must beat the int branch), then types
        # by payload frequency; single-byte varints are written inline.
        if value is None:
            out.append(_T_NONE)
        elif value is True:
            out.append(_T_TRUE)
        elif value is False:
            out.append(_T_FALSE)
        elif isinstance(value, str):
            data = value.encode("utf-8")
            length = len(data)
            if length < 0x80:
                out.append(_T_STR)
                out.append(length)
            else:
                out.append(_T_STR)
                _write_varint(out, length)
            out += data
        elif isinstance(value, int):
            raw = (value << 1) if value >= 0 else (((-value) << 1) | 1)
            if raw < 0x80:
                out.append(_T_INT)
                out.append(raw)
            else:
                out.append(_T_INT)
                _write_varint(out, raw)
        elif isinstance(value, dict):
            out.append(_T_DICT)
            _write_varint(out, len(value))
            intern = self._intern
            encode_value = self._encode_value
            for key, item in value.items():
                if type(key) is not str:
                    key = _coerce_key(key)
                intern(out, key)
                encode_value(out, item)
        elif isinstance(value, (list, tuple)):
            out.append(_T_LIST)
            _write_varint(out, len(value))
            encode_value = self._encode_value
            for item in value:
                encode_value(out, item)
        elif isinstance(value, float):
            out.append(_T_FLOAT)
            out += _FLOAT.pack(value)
        else:
            raise WireError(f"unencodable payload value: {value!r}")


class FrameDecoder:
    """Incremental frame decoder for arbitrarily fragmented byte streams.

    ``feed`` buffers fragments and returns every completed record — both
    JSON v1 frames and binary v2 frames, dispatched per-frame on the first
    body byte.  A v2 BATCH yields one record per carried message; a v2
    HELLO yields none but updates :attr:`peer_version` and resets the
    per-connection intern table to the sender's snapshot.  Decoding parses
    the buffered bytes in place through a :class:`memoryview` (no body
    copy); :class:`WireError` is raised for oversized or malformed frames
    as soon as the offending header/body is complete — an announced
    oversize is rejected from the 4 header bytes alone, before any body
    arrives.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._interned: List[str] = []
        #: Wire version the peer last announced: 2 after a v2 HELLO, 1 once
        #: a JSON frame arrives, ``None`` before any frame.  The transport
        #: uses this to pick the reply codec on accepted connections.
        self.peer_version: Optional[int] = None
        #: Completed wire frames decoded (a BATCH counts once).
        self.frames_decoded = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward the next (incomplete) frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> "list[Dict[str, Any]]":
        records: "list[Dict[str, Any]]" = []
        buf = self._buffer
        buf.extend(data)
        header = _LENGTH.size
        while True:
            if len(buf) < header:
                return records
            (length,) = _LENGTH.unpack_from(buf)
            if length > MAX_FRAME_BYTES:
                raise WireError(f"peer announced a {length}-byte frame")
            end = header + length
            if len(buf) < end:
                return records
            if length and buf[header] == BINARY_MAGIC:
                self._decode_binary(records, header, end)
            else:
                records.append(_decode_body(bytes(buf[header:end])))
                if self.peer_version is None:
                    self.peer_version = JSON_WIRE_VERSION
            del buf[:end]
            self.frames_decoded += 1

    # ----------------------------------------------------------------- #
    # v2 frame bodies
    # ----------------------------------------------------------------- #
    def _decode_binary(self, records: list, start: int, end: int) -> None:
        view = memoryview(self._buffer)
        try:
            if start + 2 > end:
                raise WireError("truncated v2 frame header")
            ftype = view[start + 1]
            pos = start + 2
            if ftype == _FT_MSG:
                record, pos = self._decode_message(view, pos, end)
                records.append(record)
            elif ftype == _FT_BATCH:
                count, pos = _read_varint(view, pos, end)
                if count > end - pos:
                    raise WireError("batch count overruns frame")
                for _ in range(count):
                    record, pos = self._decode_message(view, pos, end)
                    records.append(record)
            elif ftype == _FT_HELLO:
                pos = self._decode_hello(view, pos, end)
            else:
                raise WireError(f"unknown v2 frame type {ftype}")
            if pos != end:
                raise WireError("trailing bytes in v2 frame")
        except (IndexError, UnicodeDecodeError, struct.error) as exc:
            raise WireError(f"malformed v2 frame: {exc}") from exc
        finally:
            view.release()

    def _decode_hello(self, view, pos: int, end: int) -> int:
        version, pos = _read_varint(view, pos, end)
        count, pos = _read_varint(view, pos, end)
        if count > end - pos:  # every entry takes at least one byte
            raise WireError("hello table overruns frame")
        if count > _INTERN_LIMIT:
            raise WireError(f"hello table of {count} entries exceeds "
                            f"{_INTERN_LIMIT}")
        table: List[str] = []
        for _ in range(count):
            length, pos = _read_varint(view, pos, end)
            if pos + length > end:
                raise WireError("truncated hello entry")
            table.append(str(view[pos:pos + length], "utf-8"))
            pos += length
        self._interned = table
        self.peer_version = version
        return pos

    def _decode_message(self, view, pos: int, end: int):
        src, pos = self._read_interned(view, pos, end)
        dst, pos = self._read_interned(view, pos, end)
        kind, pos = self._read_interned(view, pos, end)
        if pos + 8 > end:
            raise WireError("truncated v2 message")
        (send_time,) = _FLOAT.unpack_from(view, pos)
        pos += 8
        msg_id, pos = _read_varint(view, pos, end)
        payload, pos = self._decode_value(view, pos, end)
        return {"v": WIRE_VERSION, "src": src, "dst": dst, "kind": kind,
                "payload": payload, "send_time": send_time,
                "msg_id": msg_id}, pos

    def _read_interned(self, view, pos: int, end: int):
        # Inline fast path for the dominant case: a one-byte reference.
        if pos < end and view[pos] < 0x80:
            ref = view[pos]
            pos += 1
        else:
            ref, pos = _read_varint(view, pos, end)
        table = self._interned
        if not ref & 1:
            ident = ref >> 1
            if ident >= len(table):
                raise WireError(f"unknown interned id {ident}")
            return table[ident], pos
        length, pos = _read_varint(view, pos, end)
        if pos + length > end:
            raise WireError("truncated interned string")
        text = str(view[pos:pos + length], "utf-8")
        pos += length
        ident = (ref >> 1) - 1  # define ref is id + 1; ref 0 is a literal
        if ident < 0:
            return text, pos  # one-shot literal (sender table was full)
        if ident == len(table):
            if ident >= _INTERN_LIMIT:
                raise WireError("interned table overflow")
            table.append(text)
        elif ident < len(table):
            table[ident] = text  # re-sent definition after a reconnect
        else:
            raise WireError(f"interned id {ident} defined out of order")
        return text, pos

    def _decode_value(self, view, pos: int, end: int):
        # Tags ordered by payload frequency; single-byte varints inline.
        if pos >= end:
            raise WireError("truncated v2 value")
        tag = view[pos]
        pos += 1
        if tag == _T_STR:
            if pos < end and view[pos] < 0x80:
                length = view[pos]
                pos += 1
            else:
                length, pos = _read_varint(view, pos, end)
            if pos + length > end:
                raise WireError("truncated v2 string")
            return str(view[pos:pos + length], "utf-8"), pos + length
        if tag == _T_INT:
            if pos < end and view[pos] < 0x80:
                raw = view[pos]
                pos += 1
            else:
                raw, pos = _read_varint(view, pos, end)
            return (-(raw >> 1) if raw & 1 else raw >> 1), pos
        if tag == _T_DICT:
            count, pos = _read_varint(view, pos, end)
            if count > end - pos:
                raise WireError("dict count overruns frame")
            result: Dict[str, Any] = {}
            read_interned = self._read_interned
            decode_value = self._decode_value
            for _ in range(count):
                key, pos = read_interned(view, pos, end)
                result[key], pos = decode_value(view, pos, end)
            return result, pos
        if tag == _T_LIST:
            count, pos = _read_varint(view, pos, end)
            if count > end - pos:
                raise WireError("list count overruns frame")
            items = []
            append = items.append
            decode_value = self._decode_value
            for _ in range(count):
                item, pos = decode_value(view, pos, end)
                append(item)
            return items, pos
        if tag == _T_FLOAT:
            if pos + 8 > end:
                raise WireError("truncated v2 value")
            (value,) = _FLOAT.unpack_from(view, pos)
            return value, pos + 8
        if tag == _T_NONE:
            return None, pos
        if tag == _T_TRUE:
            return True, pos
        if tag == _T_FALSE:
            return False, pos
        raise WireError(f"unknown value tag {tag}")


def message_to_frame(message: Message) -> Dict[str, Any]:
    """The JSON (v1) wire record for one protocol message."""
    return {
        "v": JSON_WIRE_VERSION,
        "src": message.src,
        "dst": message.dst,
        "kind": message.kind,
        "payload": message.payload,
        "send_time": message.send_time,
        "msg_id": message.msg_id,
    }


def frame_to_message(record: Dict[str, Any], deliver_time: float) -> Message:
    """Rebuild a :class:`~repro.sim.network.Message` from a data frame."""
    try:
        return Message(
            src=record["src"],
            dst=record["dst"],
            kind=record["kind"],
            payload=record.get("payload"),
            send_time=record.get("send_time", 0.0),
            deliver_time=deliver_time,
            msg_id=record.get("msg_id", 0),
        )
    except KeyError as exc:
        raise WireError(f"data frame missing field {exc}") from exc
