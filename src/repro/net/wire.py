"""Length-prefixed JSON wire codec.

Every frame on a live-cluster connection is a 4-byte big-endian length
followed by a UTF-8 JSON object.  Data frames carry one protocol message:

.. code-block:: json

   {"v": 1, "src": "client1@CA", "dst": "replica0",
    "kind": "read1", "payload": {...}, "send_time": 123.4}

JSON keeps the codec debuggable (``nc``-able) and matches the payload
conventions of the simulated network: payloads are dicts of scalars, lists,
and nested dicts.  Tuples (Gryff carstamps) become lists in flight; the
protocol code already normalizes with ``tuple()``/indexing on receipt, so
the sim and live wire formats are interchangeable.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Optional

from repro.sim.network import Message

__all__ = [
    "WIRE_VERSION",
    "MAX_FRAME_BYTES",
    "WireError",
    "encode_frame",
    "read_frame",
    "message_to_frame",
    "frame_to_message",
]

WIRE_VERSION = 1

#: Upper bound on one frame; a peer announcing more is treated as corrupt.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class WireError(Exception):
    """Raised for malformed or oversized frames."""


def encode_frame(record: Dict[str, Any]) -> bytes:
    """Serialize one record to a length-prefixed JSON frame."""
    body = json.dumps(record, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(body)) + body


async def read_frame(reader: "asyncio.StreamReader") -> Optional[Dict[str, Any]]:
    """Read one frame; returns ``None`` on a clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireError("connection closed mid-frame") from exc
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"peer announced a {length}-byte frame")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise WireError("connection closed mid-frame") from exc
    try:
        record = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable frame: {exc}") from exc
    if not isinstance(record, dict):
        raise WireError(f"frame is not an object: {record!r}")
    return record


def message_to_frame(message: Message) -> Dict[str, Any]:
    """The wire record for one protocol message."""
    return {
        "v": WIRE_VERSION,
        "src": message.src,
        "dst": message.dst,
        "kind": message.kind,
        "payload": message.payload,
        "send_time": message.send_time,
        "msg_id": message.msg_id,
    }


def frame_to_message(record: Dict[str, Any], deliver_time: float) -> Message:
    """Rebuild a :class:`~repro.sim.network.Message` from a data frame."""
    try:
        return Message(
            src=record["src"],
            dst=record["dst"],
            kind=record["kind"],
            payload=record.get("payload"),
            send_time=record.get("send_time", 0.0),
            deliver_time=deliver_time,
            msg_id=record.get("msg_id", 0),
        )
    except KeyError as exc:
        raise WireError(f"data frame missing field {exc}") from exc
