"""Replay captured live traces through the consistency checkers.

The same witness-based constructions the simulator validates itself with
(Theorems D.5 and D.15) apply to live histories: operations carry their
protocol witness data (commit/snapshot timestamps, carstamps) in ``meta``,
which survives the JSONL round trip.  ``repro live-check`` loads a trace and
calls :func:`check_trace`, turning the paper's consistency definitions into
an online verification tool.

Two granularities are offered:

* **batch** — :func:`check_trace` on a finished trace (one whole-history
  witness validation);
* **streaming** — :func:`streaming_checker_for` builds a
  :class:`~repro.core.checkers.streaming.StreamingWitnessChecker` that
  consumes the trace's event records *as they are written* (``live-check
  --follow``, ``load --check-inline``), checking one quiescent epoch at a
  time with bounded memory and the same per-protocol witness construction.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional

from repro.core.checkers import check_with_witness
from repro.core.checkers.base import CheckResult
from repro.core.checkers.streaming import (
    EpochVerdict,
    StreamingWitnessChecker,
    StreamReport,
)
from repro.core.events import Operation
from repro.core.history import History
from repro.core.specification import RegisterSpec, TransactionalKVSpec
from repro.gryff.cluster import gryff_witness_order
from repro.net.spec import GRYFF_PROTOCOLS, SPANNER_PROTOCOLS
from repro.spanner.cluster import spanner_witness_order

__all__ = [
    "default_model_for",
    "check_trace",
    "streaming_checker_for",
    "check_record_stream",
]


_DEFAULT_MODELS = {
    "gryff": "linearizability",
    "gryff-rsc": "rsc",
    "spanner": "strict_serializability",
    "spanner-rss": "rss",
}


def default_model_for(protocol: str) -> str:
    """The consistency model each deployment variant must satisfy.

    Raises ``ValueError`` for unknown protocols (trace headers are
    caller-supplied data, e.g. files written by other tools).
    """
    model = _DEFAULT_MODELS.get(protocol)
    if model is None:
        raise ValueError(
            f"unknown protocol {protocol!r} "
            f"(known: {sorted(_DEFAULT_MODELS)})")
    return model


def check_trace(history: History, protocol: str,
                model: Optional[str] = None) -> CheckResult:
    """Check a (live or simulated) history against ``protocol``'s model."""
    model = model or default_model_for(protocol)
    if protocol in GRYFF_PROTOCOLS:
        witness = gryff_witness_order(history, model)
        if witness is None:
            return CheckResult(
                satisfied=False, model=model,
                reason="carstamp, causal, and real-time constraints are cyclic",
            )
        return check_with_witness(history, witness, model=model,
                                  spec=RegisterSpec())
    if protocol in SPANNER_PROTOCOLS:
        return check_with_witness(history, spanner_witness_order(history),
                                  model=model, spec=TransactionalKVSpec())
    raise ValueError(f"unknown protocol {protocol!r}")


# --------------------------------------------------------------------------- #
# Streaming (epoch-windowed) trace checking
# --------------------------------------------------------------------------- #
def streaming_checker_for(
    protocol: str,
    model: Optional[str] = None,
    min_epoch_ops: int = 64,
    on_verdict: Optional[Callable[[EpochVerdict], None]] = None,
) -> StreamingWitnessChecker:
    """A bounded-memory streaming checker for ``protocol``'s live traces.

    Each quiescent epoch is validated with the protocol's own witness
    construction (carstamps for Gryff, commit/snapshot timestamps for
    Spanner) against the protocol's consistency model, carrying only the
    replayed specification state across epoch cuts.
    """
    model = model or default_model_for(protocol)
    if protocol in GRYFF_PROTOCOLS:
        return StreamingWitnessChecker(
            witness_fn=lambda history: gryff_witness_order(history, model),
            model=model, spec=RegisterSpec(),
            min_epoch_ops=min_epoch_ops, on_verdict=on_verdict,
        )
    if protocol in SPANNER_PROTOCOLS:
        return StreamingWitnessChecker(
            witness_fn=spanner_witness_order,
            model=model, spec=TransactionalKVSpec(),
            min_epoch_ops=min_epoch_ops, on_verdict=on_verdict,
        )
    raise ValueError(f"unknown protocol {protocol!r}")


def check_record_stream(
    records: Iterable[Dict[str, Any]],
    checker: StreamingWitnessChecker,
) -> StreamReport:
    """Drive a streaming checker from parsed trace records.

    Dispatches ``inv``/``op``/``edge``/``abandon`` records (anything else,
    including per-file ``meta`` headers of a rotated set, is skipped) and
    closes the checker when the iterable ends.
    """
    for record in records:
        kind = record.get("type")
        if kind == "op":
            checker.complete(Operation.from_dict(record))
        elif kind == "inv":
            checker.begin(record["process"], record["invoked_at"])
        elif kind == "edge":
            checker.edge(record["src_op"], record["dst_op"])
        elif kind == "abandon":
            checker.abandon(record["process"], record["at"])
    return checker.close()
