"""Replay captured live traces through the consistency checkers.

The same witness-based constructions the simulator validates itself with
(Theorems D.5 and D.15) apply to live histories: operations carry their
protocol witness data (commit/snapshot timestamps, carstamps) in ``meta``,
which survives the JSONL round trip.  ``repro live-check`` loads a trace and
calls :func:`check_trace`, turning the paper's consistency definitions into
an online verification tool.
"""

from __future__ import annotations

from typing import Optional

from repro.core.checkers import check_with_witness
from repro.core.checkers.base import CheckResult
from repro.core.history import History
from repro.core.specification import RegisterSpec, TransactionalKVSpec
from repro.gryff.cluster import gryff_witness_order
from repro.net.spec import GRYFF_PROTOCOLS, SPANNER_PROTOCOLS
from repro.spanner.cluster import spanner_witness_order

__all__ = ["default_model_for", "check_trace"]


_DEFAULT_MODELS = {
    "gryff": "linearizability",
    "gryff-rsc": "rsc",
    "spanner": "strict_serializability",
    "spanner-rss": "rss",
}


def default_model_for(protocol: str) -> str:
    """The consistency model each deployment variant must satisfy.

    Raises ``ValueError`` for unknown protocols (trace headers are
    caller-supplied data, e.g. files written by other tools).
    """
    model = _DEFAULT_MODELS.get(protocol)
    if model is None:
        raise ValueError(
            f"unknown protocol {protocol!r} "
            f"(known: {sorted(_DEFAULT_MODELS)})")
    return model


def check_trace(history: History, protocol: str,
                model: Optional[str] = None) -> CheckResult:
    """Check a (live or simulated) history against ``protocol``'s model."""
    model = model or default_model_for(protocol)
    if protocol in GRYFF_PROTOCOLS:
        witness = gryff_witness_order(history, model)
        if witness is None:
            return CheckResult(
                satisfied=False, model=model,
                reason="carstamp, causal, and real-time constraints are cyclic",
            )
        return check_with_witness(history, witness, model=model,
                                  spec=RegisterSpec())
    if protocol in SPANNER_PROTOCOLS:
        return check_with_witness(history, spanner_witness_order(history),
                                  model=model, spec=TransactionalKVSpec())
    raise ValueError(f"unknown protocol {protocol!r}")
