"""Wall-clock execution of the simulation kernel's event machinery.

:class:`RealtimeEnvironment` is an :class:`repro.sim.engine.Environment`
whose clock is the wall clock (in milliseconds, against a configurable
epoch) and whose event queue is pumped by an asyncio task instead of the
simulated run loop.  Every kernel primitive — :class:`~repro.sim.engine.Event`,
:class:`~repro.sim.engine.Process`, :class:`~repro.sim.engine.Timeout`,
:class:`~repro.sim.engine.Store`, ``AnyOf``/``AllOf`` — is reused unchanged,
so protocol code written as generators for the simulator runs bit-for-bit the
same *logic* live; only the passage of time and the message transport differ.

Semantics
---------
* ``env.now`` is ``(time.time() - epoch) * 1000`` and never moves backwards
  (guarding latency accounting against small NTP steps).  All processes of a
  cluster share one epoch (stored in the cluster spec), so timestamps taken
  in different OS processes on the same machine are comparable — which is
  what Spanner's TrueTime-style commit timestamps need.
* ``env.timeout(d)`` completes no earlier than ``d`` wall-clock milliseconds
  from now (asyncio supplies the usual scheduling slop on top).
* Events triggered from *outside* the pump (an arriving TCP frame delivering
  a message, a signal handler) must be followed by :meth:`kick` so the pump
  wakes up; :class:`repro.net.transport.LiveTransport` does this after every
  delivery.  ``schedule``/``timeout`` kick defensively as well.
* The simulated :meth:`~repro.sim.engine.Environment.run` is disabled; use
  :meth:`run_async` (typically as a background task) plus :meth:`as_future`
  to await protocol processes from coroutine code.
"""

from __future__ import annotations

import asyncio
import heapq
import time
from typing import Any, Generator, Optional

from repro.sim.engine import NORMAL, Environment, Event, SimulationError, Timeout

__all__ = ["RealtimeEnvironment"]


class RealtimeEnvironment(Environment):
    """Drives sim-kernel events on the asyncio loop with wall-clock time."""

    def __init__(self, epoch: Optional[float] = None):
        super().__init__(initial_time=0.0)
        #: Unix-time origin of the millisecond clock.  Processes of one
        #: cluster must share it for their timestamps to be comparable.
        self.epoch = time.time() if epoch is None else float(epoch)
        self._kick_event: Optional[asyncio.Event] = None
        self._stop_requested = False
        self._pumping = False
        self._refresh_now()

    # ------------------------------------------------------------------ #
    # Clock
    # ------------------------------------------------------------------ #
    def _refresh_now(self) -> float:
        wall = (time.time() - self.epoch) * 1000.0
        if wall > self._now:
            self._now = wall
        return self._now

    @property
    def now(self) -> float:
        """Current wall-clock time in ms since the epoch (monotone)."""
        return self._refresh_now()

    # ------------------------------------------------------------------ #
    # Scheduling hooks
    # ------------------------------------------------------------------ #
    def schedule(self, event: Event, delay: float = 0, priority: int = NORMAL) -> None:
        self._refresh_now()
        super().schedule(event, delay, priority)
        self.kick()

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        self._refresh_now()
        timeout = super().timeout(delay, value)
        self.kick()
        return timeout

    def kick(self) -> None:
        """Wake the pump; callers that trigger events from asyncio context
        (message deliveries, signal handlers) must call this afterwards."""
        kick = self._kick_event
        if kick is not None and not kick.is_set():
            kick.set()

    def request_stop(self) -> None:
        """Ask :meth:`run_async` to return after the current event."""
        self._stop_requested = True
        self.kick()

    # ------------------------------------------------------------------ #
    # Pump
    # ------------------------------------------------------------------ #
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        raise SimulationError(
            "RealtimeEnvironment is pumped by the asyncio loop; "
            "use `await env.run_async(...)` instead of env.run()"
        )

    def _step_one(self) -> None:
        """Pop and process the earliest due event (mirrors Environment.step
        without the simulated-time monotonicity bookkeeping)."""
        _, _, _, event = heapq.heappop(self._queue)
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event.defused:
            raise event._value
        self._recycle(event, callbacks)

    async def run_async(self, until: Optional[float] = None,
                        stop_when=None) -> float:
        """Pump events until :meth:`request_stop`, ``stop_when()`` is true,
        or env time reaches ``until``.  Returns the time it stopped at.

        Only one pump may run per environment at a time.
        """
        if self._pumping:
            raise SimulationError("run_async() already active on this environment")
        self._pumping = True
        self._kick_event = asyncio.Event()
        # A stop requested before the pump task first ran must be honored
        # (it is consumed — reset to False — on the way out, not on entry).
        try:
            while True:
                if self._stop_requested or (stop_when is not None and stop_when()):
                    return self._refresh_now()
                now = self._refresh_now()
                if until is not None and now >= until:
                    return now
                if self._queue and self._queue[0][0] <= now:
                    self._step_one()
                    continue
                # Nothing due: sleep until the next scheduled event, the
                # `until` horizon, or an external kick.
                deadline = self._queue[0][0] if self._queue else None
                if until is not None:
                    deadline = until if deadline is None else min(deadline, until)
                delay_s = None if deadline is None else max(deadline - now, 0.0) / 1000.0
                kick = self._kick_event
                try:
                    await asyncio.wait_for(kick.wait(), timeout=delay_s)
                except asyncio.TimeoutError:
                    pass
                kick.clear()
        finally:
            self._pumping = False
            self._kick_event = None
            self._stop_requested = False

    # ------------------------------------------------------------------ #
    # asyncio bridges
    # ------------------------------------------------------------------ #
    def as_future(self, event: Event) -> "asyncio.Future":
        """An asyncio future resolving with the event's value (or raising its
        failure).  Lets coroutine code await protocol processes while the
        pump runs as a background task."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()

        def _resolve(ev: Event) -> None:
            if future.cancelled():
                return
            if ev._ok:
                future.set_result(ev._value)
            else:
                ev.defused = True
                future.set_exception(ev._value)

        event.add_callback(_resolve)
        return future

    async def drive(self, generator: Generator) -> Any:
        """Run ``generator`` as a process with a temporary pump; returns its
        value.  Convenience for tests and one-shot scripts — long-lived
        callers start :meth:`run_async` once and use :meth:`as_future`.

        A pump failure is re-raised here instead of deadlocking the wait
        for a process that can no longer be resumed.
        """
        process = self.process(generator)
        future = self.as_future(process)
        pump = asyncio.ensure_future(self.run_async())
        try:
            await asyncio.wait({future, pump},
                               return_when=asyncio.FIRST_COMPLETED)
            if future.done():
                return future.result()
            future.cancel()
            exc = pump.exception()
            if exc is not None:
                raise exc
            raise SimulationError("event pump stopped before the process finished")
        finally:
            self.request_stop()
            if not pump.done():
                await pump
