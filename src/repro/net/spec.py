"""Cluster topology files for the live runtime.

A :class:`ClusterSpec` names every *server* node of a deployment (Gryff
replicas or Spanner shard leaders) with its TCP address and site label, the
protocol variant, the shared wall-clock epoch, and protocol parameters.  The
same file is consumed by every process of the cluster — ``repro serve``
(all nodes, or one node per OS process via ``--node``) and ``repro load``
(clients) — so the topology is defined exactly once.

``repro init-config`` generates these files; see the builders
:meth:`ClusterSpec.gryff` and :meth:`ClusterSpec.spanner`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Union

from repro.gryff.config import GryffConfig, GryffVariant
from repro.spanner.config import SpannerConfig, Variant

__all__ = ["NodeSpec", "ClusterSpec", "GRYFF_PROTOCOLS", "SPANNER_PROTOCOLS"]

SPEC_SCHEMA = "repro-cluster/1"

GRYFF_PROTOCOLS = ("gryff", "gryff-rsc")
SPANNER_PROTOCOLS = ("spanner", "spanner-rss")

#: Default site labels for Gryff replicas (Table 2 regions, reused as plain
#: labels — live latency comes from the real network, not the matrix).
_GRYFF_SITES = ("CA", "VA", "IR", "OR", "JP")


@dataclass
class NodeSpec:
    """One server node: name, role, listen address, site label."""

    name: str
    role: str                 # "replica" (Gryff) or "shard" (Spanner)
    host: str
    port: int
    site: str

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "role": self.role, "host": self.host,
                "port": self.port, "site": self.site}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "NodeSpec":
        return cls(name=data["name"], role=data["role"], host=data["host"],
                   port=int(data["port"]), site=data["site"])


@dataclass
class ClusterSpec:
    """A live deployment: protocol, server nodes, epoch, parameters."""

    protocol: str
    nodes: Dict[str, NodeSpec]
    #: Unix-time origin all processes measure env time against (ms since
    #: epoch); sharing it makes cross-process timestamps comparable.
    epoch: float = 0.0
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.protocol not in GRYFF_PROTOCOLS + SPANNER_PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}")
        # Node names must be unique across the whole spec (a duplicate would
        # only surface later as an opaque transport registration error).
        # The mapping already guarantees key uniqueness, so the checks are
        # (a) every key matches its node's declared name — the way two
        # NodeSpecs with the same name sneak past a dict — and (b) no node
        # reuses another's listen address.
        addresses: Dict[tuple, str] = {}
        for key, node in self.nodes.items():
            if not node.name:
                raise ValueError("node with empty name in cluster spec")
            if key != node.name:
                raise ValueError(
                    f"node mapping key {key!r} does not match node name "
                    f"{node.name!r}")
            address = (node.host, node.port)
            if node.port != 0 and address in addresses:
                raise ValueError(
                    f"nodes {addresses[address]!r} and {node.name!r} share "
                    f"listen address {node.host}:{node.port}")
            addresses[address] = node.name

    # ------------------------------------------------------------------ #
    # Builders
    # ------------------------------------------------------------------ #
    @classmethod
    def gryff(cls, num_replicas: int = 3, host: str = "127.0.0.1",
              base_port: int = 7400, variant: str = "gryff-rsc",
              epoch: Optional[float] = None,
              params: Optional[Dict[str, Any]] = None) -> "ClusterSpec":
        """A localhost Gryff / Gryff-RSC cluster of ``num_replicas``."""
        nodes = {}
        for index in range(num_replicas):
            name = f"replica{index}"
            nodes[name] = NodeSpec(
                name=name, role="replica", host=host, port=base_port + index,
                site=_GRYFF_SITES[index % len(_GRYFF_SITES)],
            )
        return cls(protocol=variant, nodes=nodes,
                   epoch=time.time() if epoch is None else epoch,
                   params=dict(params or {}))

    @classmethod
    def spanner(cls, num_shards: int = 2, host: str = "127.0.0.1",
                base_port: int = 7500, variant: str = "spanner-rss",
                epoch: Optional[float] = None,
                params: Optional[Dict[str, Any]] = None) -> "ClusterSpec":
        """A localhost Spanner / Spanner-RSS cluster of ``num_shards``.

        All nodes live in one site label (``local``): the client's
        commit-latency estimate (t_ee) then uses the single-data-center
        matrix, which matches a localhost deployment.
        """
        nodes = {}
        for index in range(num_shards):
            name = f"shard{index}"
            nodes[name] = NodeSpec(name=name, role="shard", host=host,
                                   port=base_port + index, site="local")
        return cls(protocol=variant, nodes=nodes,
                   epoch=time.time() if epoch is None else epoch,
                   params=dict(params or {}))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def is_gryff(self) -> bool:
        return self.protocol in GRYFF_PROTOCOLS

    @property
    def is_spanner(self) -> bool:
        return self.protocol in SPANNER_PROTOCOLS

    def server_names(self) -> List[str]:
        return list(self.nodes)

    def sites(self) -> List[str]:
        """Site labels in node order (duplicates preserved for round-robin)."""
        return [node.site for node in self.nodes.values()]

    # ------------------------------------------------------------------ #
    # Protocol configs
    # ------------------------------------------------------------------ #
    def gryff_config(self) -> GryffConfig:
        """The :class:`GryffConfig` live nodes run with.

        Replica names/sites come from the spec; the simulated network knobs
        (jitter, processing, per-message CPU) are zeroed — live deployments
        get real latency and real CPU for free.
        """
        if not self.is_gryff:
            raise ValueError(f"{self.protocol!r} is not a Gryff protocol")
        variant = (GryffVariant.GRYFF if self.protocol == "gryff"
                   else GryffVariant.GRYFF_RSC)
        return GryffConfig(
            variant=variant, sites=self.sites(),
            processing_ms=0.0, server_cpu_ms=0.0, jitter_ms=0.0,
            seed=int(self.params.get("seed", 0)), wide_area=False,
        )

    def spanner_config(self) -> SpannerConfig:
        """The :class:`SpannerConfig` live nodes run with.

        Shard leaders and replication sites all carry the spec's site
        labels; TrueTime uncertainty comes from ``params``
        (``truetime_epsilon_ms``, default 10 ms as in the paper).
        """
        if not self.is_spanner:
            raise ValueError(f"{self.protocol!r} is not a Spanner protocol")
        variant = (Variant.SPANNER if self.protocol == "spanner"
                   else Variant.SPANNER_RSS)
        sites = sorted(set(self.sites())) or ["local"]
        return SpannerConfig(
            variant=variant,
            num_shards=len(self.nodes),
            leader_sites=self.sites(),
            sites=sites,
            truetime_epsilon_ms=float(self.params.get("truetime_epsilon_ms", 10.0)),
            fence_bound_ms=float(self.params.get("fence_bound_ms", 250.0)),
            processing_ms=0.0, server_cpu_ms=0.0, jitter_ms=0.0,
            seed=int(self.params.get("seed", 0)),
        )

    # ------------------------------------------------------------------ #
    # JSON round trip
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SPEC_SCHEMA,
            "protocol": self.protocol,
            "epoch": self.epoch,
            "params": dict(self.params),
            "nodes": [node.to_dict() for node in self.nodes.values()],
        }

    def save(self, destination: Union[str, IO[str]]) -> None:
        if isinstance(destination, str):
            with open(destination, "w", encoding="utf-8") as handle:
                self.save(handle)
            return
        json.dump(self.to_dict(), destination, indent=2)
        destination.write("\n")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClusterSpec":
        if data.get("schema") != SPEC_SCHEMA:
            raise ValueError(f"not a {SPEC_SCHEMA} file (schema={data.get('schema')!r})")
        nodes = {}
        for entry in data["nodes"]:
            node = NodeSpec.from_dict(entry)
            if node.name in nodes:
                raise ValueError(f"duplicate node name {node.name!r}")
            nodes[node.name] = node
        return cls(protocol=data["protocol"], nodes=nodes,
                   epoch=float(data.get("epoch", 0.0)),
                   params=dict(data.get("params") or {}))

    @classmethod
    def load(cls, source: Union[str, IO[str]]) -> "ClusterSpec":
        if isinstance(source, str):
            with open(source, "r", encoding="utf-8") as handle:
                return cls.load(handle)
        return cls.from_dict(json.load(source))
