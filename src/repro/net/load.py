"""Live load generation.

``repro load`` opens a :class:`repro.api.LiveStore` against a running
cluster, drives unified :class:`repro.api.Session` objects with the *same*
workload generators, executors, and closed-loop driver the simulated
experiments use (:mod:`repro.workloads`, :mod:`repro.api.executors`),
records latencies with :class:`~repro.sim.stats.LatencyRecorder`, and
streams the invocation/response history to a JSONL trace for ``repro
live-check``.

Workloads:

* ``ycsb`` — single-key reads/writes (:class:`~repro.workloads.ycsb.YcsbWorkload`);
  the unified executor maps them onto registers (Gryff) or degenerate
  transactions (Spanner).
* ``retwis`` — the transactional Retwis mix over Zipfian keys
  (:class:`~repro.workloads.retwis.RetwisWorkload`; requires a backend with
  the ``multi_key_txn`` capability, i.e. Spanner).

A ``--level`` declaration negotiates the consistency level at session-open
time (:class:`~repro.api.errors.CapabilityError` when the cluster cannot
honor it) and selects the checker model for ``--check-inline``.
"""

from __future__ import annotations

import asyncio
import warnings
from typing import Any, Dict, List, Optional, Tuple

from repro.api import make_retwis_executor, open_store, ycsb_executor
from repro.api.levels import negotiate
from repro.api.store import LiveStore
from repro.net.recorder import RecordingHistory, TraceWriter
from repro.core.history import History
from repro.sim.stats import LatencyRecorder
from repro.workloads.clients import ClosedLoopDriver, OpenLoopDriver
from repro.workloads.ycsb import OperationSpec, YcsbWorkload

__all__ = ["run_load", "load_main", "spanner_ycsb_executor"]


def spanner_ycsb_executor(client, spec: OperationSpec):
    """Deprecated: the unified :func:`repro.api.ycsb_executor` maps YCSB
    operations onto any backend session."""
    warnings.warn("spanner_ycsb_executor is deprecated; use "
                  "repro.api.ycsb_executor", DeprecationWarning, stacklevel=2)
    from repro.spanner.client import TransactionAborted

    try:
        if spec.kind == "write":
            yield from client.read_write_transaction(
                [], lambda _reads, _key=spec.key, _value=spec.value: {_key: _value})
        else:
            yield from client.read_only_transaction([spec.key])
    except TransactionAborted:
        pass  # retried out; the recorder already saw the latency of retries


def _build_sessions(store: LiveStore, num_clients: int, client_prefix: str,
                    level: Optional[str]) -> List[Any]:
    sites = store.spec.sites()
    return [
        store.session(
            site=sites[index % len(sites)],
            name=f"{client_prefix}{index + 1}@{sites[index % len(sites)]}",
            level=level,
        )
        for index in range(num_clients)
    ]


def _build_pairs_and_executor(store: LiveStore, sessions: List[Any],
                              workload: str, write_ratio: float,
                              conflict_rate: float, num_keys: int,
                              seed: int) -> Tuple[List[Tuple[Any, Any]], Any]:
    if workload == "ycsb":
        pairs = [
            (session, YcsbWorkload(client_id=session.name,
                                   write_ratio=write_ratio,
                                   conflict_rate=conflict_rate,
                                   seed=seed * 1000 + index))
            for index, session in enumerate(sessions)
        ]
        return pairs, ycsb_executor
    if workload == "retwis":
        if not store.supports("multi_key_txn"):
            raise ValueError("the retwis workload is transactional "
                             "(requires the multi_key_txn capability; "
                             "Spanner only)")
        from repro.workloads.retwis import RetwisWorkload

        workload_by_session = {}
        pairs = []
        for index, session in enumerate(sessions):
            retwis = RetwisWorkload(num_keys=num_keys, zipf_skew=0.7,
                                    seed=seed * 1000 + index,
                                    value_tag=f"{session.name}-")
            workload_by_session[session.name] = retwis
            pairs.append((session, retwis))
        return pairs, make_retwis_executor(workload_by_session)
    raise ValueError(f"unknown workload {workload!r}")


async def run_load(spec, *,
                   num_clients: int = 4,
                   duration_ms: Optional[float] = 2_000.0,
                   ops_per_client: Optional[int] = None,
                   workload: str = "ycsb",
                   write_ratio: float = 0.5,
                   conflict_rate: float = 0.10,
                   num_keys: int = 1_000,
                   seed: int = 1,
                   trace_path: Optional[str] = None,
                   client_prefix: str = "client",
                   think_time_ms: float = 0.0,
                   level: Optional[str] = None,
                   check_inline: bool = False,
                   check_min_epoch_ops: int = 64,
                   on_verdict=None,
                   trace_flush_every: int = 1,
                   trace_fsync: bool = False,
                   trace_rotate_bytes: Optional[int] = None,
                   metrics: Optional[Any] = None,
                   metrics_port: Optional[int] = None,
                   admission: Optional[Any] = None,
                   codec: str = "binary",
                   rate: Optional[float] = None,
                   open_loop: bool = False,
                   arrival: str = "poisson",
                   drain_timeout_ms: float = 10_000.0,
                   migrations: Optional[List[Any]] = None,
                   migration_journal: Optional[str] = None,
                   migration_crash_phase: Optional[str] = None) -> Dict[str, Any]:
    """Drive a running cluster; returns a summary dict (and writes a trace).

    The returned summary carries per-category percentiles, throughput, and
    the op count; ``ops == 0`` means the cluster was unreachable.  With
    ``check_inline`` a streaming checker rides on the history's observer
    hook, validating each quiescent epoch as the load runs; its
    :class:`~repro.core.checkers.streaming.StreamReport` lands in
    ``summary["check"]``.  ``level`` declares the consistency level the
    sessions are opened at (negotiated against the cluster's protocol;
    default: the protocol's native level) and the model the inline checker
    validates.

    ``metrics`` — a :class:`~repro.obs.MetricsRegistry` — instruments the
    client-side transport (and the inline checker, when active) and adds a
    ``metrics`` section to the summary; ``metrics_port`` additionally
    serves it at ``/metrics`` for the run's duration (0 = ephemeral port).
    ``admission`` installs an
    :class:`~repro.obs.backpressure.AdmissionController` on the store, so
    overload sheds or delays session opens.  All three default to ``None``:
    the uninstrumented path is byte-identical to previous releases.

    ``codec`` selects the wire format the client store dials with
    (``binary`` — wire v2, the default — or ``json``, the v1 debug
    format; a v2 server accepts either).  ``rate`` (ops/s) switches to the
    :class:`~repro.workloads.clients.OpenLoopDriver`: arrivals follow the
    ``arrival`` schedule (``poisson`` or ``fixed``) for ``duration_ms``,
    the ``num_clients`` sessions form the concurrency pool, and the
    summary's ``categories`` hold coordinated-omission-correct *response*
    times (from intended arrival to completion) with the per-attempt
    service times under ``service_categories`` and the offered/achieved
    accounting under ``open_loop``.

    ``spec`` may also be a :class:`~repro.fleet.spec.FleetSpec`, in which
    case sessions route through the placement map, and ``migrations`` — a
    list of :class:`~repro.fleet.migration.MigrationPlan` — runs an online
    key-range migration controller *under* the load (journaled to
    ``migration_journal``); the controller's report lands in
    ``summary["migration"]``.  ``migration_crash_phase`` is the chaos hook:
    the controller kills itself at that phase, the load keeps running, and
    the summary reports ``migration["crashed"]``.
    """
    if open_loop and rate is None:
        raise ValueError("open_loop requires a rate (ops/s)")
    if rate is not None:
        open_loop = True
        if ops_per_client is not None:
            raise ValueError("ops_per_client does not apply to an open-loop "
                             "run (the arrival schedule bounds the work)")
        if think_time_ms:
            raise ValueError("think_time_ms does not apply to an open-loop "
                             "run (the arrival schedule sets the pacing)")
        if duration_ms is None:
            raise ValueError("an open-loop run requires duration_ms")
    from repro.fleet.spec import FleetSpec

    is_fleet = isinstance(spec, FleetSpec)
    if migrations and not is_fleet:
        raise ValueError("migrations require a fleet topology "
                         "(repro init-config --groups N)")
    # Negotiate before any side effects (e.g. opening the trace file), so a
    # CapabilityError cannot leak an open writer.
    declared = negotiate(spec.protocol, level)
    writer = None
    if trace_path:
        meta = {
            "protocol": spec.protocol,
            "level": declared.value,
            "epoch": spec.epoch,
            "workload": workload,
            "write_ratio": write_ratio,
            "conflict_rate": conflict_rate,
            "clients": num_clients,
        }
        if is_fleet:
            meta["groups"] = spec.group_ids()
        writer = TraceWriter(trace_path, meta=meta,
                             flush_every=trace_flush_every, fsync=trace_fsync,
                             rotate_bytes=trace_rotate_bytes)
        history: History = RecordingHistory(writer)
    else:
        history = History()
    store = open_store(spec, history=history, recorder=LatencyRecorder(),
                       codec=codec)
    controller = None
    migration_errors: List[str] = []
    if migrations:
        from repro.fleet.migration import MigrationController

        controller = MigrationController(
            spec, store, journal_path=migration_journal,
            crash_phase=migration_crash_phase)
    checker = None
    if check_inline:
        from repro.net.check import streaming_checker_for

        checker = streaming_checker_for(spec.protocol,
                                        model=declared.checker_model,
                                        min_epoch_ops=check_min_epoch_ops,
                                        on_verdict=on_verdict)
        history.attach_observer(checker)
    if admission is not None:
        store.admission = admission
    metrics_server = None
    if metrics is not None:
        from repro.obs.instrument import instrument_checker, instrument_transport

        instrument_transport(metrics, store.process.transport, node="load")
        if checker is not None:
            instrument_checker(metrics, checker)
        if is_fleet:
            from repro.obs.instrument import instrument_fleet

            instrument_fleet(metrics, store, controller=controller)
        if metrics_port is not None:
            from repro.obs.http import MetricsServer

            metrics_server = MetricsServer(metrics, port=metrics_port)
    recorder = store.recorder
    response_recorder: Optional[LatencyRecorder] = None
    try:
        sessions = _build_sessions(store, num_clients, client_prefix, level)
        pairs, executor = _build_pairs_and_executor(
            store, sessions, workload, write_ratio, conflict_rate, num_keys,
            seed)
        if open_loop:
            response_recorder = LatencyRecorder()
            driver = OpenLoopDriver(
                store.env, pairs, executor,
                rate_per_s=rate, duration_ms=duration_ms,
                arrival=arrival, seed=seed, recorder=response_recorder,
                drain_timeout_ms=drain_timeout_ms,
            )
        else:
            driver = ClosedLoopDriver(
                store.env, pairs, executor,
                duration_ms=duration_ms, operations_per_client=ops_per_client,
                think_time_ms=think_time_ms,
            )
        if metrics_server is not None:
            port = await metrics_server.start()
            print(f"repro-load metrics on http://127.0.0.1:{port}/metrics",
                  flush=True)
        await store.start()    # no listeners; starts the pump
        migration_proc = None
        if controller is not None:
            from repro.fleet.migration import ControllerCrashed

            def _run_migrations():
                try:
                    yield from controller.run(list(migrations))
                except ControllerCrashed as exc:
                    # The in-process stand-in for kill -9: the controller's
                    # transient freeze/mirror flags die with it (they were
                    # process state), the journal is already closed, and the
                    # load keeps running against the durable placement.
                    store.placement.clear_transient()
                    migration_errors.append(str(exc))

            migration_proc = store.env.process(_run_migrations())
        await store.drive(driver)
        if migration_proc is not None:
            # Migrations scheduled past the load window still must finish.
            migration_done = asyncio.ensure_future(
                store.env.as_future(migration_proc))
            await asyncio.wait({migration_done, store.process.pump_task},
                               return_when=asyncio.FIRST_COMPLETED)
            if not migration_done.done():
                migration_done.cancel()
                exc = store.process.pump_task.exception()
                if exc is not None:
                    raise exc
                raise RuntimeError(
                    "event pump stopped before migrations completed")
            await migration_done
    finally:
        await store.stop()
        if controller is not None:
            controller.close()
        if metrics_server is not None:
            await metrics_server.close()
        if writer is not None:
            writer.close()

    # Open-loop headline numbers are the coordinated-omission-correct
    # response times (intended arrival -> completion); the per-attempt
    # service times stay available under ``service_categories``.
    headline = response_recorder if response_recorder is not None else recorder
    summary: Dict[str, Any] = {
        "protocol": spec.protocol,
        "level": declared.value,
        "workload": workload,
        "clients": num_clients,
        "codec": codec,
        "ops": headline.count(),
        "duration_ms": headline.duration_ms,
        "throughput_ops_per_s": headline.throughput(),
        "categories": {},
        "trace": trace_path,
    }
    for category in headline.categories():
        summary["categories"][category] = headline.percentiles(category).as_dict()
    if response_recorder is not None:
        summary["open_loop"] = driver.stats()
        summary["service_categories"] = {
            category: recorder.percentiles(category).as_dict()
            for category in recorder.categories()
        }
    if controller is not None:
        migration_summary = controller.report()
        migration_summary["crashed"] = bool(migration_errors)
        if migration_errors:
            migration_summary["errors"] = migration_errors
        migration_summary["windows"] = controller.windows()
        summary["migration"] = migration_summary
    if is_fleet:
        summary["routed_ops"] = dict(store.tracker.routed_ops)
    if checker is not None:
        report = checker.close()
        summary["check"] = {
            "satisfied": report.satisfied,
            "model": report.model,
            "epochs": report.epochs,
            "ops_checked": report.ops_checked,
            "max_segment_ops": report.max_segment_ops,
            "first_violation": (report.first_violation.describe()
                                if report.first_violation else None),
        }
    if metrics is not None:
        summary["metrics"] = metrics.as_dict()
    if admission is not None:
        summary["admission"] = admission.counters()
    return summary


def load_main(spec, **kwargs) -> Dict[str, Any]:
    """Synchronous wrapper for the CLI."""
    return asyncio.run(run_load(spec, **kwargs))
