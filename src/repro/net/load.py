"""Live load generation.

``repro load`` builds protocol clients against a running cluster, drives
them with the *same* workload generators and closed-loop driver the
simulated experiments use (:mod:`repro.workloads`), records latencies with
:class:`~repro.sim.stats.LatencyRecorder`, and streams the invocation/
response history to a JSONL trace for ``repro live-check``.

Workloads:

* ``ycsb`` — single-key reads/writes (:class:`~repro.workloads.ycsb.YcsbWorkload`).
  Against Gryff these map to register reads/writes; against Spanner they
  become single-key read-only / read-write transactions.
* ``retwis`` — the transactional Retwis mix over Zipfian keys
  (:class:`~repro.workloads.retwis.RetwisWorkload`; Spanner only).
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional

from repro.net.cluster import LiveProcess
from repro.net.recorder import RecordingHistory, TraceWriter
from repro.net.spec import ClusterSpec
from repro.core.history import History
from repro.sim.clock import TrueTime
from repro.sim.stats import LatencyRecorder
from repro.workloads.clients import ClosedLoopDriver
from repro.workloads.ycsb import OperationSpec, YcsbWorkload

__all__ = ["run_load", "load_main", "spanner_ycsb_executor"]


def spanner_ycsb_executor(client, spec: OperationSpec):
    """Map YCSB single-key operations onto the transactional interface."""
    from repro.spanner.client import TransactionAborted

    try:
        if spec.kind == "write":
            yield from client.read_write_transaction(
                [], lambda _reads, _key=spec.key, _value=spec.value: {_key: _value})
        else:
            yield from client.read_only_transaction([spec.key])
    except TransactionAborted:
        pass  # retried out; the recorder already saw the latency of retries


def _build_clients(process: LiveProcess, history: History,
                   recorder: LatencyRecorder, num_clients: int,
                   client_prefix: str) -> List[Any]:
    spec = process.spec
    sites = spec.sites()
    clients: List[Any] = []
    if spec.is_gryff:
        from repro.gryff.client import GryffClient

        config = spec.gryff_config()
        for index in range(num_clients):
            site = sites[index % len(sites)]
            clients.append(GryffClient(
                process.env, process.transport, config,
                name=f"{client_prefix}{index + 1}@{site}", site=site,
                history=history, recorder=recorder,
            ))
    else:
        from repro.spanner.client import SpannerClient

        config = spec.spanner_config()
        truetime = TrueTime(process.env, epsilon=config.truetime_epsilon_ms)
        for index in range(num_clients):
            site = sites[index % len(sites)]
            clients.append(SpannerClient(
                process.env, process.transport, truetime, config,
                name=f"{client_prefix}{index + 1}@{site}", site=site,
                history=history, recorder=recorder,
            ))
    return clients


def _build_workload_and_executor(spec: ClusterSpec, clients: List[Any],
                                 workload: str, write_ratio: float,
                                 conflict_rate: float, num_keys: int,
                                 seed: int):
    if workload == "ycsb":
        workloads = [
            YcsbWorkload(client_id=client.name, write_ratio=write_ratio,
                         conflict_rate=conflict_rate, seed=seed * 1000 + index)
            for index, client in enumerate(clients)
        ]
        if spec.is_gryff:
            from repro.bench.gryff_experiments import ycsb_executor

            return workloads, ycsb_executor
        return workloads, spanner_ycsb_executor
    if workload == "retwis":
        if not spec.is_spanner:
            raise ValueError("the retwis workload is transactional (Spanner only)")
        from repro.bench.spanner_experiments import make_retwis_executor
        from repro.workloads.retwis import RetwisWorkload

        workload_by_client = {}
        workloads = []
        for index, client in enumerate(clients):
            retwis = RetwisWorkload(num_keys=num_keys, zipf_skew=0.7,
                                    seed=seed * 1000 + index,
                                    value_tag=f"{client.name}-")
            workload_by_client[client.name] = retwis
            workloads.append(retwis)
        return workloads, make_retwis_executor(workload_by_client)
    raise ValueError(f"unknown workload {workload!r}")


async def run_load(spec: ClusterSpec, *,
                   num_clients: int = 4,
                   duration_ms: Optional[float] = 2_000.0,
                   ops_per_client: Optional[int] = None,
                   workload: str = "ycsb",
                   write_ratio: float = 0.5,
                   conflict_rate: float = 0.10,
                   num_keys: int = 1_000,
                   seed: int = 1,
                   trace_path: Optional[str] = None,
                   client_prefix: str = "client",
                   think_time_ms: float = 0.0,
                   check_inline: bool = False,
                   check_min_epoch_ops: int = 64,
                   on_verdict=None,
                   trace_flush_every: int = 1,
                   trace_fsync: bool = False,
                   trace_rotate_bytes: Optional[int] = None) -> Dict[str, Any]:
    """Drive a running cluster; returns a summary dict (and writes a trace).

    The returned summary carries per-category percentiles, throughput, and
    the op count; ``ops == 0`` means the cluster was unreachable.  With
    ``check_inline`` a streaming checker rides on the history's observer
    hook, validating each quiescent epoch as the load runs; its
    :class:`~repro.core.checkers.streaming.StreamReport` lands in
    ``summary["check"]``.
    """
    process = LiveProcess(spec, host_nodes=())   # pure client process
    writer = None
    if trace_path:
        writer = TraceWriter(trace_path, meta={
            "protocol": spec.protocol,
            "epoch": spec.epoch,
            "workload": workload,
            "write_ratio": write_ratio,
            "conflict_rate": conflict_rate,
            "clients": num_clients,
        }, flush_every=trace_flush_every, fsync=trace_fsync,
           rotate_bytes=trace_rotate_bytes)
        history: History = RecordingHistory(writer)
    else:
        history = History()
    checker = None
    if check_inline:
        from repro.net.check import streaming_checker_for

        checker = streaming_checker_for(spec.protocol,
                                        min_epoch_ops=check_min_epoch_ops,
                                        on_verdict=on_verdict)
        history.attach_observer(checker)
    recorder = LatencyRecorder()
    try:
        clients = _build_clients(process, history, recorder, num_clients,
                                 client_prefix)
        workloads, executor = _build_workload_and_executor(
            spec, clients, workload, write_ratio, conflict_rate, num_keys, seed)
        driver = ClosedLoopDriver(
            process.env, clients, workloads, executor,
            duration_ms=duration_ms, operations_per_client=ops_per_client,
            think_time_ms=think_time_ms,
        )
        await process.start()    # no listeners; starts the pump
        procs = driver.start()
        clients_done = asyncio.ensure_future(asyncio.gather(
            *(process.env.as_future(proc) for proc in procs)))
        # Race the clients against the pump: if the pump dies, no event
        # (including the drivers' deadline timeouts) ever fires again, so
        # waiting on the clients alone would hang forever.
        await asyncio.wait({clients_done, process.pump_task},
                           return_when=asyncio.FIRST_COMPLETED)
        if not clients_done.done():
            clients_done.cancel()
            exc = process.pump_task.exception()
            if exc is not None:
                raise exc
            raise RuntimeError("event pump stopped before the load completed")
        await clients_done
    finally:
        await process.stop()
        if writer is not None:
            writer.close()

    summary: Dict[str, Any] = {
        "protocol": spec.protocol,
        "workload": workload,
        "clients": num_clients,
        "ops": recorder.count(),
        "duration_ms": recorder.duration_ms,
        "throughput_ops_per_s": recorder.throughput(),
        "categories": {},
        "trace": trace_path,
    }
    for category in recorder.categories():
        summary["categories"][category] = recorder.percentiles(category).as_dict()
    if checker is not None:
        report = checker.close()
        summary["check"] = {
            "satisfied": report.satisfied,
            "model": report.model,
            "epochs": report.epochs,
            "ops_checked": report.ops_checked,
            "max_segment_ops": report.max_segment_ops,
            "first_violation": (report.first_violation.describe()
                                if report.first_violation else None),
        }
    return summary


def load_main(spec: ClusterSpec, **kwargs) -> Dict[str, Any]:
    """Synchronous wrapper for the CLI."""
    return asyncio.run(run_load(spec, **kwargs))
