"""One OS-process-worth of a live cluster.

A :class:`LiveProcess` bundles a :class:`~repro.net.realtime.RealtimeEnvironment`,
a :class:`~repro.net.transport.LiveTransport`, and the protocol server nodes
this process hosts (all of them by default; one per process in ``--node``
subprocess mode).  The protocol objects are the *same classes the simulator
runs* — :class:`~repro.gryff.replica.GryffReplica` and
:class:`~repro.spanner.shard.ShardLeader` — constructed against the live
environment and transport instead of the simulated ones.

Spanner note: each shard's Paxos group is still modeled (the
:class:`~repro.spanner.replication.ReplicationLog` waits out the replication
delay on the wall clock) — the live runtime distributes *shard leaders and
clients*; intra-shard replication fidelity is future work.  TrueTime is the
simulated interval API over the shared wall clock: on one machine the skew
between processes is (far) below the configured epsilon, so the interval
invariant holds exactly as in the paper's deployment.
"""

from __future__ import annotations

import asyncio
import os
import signal
from typing import Dict, Iterable, List, Optional

from repro.net.realtime import RealtimeEnvironment
from repro.net.spec import ClusterSpec
from repro.net.transport import LiveTransport
from repro.sim.clock import TrueTime

__all__ = ["LiveProcess", "serve_forever"]


class LiveProcess:
    """Environment + transport + the server nodes hosted in this process.

    Chaos knobs (all optional, all default-off):

    ``wal_dir``
        Hosted nodes append to ``<wal_dir>/<name>.wal`` and recover from it
        on construction — a restarted :class:`LiveProcess` with the same
        ``wal_dir`` resumes from the crashed process's durable state.
    ``leases``
        Shared ``{shard name: LeaderLease}`` mapping for Spanner leader
        fencing.  In-process chaos runs pass one dict to every process.
    ``faults``
        A :class:`~repro.chaos.faults.FaultController` installed on the
        transport, so one nemesis object steers drops/partitions/delays
        across every process in the run.
    ``metrics``
        A :class:`~repro.obs.MetricsRegistry`; when given, the transport
        and every hosted node are instrumented (scrape-time collectors, so
        the hot paths stay untouched).  ``None`` — the default — attaches
        nothing.

    ``codec`` selects the wire format this process *initiates* with
    (``"binary"`` — wire v2, the default — or ``"json"`` — the ``nc``-able
    v1 debug format).  Inbound frames are always decoded by per-frame
    version dispatch, so a binary process interoperates with JSON peers
    and vice versa (replies follow the codec the peer announced).
    """

    def __init__(self, spec: ClusterSpec, host_nodes: Optional[Iterable[str]] = None,
                 wal_dir: Optional[str] = None,
                 leases: Optional[Dict[str, object]] = None,
                 faults: Optional[object] = None,
                 metrics: Optional[object] = None,
                 codec: str = "binary",
                 node_configs: Optional[Dict[str, object]] = None):
        self.spec = spec
        #: Per-node protocol config overrides.  A fleet serves N groups from
        #: one merged spec, but each group's servers must run with *their
        #: group's* config (group-local quorum/shard fan-out), not the
        #: spec-level one; nodes absent from the mapping keep the spec-level
        #: default, so standalone clusters are untouched.
        self._node_configs = dict(node_configs or {})
        self.env = RealtimeEnvironment(epoch=spec.epoch)
        self.transport = LiveTransport(spec, self.env, codec=codec)
        if faults is not None:
            self.transport.faults = faults
        self.wal_dir = wal_dir
        self.leases = dict(leases or {})
        self.host_names: List[str] = (list(host_nodes) if host_nodes is not None
                                      else spec.server_names())
        unknown = [name for name in self.host_names if name not in spec.nodes]
        if unknown:
            raise ValueError(f"nodes not in the cluster spec: {unknown}")
        self.nodes: Dict[str, object] = {}
        self.truetime: Optional[TrueTime] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._build_nodes()
        self.metrics = metrics
        if metrics is not None:
            from repro.obs.instrument import instrument_process

            instrument_process(metrics, self)

    def _wal_for(self, name: str):
        if self.wal_dir is None:
            return None
        from repro.storage.wal import WriteAheadLog

        return WriteAheadLog(os.path.join(self.wal_dir, f"{name}.wal"))

    def _build_nodes(self) -> None:
        if not self.host_names:
            return
        default_config = None

        def config_for(name: str):
            nonlocal default_config
            override = self._node_configs.get(name)
            if override is not None:
                return override
            if default_config is None:
                default_config = (self.spec.gryff_config()
                                  if self.spec.is_gryff
                                  else self.spec.spanner_config())
            return default_config

        if self.spec.is_gryff:
            from repro.gryff.replica import GryffReplica

            for name in self.host_names:
                node_spec = self.spec.nodes[name]
                self.nodes[name] = GryffReplica(
                    self.env, self.transport, config_for(name),
                    name=name, site=node_spec.site,
                    wal=self._wal_for(name),
                )
        else:
            from repro.spanner.shard import ShardLeader

            for name in self.host_names:
                node_spec = self.spec.nodes[name]
                config = config_for(name)
                if self.truetime is None:
                    # One shared TrueTime per process (all groups share the
                    # wall-clock epoch and epsilon).
                    self.truetime = TrueTime(
                        self.env, epsilon=config.truetime_epsilon_ms)
                self.nodes[name] = ShardLeader(
                    self.env, self.transport, self.truetime, config,
                    name=name, site=node_spec.site,
                    wal=self._wal_for(name), lease=self.leases.get(name),
                )

    # ------------------------------------------------------------------ #
    async def start(self) -> Dict[str, int]:
        """Bind listeners for every hosted node and start the event pump.
        Returns ``{node name: bound port}``."""
        ports = {}
        for name in self.host_names:
            ports[name] = await self.transport.start_listener(name)
        self._pump_task = asyncio.get_running_loop().create_task(
            self.env.run_async())
        return ports

    @property
    def pump_task(self) -> Optional[asyncio.Task]:
        return self._pump_task

    async def stop(self) -> None:
        """Stop the pump and the transport; idempotent."""
        if self._pump_task is not None:
            self.env.request_stop()
            try:
                await self._pump_task
            except asyncio.CancelledError:  # pragma: no cover - teardown
                pass
            except Exception:
                # A pump failure was already surfaced to whoever awaited or
                # inspected the task; don't let teardown raise it again.
                pass
            self._pump_task = None
        await self.transport.close()

    def close_wals(self) -> None:
        """Freeze the durable state of every hosted node (crash injection).

        Called *before* :meth:`stop` when simulating a kill -9: anything a
        still-running handler appends after this instant is silently dropped,
        like un-fsynced writes of a SIGKILLed process.
        """
        for node in self.nodes.values():
            wal = getattr(node, "wal", None)
            if wal is not None:
                wal.close()

    def node_stats(self) -> Dict[str, Dict[str, int]]:
        return {name: dict(getattr(node, "stats", {}))
                for name, node in self.nodes.items()}


async def serve_forever(spec: ClusterSpec,
                        host_nodes: Optional[Iterable[str]] = None,
                        ready_message: bool = True,
                        stop_event: Optional[asyncio.Event] = None,
                        wal_dir: Optional[str] = None,
                        metrics_port: Optional[int] = None,
                        codec: str = "binary",
                        node_configs: Optional[Dict[str, object]] = None) -> int:
    """Run a server process until SIGINT/SIGTERM (or ``stop_event``).

    ``metrics_port`` instruments the process with a fresh registry and
    serves it at ``http://127.0.0.1:<port>/metrics`` (0 = ephemeral port,
    announced in the ready message).  ``codec`` picks the wire format for
    connections this process initiates (server-to-server); accepted
    connections are served in whichever codec the peer speaks.  Returns the
    process exit code: 0 on a clean, signal-driven shutdown, 1 if the event
    pump died (a protocol error surfaced).
    """
    metrics = None
    metrics_server = None
    if metrics_port is not None:
        from repro.obs.http import MetricsServer
        from repro.obs.registry import MetricsRegistry

        metrics = MetricsRegistry()
        metrics_server = MetricsServer(metrics, port=metrics_port)
    process = LiveProcess(spec, host_nodes, wal_dir=wal_dir, metrics=metrics,
                          codec=codec, node_configs=node_configs)
    ports = await process.start()
    bound_metrics_port = (await metrics_server.start()
                          if metrics_server is not None else None)
    stop = stop_event if stop_event is not None else asyncio.Event()
    loop = asyncio.get_running_loop()
    registered = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
            registered.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    if ready_message:
        listening = " ".join(f"{name}={spec.nodes[name].host}:{port}"
                             for name, port in sorted(ports.items()))
        suffix = (f" metrics=127.0.0.1:{bound_metrics_port}"
                  if bound_metrics_port is not None else "")
        print(f"repro-serve ready protocol={spec.protocol} {listening}"
              f"{suffix}", flush=True)
    exit_code = 0
    stop_wait = asyncio.ensure_future(stop.wait())
    try:
        done, _ = await asyncio.wait(
            [stop_wait, process.pump_task],
            return_when=asyncio.FIRST_COMPLETED)
        if process.pump_task in done and process.pump_task.exception() is not None:
            exc = process.pump_task.exception()
            print(f"repro-serve error: {exc!r}", flush=True)
            exit_code = 1
    finally:
        stop_wait.cancel()
        for signum in registered:
            loop.remove_signal_handler(signum)
        if metrics_server is not None:
            await metrics_server.close()
        await process.stop()
    if ready_message:
        print("repro-serve stopped", flush=True)
    return exit_code
