"""The transport abstraction and its asyncio TCP implementation.

Protocol nodes (:class:`repro.sim.node.Node` subclasses) talk to their peers
exclusively through three calls — ``register(name, endpoint)``,
``send(src, dst, kind, payload)``, and ``node(name)`` (for the peer's
``site``) — which is the contract extracted here as :class:`TransportBase`.
The simulator's :class:`repro.sim.network.Network` already satisfies it (by
duck typing; the sim side is deliberately untouched so its schedules stay
bit-identical), and :class:`LiveTransport` implements the same contract over
real asyncio TCP:

* one listener per *hosted* server node (addresses come from the
  :class:`~repro.net.spec.ClusterSpec`);
* one outbound connection per peer **address**, shared by all local nodes,
  with automatic reconnect and exponential backoff — a single TCP stream per
  channel gives per-peer FIFO ordering, matching the simulator's channel
  model;
* **learned reply routes**: when a frame from a ``src`` that is *not* a
  configured server arrives over a connection, the transport remembers that
  ``src`` is reachable over it.  Clients are therefore never listed in the
  spec — replicas reply to them over the connection the request came in on,
  exactly like any RPC server.  Configured peers always use their dialer
  channel (never a learned route), so each server-to-server channel stays a
  single TCP stream and keeps its FIFO guarantee.

Throughput machinery (the live fast path):

* **Batching** — every message queued on a channel during one event-loop
  tick is coalesced into a single write: one v2 BATCH frame under the
  binary codec, or a ``writelines`` of per-message frames under JSON —
  either way one ``drain`` (one syscall burst) instead of one per message.
  Coalescing never reorders: the queue is FIFO and a batch preserves it, so
  TCP order still equals sim channel order (pinned by the differential
  test).
* **Pipelining bound** — at most one encoded batch (≤ ``_MAX_BATCH_MSGS``
  messages) is in flight per connection beyond the OS socket buffers;
  ``drain`` applies the stream's flow control before the next batch is
  encoded.  The undrained batch is what gets re-sent after a reconnect.
* **Nagle off** — ``TCP_NODELAY`` on every connection; batching already
  aggregates writes, so delayed-ACK interaction would only add latency.
* **Codec** — ``codec="binary"`` (default) speaks wire v2 with per-channel
  intern tables; ``codec="json"`` keeps the ``nc``-able v1 frames.
  Version dispatch on the receive side is per-frame, so a binary listener
  serves JSON (v1) connections transparently and replies in the codec the
  peer announced (accepted channels upgrade to binary only after a v2
  HELLO arrives — the mixed-version downgrade path).

Delivery of an incoming frame runs the destination node's handler on the
asyncio loop and then kicks the :class:`~repro.net.realtime.RealtimeEnvironment`
so generator handlers (simulation processes) resume promptly.

Reliability note: a batch popped for writing when the connection breaks is
resent after reconnecting, so messages are delivered at-least-once across
reconnects (exactly-once on a healthy connection).  The protocols' RPC layer
keys replies by call id, so duplicated *replies* are harmless; duplicated
requests are possible only across a reconnect and are acceptable for the
load-testing runtime this implements.
"""

from __future__ import annotations

import asyncio
import logging
import random
import socket
import sys
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.net.spec import ClusterSpec
from repro.net.wire import (
    WIRE_VERSION,
    BinaryEncoder,
    FrameDecoder,
    WireError,
    encode_frame,
    frame_to_message,
    message_to_frame,
)
from repro.net.realtime import RealtimeEnvironment
from repro.sim.network import Message

__all__ = ["TransportBase", "PeerStub", "ReconnectPolicy", "LiveTransport"]

log = logging.getLogger("repro.net")

#: Reconnect backoff bounds (seconds).
_BACKOFF_INITIAL_S = 0.05
_BACKOFF_MAX_S = 2.0

#: Most messages coalesced into one batch write (the pipelining bound).
_MAX_BATCH_MSGS = 256

#: Read-side chunk size; one read can carry many frames at high rate.
_READ_CHUNK = 256 * 1024


def _set_nodelay(writer: asyncio.StreamWriter) -> None:
    """Disable Nagle: batching already aggregates writes, so coalescing in
    the kernel would only add delayed-ACK latency."""
    sock = writer.get_extra_info("socket")
    if sock is not None:
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except (OSError, ValueError):  # pragma: no cover - best effort
            pass


@dataclass(frozen=True)
class ReconnectPolicy:
    """Backoff schedule for redialing a dead peer.

    The base delay grows exponentially from ``initial_s`` by ``multiplier``
    per consecutive failure, capped at ``max_s``.  ``jitter`` spreads each
    sleep uniformly over ``[base * (1 - jitter), base]`` so that many clients
    healing from the same partition do not redial in lockstep (thundering
    herd).  ``budget`` bounds the number of consecutive failed dials; when it
    is exhausted the channel gives up and closes (queued frames are dropped
    with a warning; the next ``send`` to that peer opens a fresh channel with
    a fresh budget).  ``budget=None`` retries forever — the default, matching
    the long-lived server-to-server channels' needs.
    """

    initial_s: float = _BACKOFF_INITIAL_S
    max_s: float = _BACKOFF_MAX_S
    multiplier: float = 2.0
    jitter: float = 0.5
    budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.initial_s <= 0 or self.max_s < self.initial_s:
            raise ValueError("require 0 < initial_s <= max_s")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.budget is not None and self.budget < 1:
            raise ValueError("budget must be None or >= 1")

    def base_delay(self, attempt: int) -> float:
        """Uncapped-by-jitter base delay before the ``attempt``-th redial
        (1-based count of consecutive failures)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(self.initial_s * self.multiplier ** (attempt - 1), self.max_s)

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Jittered sleep before the ``attempt``-th redial."""
        base = self.base_delay(attempt)
        if self.jitter <= 0:
            return base
        floor = base * (1.0 - self.jitter)
        return floor + (base - floor) * rng.random()

    def exhausted(self, attempt: int) -> bool:
        """True once ``attempt`` consecutive failures exceed the budget."""
        return self.budget is not None and attempt >= self.budget


class TransportBase:
    """The message-passing contract protocol nodes rely on.

    :class:`repro.sim.network.Network` satisfies it by duck typing (the sim
    module predates this abstraction and is kept byte-identical);
    :class:`LiveTransport` subclasses it explicitly.
    """

    def register(self, name: str, endpoint: Any) -> None:
        raise NotImplementedError

    def send(self, src: str, dst: str, kind: str, payload: Any) -> Message:
        raise NotImplementedError

    def node(self, name: str) -> Any:
        """The local endpoint or a :class:`PeerStub` (must expose ``site``)."""
        raise NotImplementedError


@dataclass(frozen=True)
class PeerStub:
    """Site metadata for a remote node (satisfies ``network.node(x).site``)."""

    name: str
    site: str


class _Channel:
    """One ordered message sink: an outbound queue drained by a writer task.

    The drain task pops every message queued at that moment (up to
    ``_MAX_BATCH_MSGS``), encodes them as one batch, and writes them with a
    single flush — the batching that closes most of the per-message syscall
    gap.  Outbound (dialing) channels reconnect with backoff and re-send
    the batch that was in flight when the connection broke; inbound
    (accepted) channels die with their socket — the dialing side owns
    reconnection.

    Dialer channels speak the transport's configured codec from the start
    (a binary dialer opens every connection with a HELLO snapshot of its
    intern table).  Accepted (reply) channels start in JSON and upgrade to
    binary only once a v2 HELLO arrives on their connection, which is the
    downgrade path that lets a v2 listener serve v1 peers.
    """

    def __init__(self, transport: "LiveTransport",
                 address: Optional[Tuple[str, int]] = None,
                 writer: Optional[asyncio.StreamWriter] = None):
        self.transport = transport
        self.address = address
        self.closed = False
        self._queue: "asyncio.Queue[Message]" = asyncio.Queue()
        self._pending: Optional[List[bytes]] = None
        self._pending_count = 0
        self._writer = writer
        self._task: Optional[asyncio.Task] = None
        use_binary = transport.codec == "binary" and address is not None
        self._encoder: Optional[BinaryEncoder] = (
            BinaryEncoder() if use_binary else None)
        self._hello_due = use_binary

    def start(self) -> None:
        runner = self._run_dialer if self.address is not None else self._run_accepted
        self._task = asyncio.get_running_loop().create_task(runner())

    def send_message(self, message: Message) -> None:
        if not self.closed:
            self._queue.put_nowait(message)

    def enable_binary(self) -> None:
        """Upgrade replies on this accepted connection to the v2 codec
        (the peer announced v2 with a HELLO).  Idempotent."""
        if self._encoder is None and not self.closed:
            self._encoder = BinaryEncoder()
            self._hello_due = True

    @property
    def queued_messages(self) -> int:
        """Messages accepted but not yet written to a socket."""
        return self._queue.qsize() + self._pending_count

    def _encode_batch(self, batch: "List[Message]") -> "List[bytes]":
        if self._encoder is not None:
            return [self._encoder.encode_batch(batch)]
        return [encode_frame(message_to_frame(m)) for m in batch]

    async def _drain_queue(self, writer: asyncio.StreamWriter) -> None:
        transport = self.transport
        queue = self._queue
        while not self.closed:
            if self._pending is None:
                batch = [await queue.get()]
                # Everything already queued — i.e. every send from the tick
                # that woke us — coalesces into this batch, FIFO intact.
                while len(batch) < _MAX_BATCH_MSGS and not queue.empty():
                    batch.append(queue.get_nowait())
                try:
                    self._pending = self._encode_batch(batch)
                    self._pending_count = len(batch)
                except WireError as exc:
                    log.warning("dropping %d unencodable message(s): %s",
                                len(batch), exc)
                    continue
            frames = list(self._pending)
            if self._hello_due and self._encoder is not None:
                frames.insert(0, self._encoder.hello_frame())
                self._hello_due = False
            writer.writelines(frames)
            await writer.drain()
            transport.bytes_sent += sum(len(f) for f in frames)
            transport.frames_sent += len(frames)
            transport.batches_sent += 1
            transport.messages_framed += self._pending_count
            self._pending = None
            self._pending_count = 0

    async def _run_dialer(self) -> None:
        assert self.address is not None
        host, port = self.address
        loop = asyncio.get_running_loop()
        policy = self.transport.reconnect
        rng = self.transport.reconnect_rng
        attempt = 0
        while not self.closed:
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except OSError:
                attempt += 1
                if policy.exhausted(attempt):
                    queued = self._queue.qsize() + self._pending_count
                    log.warning(
                        "giving up on %s:%s after %d failed dials; dropping "
                        "%d queued message(s)", host, port, attempt, queued)
                    break
                await asyncio.sleep(policy.delay(attempt, rng))
                continue
            attempt = 0
            if self._writer is not None:
                # A writer from a previous life of this channel means this
                # successful dial is a *re*-connect.
                self.transport.reconnects += 1
            self._writer = writer
            _set_nodelay(writer)
            # A fresh connection means a fresh receiver-side intern table:
            # re-announce with a full HELLO snapshot before any data (the
            # in-flight batch may reference ids defined long ago).
            self._hello_due = self._encoder is not None
            # Watch the read side too: a peer closing the connection surfaces
            # as EOF there long before a write into the half-open socket
            # would error, and we must reconnect *before* draining more
            # frames into a dead socket (self._pending re-sends on the new
            # one — the at-least-once guarantee).
            read_task = loop.create_task(
                self.transport._read_loop(reader, route_channel=self))
            drain_task = loop.create_task(self._drain_queue(writer))
            try:
                await asyncio.wait({read_task, drain_task},
                                   return_when=asyncio.FIRST_COMPLETED)
            finally:
                for task in (read_task, drain_task):
                    task.cancel()
                for task in (read_task, drain_task):
                    try:
                        await task
                    except (ConnectionError, OSError, WireError,
                            asyncio.CancelledError):
                        pass
                self._close_writer(writer)
        # Closed externally, or the retry budget ran out: either way the
        # channel is dead, and the next send to this peer opens a fresh one.
        self.closed = True

    async def _run_accepted(self) -> None:
        writer = self._writer
        assert writer is not None
        _set_nodelay(writer)
        try:
            await self._drain_queue(writer)
        except (ConnectionError, OSError):
            pass
        finally:
            self._close_writer(writer)
            self.closed = True
            self.transport._drop_routes(self)

    @staticmethod
    def _close_writer(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass

    def close(self) -> None:
        self.closed = True
        if self._task is not None:
            self._task.cancel()
        if self._writer is not None:
            self._close_writer(self._writer)


class LiveTransport(TransportBase):
    """Asyncio TCP transport for one OS process of a live cluster."""

    def __init__(self, spec: ClusterSpec, env: RealtimeEnvironment,
                 reconnect: Optional[ReconnectPolicy] = None,
                 reconnect_rng: Optional[random.Random] = None,
                 codec: str = "binary"):
        if codec not in ("json", "binary"):
            raise ValueError(f"unknown codec {codec!r} (json or binary)")
        self.spec = spec
        self.env = env
        self.codec = codec
        self.reconnect = reconnect if reconnect is not None else ReconnectPolicy()
        self.reconnect_rng = (reconnect_rng if reconnect_rng is not None
                              else random.Random())
        #: Optional :class:`~repro.chaos.faults.FaultController` (duck-typed:
        #: ``fate(src, dst, kind) -> Fate``); ``None`` leaves sends untouched.
        self.faults = None
        self._local: Dict[str, Any] = {}
        self._servers: Dict[str, asyncio.AbstractServer] = {}
        self._dialers: Dict[Tuple[str, int], _Channel] = {}
        self._routes: Dict[str, _Channel] = {}
        self._accepted: list[_Channel] = []
        self._next_msg_id = 0
        self.messages_sent = 0
        self.messages_received = 0
        #: Wire bytes written to / read from sockets.
        self.bytes_sent = 0
        self.bytes_received = 0
        #: Wire frames by direction.  One batch frame carries many messages,
        #: so frames_sent / messages_framed is the batching factor.
        self.frames_sent = 0
        self.frames_received = 0
        #: Batch writes (one flush each) and the messages they carried;
        #: local-loopback messages never reach a channel and are excluded.
        self.batches_sent = 0
        self.messages_framed = 0
        #: Successful redials of a previously connected peer channel.
        self.reconnects = 0
        self.closed = False

    # ------------------------------------------------------------------ #
    # TransportBase
    # ------------------------------------------------------------------ #
    def register(self, name: str, endpoint: Any) -> None:
        if name in self._local:
            raise ValueError(f"duplicate node name {name!r}")
        self._local[name] = endpoint

    def node(self, name: str) -> Any:
        local = self._local.get(name)
        if local is not None:
            return local
        node_spec = self.spec.nodes.get(name)
        if node_spec is not None:
            return PeerStub(name=name, site=node_spec.site)
        raise KeyError(f"unknown node {name!r}")

    @property
    def node_names(self) -> list:
        return sorted(set(self._local) | set(self.spec.nodes))

    def send(self, src: str, dst: str, kind: str, payload: Any) -> Message:
        if self.closed:
            raise RuntimeError("transport is closed")
        self._next_msg_id += 1
        message = Message(src=src, dst=dst, kind=kind, payload=payload,
                          send_time=self.env.now, msg_id=self._next_msg_id)
        self.messages_sent += 1
        if self.faults is not None:
            fate = self.faults.fate(src, dst, kind)
            if fate.drop:
                message.deliver_time = -1.0
                return message
            if fate.extra_delay_ms > 0 or fate.reorder:
                # Re-dispatch after the extra delay; frames sent in the
                # meantime overtake it on the stream (reorder for free).
                asyncio.get_running_loop().call_later(
                    fate.extra_delay_ms / 1000.0, self._dispatch, message)
                return message
        self._dispatch(message)
        return message

    def _dispatch(self, message: Message) -> None:
        """Route one message: local loopback or onto its peer channel."""
        if self.closed:
            return
        src, dst, kind = message.src, message.dst, message.kind
        if dst in self._local:
            # Local loopback: defer via the loop so delivery never re-enters
            # the sending handler's frame, mirroring the sim's asynchrony.
            message.deliver_time = message.send_time
            asyncio.get_running_loop().call_soon(self._deliver_local, message)
            return
        try:
            channel = self._channel_for(dst)
        except KeyError:
            # A learned-route peer (a client) that disconnected: best-effort
            # drop.  Raising here would propagate through the protocol
            # handler into the pump and take down every node in the process.
            log.warning("dropping %s from %s: no route to %r (peer gone?)",
                        kind, src, dst)
            return
        channel.send_message(message)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def _channel_for(self, dst: str) -> _Channel:
        node_spec = self.spec.nodes.get(dst)
        if node_spec is not None:
            # Configured peers always use their dialer channel.  Mixing in a
            # learned (accepted) connection would spread one channel across
            # two TCP streams and break per-peer FIFO ordering.
            address = (node_spec.host, node_spec.port)
            channel = self._dialers.get(address)
            if channel is None or channel.closed:
                channel = _Channel(self, address=address)
                channel.start()
                self._dialers[address] = channel
            return channel
        route = self._routes.get(dst)
        if route is not None and not route.closed:
            return route
        raise KeyError(
            f"no route to {dst!r}: not a configured server and no live "
            f"connection from it")

    def _drop_routes(self, channel: _Channel) -> None:
        for name in [n for n, c in self._routes.items() if c is channel]:
            del self._routes[name]

    # ------------------------------------------------------------------ #
    # Fault injection (chaos engine)
    # ------------------------------------------------------------------ #
    def sever_peer(self, name: str) -> None:
        """Tear down the live connection(s) toward ``name``.

        The dialer channel to a configured peer closes (a later send opens a
        fresh one, subject to the reconnect policy); a learned client route
        closes with its accepted connection.  Used by chaos scenarios to
        model abrupt connection loss without killing either endpoint.
        """
        node_spec = self.spec.nodes.get(name)
        if node_spec is not None:
            channel = self._dialers.pop((node_spec.host, node_spec.port), None)
            if channel is not None:
                channel.close()
        route = self._routes.pop(name, None)
        if route is not None:
            route.close()

    def sever_all(self) -> None:
        """Tear down every live connection (listeners keep accepting)."""
        for channel in list(self._dialers.values()) + list(self._accepted):
            channel.close()
        self._dialers.clear()
        self._routes.clear()

    def queue_depth(self) -> int:
        """Messages queued toward peers but not yet written to a socket.

        A growing depth means a peer is unreachable (messages accumulate
        behind reconnect backoff) or the process cannot keep up — the
        admission controller's overload signal.
        """
        depth = 0
        for channel in list(self._dialers.values()) + list(self._accepted):
            if channel.closed:
                continue
            depth += channel.queued_messages
        return depth

    def _deliver_local(self, message: Message) -> None:
        endpoint = self._local.get(message.dst)
        if endpoint is None:  # node deregistered between send and delivery
            return
        endpoint.deliver(message)
        self.env.kick()

    # ------------------------------------------------------------------ #
    # Inbound
    # ------------------------------------------------------------------ #
    async def _read_loop(self, reader: asyncio.StreamReader,
                         route_channel: Optional[_Channel]) -> None:
        decoder = FrameDecoder()
        binary_replies = self.codec == "binary"
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    if decoder.pending_bytes:
                        log.warning(
                            "dropping connection: closed mid-frame "
                            "(%d buffered bytes)", decoder.pending_bytes)
                    return
                self.bytes_received += len(data)
                frames_before = decoder.frames_decoded
                records = decoder.feed(data)
                self.frames_received += decoder.frames_decoded - frames_before
                if (binary_replies and route_channel is not None
                        and decoder.peer_version == WIRE_VERSION):
                    route_channel.enable_binary()
                for record in records:
                    self._handle_frame(record, route_channel)
        except WireError as exc:
            log.warning("dropping connection: %s", exc)
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass

    def _handle_frame(self, frame: Dict[str, Any],
                      route_channel: Optional[_Channel]) -> None:
        message = frame_to_message(frame, deliver_time=self.env.now)
        if (route_channel is not None and not route_channel.closed
                and message.src not in self.spec.nodes):
            # Reply routes are learned for clients only; configured peers
            # always go through their dialer (see _channel_for).
            self._routes[message.src] = route_channel
        endpoint = self._local.get(message.dst)
        if endpoint is None:
            log.warning("no local endpoint %r for %s from %s",
                        message.dst, message.kind, message.src)
            return
        self.messages_received += 1
        endpoint.deliver(message)
        self.env.kick()

    async def _on_accept(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        channel = _Channel(self, writer=writer)
        channel.start()
        self._accepted.append(channel)
        try:
            await self._read_loop(reader, route_channel=channel)
        finally:
            channel.close()
            self._drop_routes(channel)
            # Dead channels must not accumulate for the server's lifetime.
            try:
                self._accepted.remove(channel)
            except ValueError:
                pass

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start_listener(self, name: str) -> int:
        """Bind the configured address of hosted server node ``name``;
        returns the actual port (resolving a configured port of 0)."""
        node_spec = self.spec.nodes[name]
        server = await asyncio.start_server(
            self._on_accept, host=node_spec.host, port=node_spec.port)
        self._servers[name] = server
        port = server.sockets[0].getsockname()[1]
        if node_spec.port == 0:
            # Propagate the ephemeral port so in-process peers sharing this
            # spec object can dial it (tests bind port 0 to avoid conflicts).
            node_spec.port = port
        return port

    def actual_port(self, name: str) -> int:
        return self._servers[name].sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop listeners and connections; idempotent."""
        if self.closed:
            return
        self.closed = True
        for server in self._servers.values():
            server.close()
        for server in self._servers.values():
            try:
                await server.wait_closed()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        for channel in list(self._dialers.values()) + self._accepted:
            channel.close()
        # Let cancelled channel tasks unwind before the loop closes.
        await asyncio.sleep(0)
