"""Live history capture.

The protocol clients already append every completed operation to a
:class:`~repro.core.history.History`; :class:`RecordingHistory` additionally
streams each operation to a JSONL trace file *as it completes*, so a crash
mid-run loses at most the in-flight operation.  The file format is the
:meth:`History.to_jsonl` format plus one leading ``{"type": "meta", ...}``
record describing the run (protocol, model to check, epoch), which
``repro live-check`` uses to pick the right checker.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Optional, Tuple, Union

from repro.core.events import Operation
from repro.core.history import History, iter_jsonl_records

__all__ = ["TRACE_SCHEMA", "TraceWriter", "RecordingHistory", "read_trace"]

TRACE_SCHEMA = "repro-trace/1"


class TraceWriter:
    """Appends history records to a JSONL trace file, flushing per line."""

    def __init__(self, destination: Union[str, IO[str]],
                 meta: Optional[Dict[str, Any]] = None):
        if isinstance(destination, str):
            self._handle: IO[str] = open(destination, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = destination
            self._owns_handle = False
        header = {"type": "meta", "schema": TRACE_SCHEMA}
        header.update(meta or {})
        self._write(header)

    def _write(self, record: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, separators=(",", ":"), default=str))
        self._handle.write("\n")
        self._handle.flush()

    def record_op(self, op: Operation) -> None:
        record = {"type": "op"}
        record.update(op.to_dict())
        self._write(record)

    def record_edge(self, src_op: Operation, dst_op: Operation) -> None:
        self._write({"type": "edge", "src_op": src_op.op_id,
                     "dst_op": dst_op.op_id})

    def close(self) -> None:
        if self._owns_handle and not self._handle.closed:
            self._handle.close()


class RecordingHistory(History):
    """A history that mirrors every appended operation into a trace file."""

    def __init__(self, writer: TraceWriter):
        super().__init__()
        self._writer = writer

    def add(self, op: Operation) -> Operation:
        super().add(op)
        self._writer.record_op(op)
        return op

    def add_message_edge(self, src_op: Operation, dst_op: Operation) -> None:
        super().add_message_edge(src_op, dst_op)
        self._writer.record_edge(src_op, dst_op)


def read_trace(source: Union[str, IO[str]]
               ) -> Tuple[Dict[str, Any], History]:
    """Load a trace file in one streaming pass: returns ``(meta, history)``.

    ``meta`` is the first ``{"type": "meta"}`` record (empty dict if the file
    is a bare :meth:`History.to_jsonl` dump).  A crash-truncated final line
    is tolerated — the capture loses at most its in-flight record.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return read_trace(handle)
    meta: Dict[str, Any] = {}

    def capture_meta(records):
        for record in records:
            if not meta and record.get("type") == "meta":
                meta.update(record)
                continue
            yield record

    history = History.from_records(capture_meta(iter_jsonl_records(source)))
    return meta, history
