"""Live history capture.

The protocol clients already append every completed operation to a
:class:`~repro.core.history.History`; :class:`RecordingHistory` additionally
streams each event to a JSONL trace file *as it happens*, so a crash mid-run
loses at most the in-flight operation.  The file format is the
:meth:`History.to_jsonl` format plus:

* one leading ``{"type": "meta", ...}`` record per file describing the run
  (protocol, model to check, epoch), which ``repro live-check`` uses to pick
  the right checker;
* one ``{"type": "inv", ...}`` record per invocation and one
  ``{"type": "abandon", ...}`` record per operation that aborted out of its
  retry budget.  These carry no payload the offline loader needs
  (``History.from_jsonl`` skips them), but they are what lets the streaming
  checker detect quiescent frontiers — epoch cut points — online.

Long-running captures can bound file sizes with ``rotate_bytes``: the writer
then produces ``trace-0001.jsonl``, ``trace-0002.jsonl``, ... (each with its
own meta header, so every file is standalone-loadable), and the readers —
:func:`read_trace`, ``History.from_jsonl``, ``live-check --follow`` — accept
the base path as a name for the whole set.
"""

from __future__ import annotations

import json
import os
import time as _time
import warnings
from typing import Any, Callable, Dict, IO, Iterator, Optional, Tuple, Union

from repro.core.events import Operation
from repro.core.history import History, iter_jsonl_records, resolve_jsonl_paths

__all__ = [
    "TRACE_SCHEMA",
    "TraceWriter",
    "RecordingHistory",
    "read_trace",
    "follow_trace_records",
    "merge_record_streams",
    "read_merged_traces",
]

TRACE_SCHEMA = "repro-trace/2"


class TraceWriter:
    """Appends history records to a JSONL trace file.

    Parameters
    ----------
    destination:
        Path or open text handle.
    meta:
        Extra fields for the per-file ``{"type": "meta"}`` header.
    flush_every:
        Flush after every N records (default 1 — every record, the
        durability contract ``live-check`` relies on).  Larger values trade
        tail-loss-on-crash for fewer syscalls on hot paths.
    fsync:
        Also ``os.fsync`` on every flush, surviving OS crashes too.
    rotate_bytes:
        When set (path destinations only), start a new file once the
        current one reaches this size: ``trace.jsonl`` becomes the set
        ``trace-0001.jsonl``, ``trace-0002.jsonl``, ...  Rotation happens
        at record boundaries and each file carries the meta header.
    """

    def __init__(self, destination: Union[str, IO[str]],
                 meta: Optional[Dict[str, Any]] = None,
                 flush_every: int = 1,
                 fsync: bool = False,
                 rotate_bytes: Optional[int] = None):
        self._flush_every = max(1, int(flush_every))
        self._fsync = fsync
        self._since_flush = 0
        self._bytes_written = 0
        self._file_index = 0
        self._header: Dict[str, Any] = {"type": "meta", "schema": TRACE_SCHEMA}
        self._header.update(meta or {})
        if rotate_bytes is not None:
            if not isinstance(destination, str):
                raise ValueError("rotate_bytes requires a path destination")
            if rotate_bytes <= 0:
                raise ValueError("rotate_bytes must be positive")
        self._rotate_bytes = rotate_bytes
        self._path = destination if isinstance(destination, str) else None
        if isinstance(destination, str):
            self._handle: IO[str] = open(self._next_path(), "w",
                                         encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = destination
            self._owns_handle = False
        self._write_header()

    # ------------------------------------------------------------------ #
    def _next_path(self) -> str:
        if self._rotate_bytes is None:
            return self._path  # type: ignore[return-value]
        self._file_index += 1
        stem, suffix = os.path.splitext(self._path)  # type: ignore[arg-type]
        return f"{stem}-{self._file_index:04d}{suffix}"

    def _write_header(self) -> None:
        header = dict(self._header)
        if self._rotate_bytes is not None:
            header["file_index"] = self._file_index
        self._emit(header)

    def _emit(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), default=str) + "\n"
        self._handle.write(line)
        # json.dumps keeps ensure_ascii, so character count == byte count.
        self._bytes_written += len(line)
        self._since_flush += 1
        if self._since_flush >= self._flush_every:
            self.flush()

    def _write(self, record: Dict[str, Any]) -> None:
        self._emit(record)
        if (self._rotate_bytes is not None
                and self._bytes_written >= self._rotate_bytes):
            self.flush()
            # A completed file of the set must be durable before the writer
            # moves on — readers treat every non-final file as torn-free —
            # so rotation fsyncs even when per-record fsync is off.
            if not self._fsync:
                try:
                    os.fsync(self._handle.fileno())
                except (AttributeError, OSError, ValueError):
                    pass
            self._handle.close()
            self._handle = open(self._next_path(), "w", encoding="utf-8")
            self._bytes_written = 0
            self._write_header()

    def flush(self) -> None:
        """Flush buffered records (and fsync when configured)."""
        self._since_flush = 0
        if self._handle.closed:
            return
        self._handle.flush()
        if self._fsync:
            try:
                os.fsync(self._handle.fileno())
            except (AttributeError, OSError, ValueError):
                pass  # in-memory handles have no file descriptor

    # ------------------------------------------------------------------ #
    def record_invocation(self, process: str, invoked_at: float) -> None:
        self._write({"type": "inv", "process": process,
                     "invoked_at": invoked_at})

    def record_abandon(self, process: str, at_time: float) -> None:
        self._write({"type": "abandon", "process": process, "at": at_time})

    def record_op(self, op: Operation) -> None:
        record = {"type": "op"}
        record.update(op.to_dict())
        self._write(record)

    def record_edge(self, src_op: Operation, dst_op: Operation) -> None:
        self._write({"type": "edge", "src_op": src_op.op_id,
                     "dst_op": dst_op.op_id})

    # History observer interface (History.attach_observer) -------------- #
    def on_invocation(self, process: str, invoked_at: float) -> None:
        self.record_invocation(process, invoked_at)

    def on_abandoned(self, process: str, at_time: float) -> None:
        self.record_abandon(process, at_time)

    def on_op(self, op: Operation) -> None:
        self.record_op(op)

    def on_edge(self, src_op: Operation, dst_op: Operation) -> None:
        self.record_edge(src_op, dst_op)

    def close(self) -> None:
        self.flush()
        if self._owns_handle and not self._handle.closed:
            self._handle.close()


class RecordingHistory(History):
    """A history that mirrors every appended event into a trace file.

    Implemented over the generic :meth:`History.attach_observer` hook, so an
    inline streaming checker can be attached beside the writer and both see
    the identical event stream.
    """

    def __init__(self, writer: TraceWriter):
        super().__init__()
        self._writer = writer
        self.attach_observer(writer)


def read_trace(source: Union[str, IO[str]]
               ) -> Tuple[Dict[str, Any], History]:
    """Load a trace in one streaming pass: returns ``(meta, history)``.

    ``meta`` is the first ``{"type": "meta"}`` record (empty dict if the file
    is a bare :meth:`History.to_jsonl` dump).  A path naming a rotated set
    loads every file of the set in order; a crash-truncated final line is
    tolerated — the capture loses at most its in-flight record.
    """
    meta: Dict[str, Any] = {}

    def capture_meta(records):
        for record in records:
            if not meta and record.get("type") == "meta":
                meta.update(record)
                continue
            yield record

    if isinstance(source, str):
        # One streaming pass over the whole (possibly rotated) set; the
        # leading meta header is captured, later files' headers are skipped
        # by from_records.
        def lines():
            for path in resolve_jsonl_paths(source):
                with open(path, "r", encoding="utf-8") as handle:
                    yield from handle

        history = History.from_records(
            capture_meta(iter_jsonl_records(lines())))
        return meta, history
    history = History.from_records(capture_meta(iter_jsonl_records(source)))
    return meta, history


# --------------------------------------------------------------------------- #
# Tail a live trace (rotated sets included)
# --------------------------------------------------------------------------- #
def follow_trace_records(
    path: str,
    poll_interval: float = 0.2,
    idle_timeout: Optional[float] = None,
    stop: Optional[Callable[[], bool]] = None,
    max_poll_interval: Optional[float] = None,
    backoff: float = 2.0,
    _sleep: Callable[[float], None] = _time.sleep,
) -> Iterator[Dict[str, Any]]:
    """Yield parsed trace records as they are written (``tail -f``).

    Follows the single file at ``path`` or, when ``path`` names a rotated
    set, each ``<stem>-NNNN<suffix>`` file in order — moving to the next
    file once the current one stops growing and a successor exists.  The
    generator returns when ``stop()`` goes true or no new data arrives for
    ``idle_timeout`` seconds (``idle_timeout=0`` reads exactly what exists
    and returns; ``None`` follows forever).

    Idle polling backs off exponentially when ``max_poll_interval`` is
    set: each sleep with no new data multiplies the delay by ``backoff``
    (from ``poll_interval`` up to ``max_poll_interval``), and any data
    resets it — a long-lived monitor on an idle cluster polls rarely but
    reacts at ``poll_interval`` granularity once traffic resumes.  The
    default ``max_poll_interval=None`` keeps the historical fixed-interval
    behavior.

    A partial trailing line is buffered until its newline arrives; at
    stream end an undecodable partial tail is tolerated (crash truncation),
    but an undecodable line *mid-stream* raises ``ValueError``.
    """
    if max_poll_interval is not None:
        if max_poll_interval < poll_interval:
            raise ValueError("max_poll_interval must be >= poll_interval")
        if backoff < 1.0:
            raise ValueError("backoff must be >= 1")

    def candidate_files() -> list:
        if os.path.exists(path):
            return [path]
        try:
            return resolve_jsonl_paths(path)
        except FileNotFoundError:
            return []

    index = 0
    handle: Optional[IO[str]] = None
    buffer = ""
    idle = 0.0
    delay = poll_interval
    try:
        while True:
            files = candidate_files()
            if handle is None and index < len(files):
                handle = open(files[index], "r", encoding="utf-8")
                idle = 0.0
                delay = poll_interval
            chunk = handle.read() if handle is not None else ""
            if chunk:
                idle = 0.0
                delay = poll_interval
                buffer += chunk
                *lines, buffer = buffer.split("\n")
                for line in lines:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        yield json.loads(line)
                    except json.JSONDecodeError as exc:
                        raise ValueError(
                            f"corrupt trace record in {files[index]}: {exc}"
                        ) from exc
                continue
            if handle is not None and index + 1 < len(files):
                # The writer rotated on; this file is complete.
                if buffer.strip():
                    raise ValueError(
                        f"trace file {files[index]} ends mid-record but has "
                        f"a successor — corrupt rotation")
                handle.close()
                handle = None
                buffer = ""
                index += 1
                continue
            if stop is not None and stop():
                break
            if idle_timeout is not None and idle >= idle_timeout:
                break
            _sleep(delay)
            idle += delay
            if max_poll_interval is not None:
                delay = min(delay * backoff, max_poll_interval)
    finally:
        if handle is not None:
            handle.close()
    # Stream over: tolerate a crash-truncated final record, loudly.
    tail = buffer.strip()
    if tail:
        try:
            yield json.loads(tail)
        except json.JSONDecodeError as exc:
            warnings.warn(
                f"trace {path} ends with a torn record (discarded): {exc}",
                RuntimeWarning, stacklevel=2)


# --------------------------------------------------------------------------- #
# Merge several traces into one ordered stream
# --------------------------------------------------------------------------- #
def _record_ts(record: Dict[str, Any], last: float) -> float:
    """The merge timestamp of a record.

    ``edge`` records (and anything else without a timestamp) inherit the
    last timestamp seen on their own stream, which keeps them immediately
    after the operation they annotate — the checkers resolve edges by op id,
    so interleaving from other streams at the same instant is harmless.
    """
    kind = record.get("type")
    if kind == "inv":
        return float(record.get("invoked_at", last))
    if kind == "op":
        return float(record.get("responded_at", last))
    if kind == "abandon":
        return float(record.get("at", last))
    return last


def merge_record_streams(sources, **follow_kwargs) -> Iterator[Dict[str, Any]]:
    """Merge trace record streams into one timestamp-ordered stream.

    ``sources`` are trace paths (each opened with
    :func:`follow_trace_records`, forwarding ``follow_kwargs``) or
    already-built record iterables.  Exactly one ``meta`` record is yielded
    first — the first stream's header plus a ``merged_streams`` count —
    and the per-stream headers must agree on the protocol (a merged check
    needs one checker).  A fleet run captures one trace per load generator;
    merging them reconstructs the single global history the streaming
    checker consumes.

    The merge is *streaming*: it holds one head record per source, always
    yields the earliest, and advances only that source — so it can follow
    live traces, at the cost of blocking on a silent stream until its
    follower times out or produces data (an ordered merge cannot do better:
    the earliest record cannot be known without every stream's head).

    Each load generator numbers its operations from 1, so when merging more
    than one stream every op id (``op_id``, ``src_op``, ``dst_op``) is
    qualified with its stream index (``"t0:17"``) to keep ids unique in the
    merged history.  A single source passes through unmodified.
    """
    iterators = [follow_trace_records(source, **follow_kwargs)
                 if isinstance(source, str) else iter(source)
                 for source in sources]
    count = len(iterators)
    heads: list = [None] * count
    last_ts = [float("-inf")] * count
    meta: Optional[Dict[str, Any]] = None

    def qualify(index: int, record: Dict[str, Any]) -> Dict[str, Any]:
        if count == 1:
            return record
        rewritten = dict(record)
        for field in ("op_id", "src_op", "dst_op"):
            if field in rewritten:
                rewritten[field] = f"t{index}:{rewritten[field]}"
        return rewritten

    def advance(index: int) -> bool:
        nonlocal meta
        for record in iterators[index]:
            if record.get("type") == "meta":
                if meta is None:
                    meta = dict(record)
                elif record.get("protocol") != meta.get("protocol"):
                    raise ValueError(
                        f"cannot merge traces of different protocols: "
                        f"{meta.get('protocol')!r} vs "
                        f"{record.get('protocol')!r}")
                continue  # headers repeat per rotated file; keep the first
            heads[index] = qualify(index, record)
            return True
        heads[index] = None
        return False

    active = [index for index in range(count) if advance(index)]
    emitted_meta = False

    def merged_meta() -> Dict[str, Any]:
        header = dict(meta or {})
        header.setdefault("type", "meta")
        header["merged_streams"] = count
        return header

    while active:
        if not emitted_meta:
            yield merged_meta()
            emitted_meta = True
        best = min(active,
                   key=lambda index: (_record_ts(heads[index],
                                                 last_ts[index]), index))
        record = heads[best]
        last_ts[best] = _record_ts(record, last_ts[best])
        yield record
        if not advance(best):
            active.remove(best)
    if not emitted_meta:
        yield merged_meta()


def read_merged_traces(paths) -> Tuple[Dict[str, Any], History]:
    """Load several (possibly rotated) traces as one merged history.

    The offline counterpart of :func:`merge_record_streams`: returns
    ``(merged meta, History)`` exactly like :func:`read_trace` does for a
    single file.
    """
    meta: Dict[str, Any] = {}

    def capture_meta(records):
        for record in records:
            if not meta and record.get("type") == "meta":
                meta.update(record)
                continue
            yield record

    history = History.from_records(capture_meta(
        merge_record_streams(list(paths), idle_timeout=0)))
    return meta, history
