"""Live cluster runtime.

This package executes the *same* generator-based protocol state machines
that the deterministic simulator drives (:mod:`repro.sim.node` subclasses:
Spanner shard leaders, Gryff replicas, and their clients) over real asyncio
TCP sockets:

* :mod:`repro.net.realtime` — :class:`RealtimeEnvironment`, an
  :class:`repro.sim.engine.Environment` whose event queue is pumped by the
  asyncio event loop against the wall clock instead of by the simulated
  scheduler.
* :mod:`repro.net.wire` — the length-prefixed JSON frame codec.
* :mod:`repro.net.transport` — the transport abstraction shared with the
  simulator's :class:`~repro.sim.network.Network` plus
  :class:`LiveTransport`, the asyncio TCP implementation (reconnects,
  per-peer FIFO ordering, learned reply routes).
* :mod:`repro.net.spec` — cluster topology files (``repro init-config``).
* :mod:`repro.net.cluster` — :class:`LiveProcess`, one OS-process-worth of
  a cluster (``repro serve``).
* :mod:`repro.net.load` — the open-/closed-loop load generator
  (``repro load``).
* :mod:`repro.net.recorder` — live history capture to JSONL traces.
* :mod:`repro.net.check` — replay captured traces through the RSS/RSC
  checkers (``repro live-check``).
"""

from repro.net.realtime import RealtimeEnvironment
from repro.net.spec import ClusterSpec, NodeSpec
from repro.net.transport import LiveTransport, TransportBase
from repro.net.recorder import RecordingHistory, TraceWriter, read_trace
from repro.net.check import check_trace, default_model_for

__all__ = [
    "RealtimeEnvironment",
    "ClusterSpec",
    "NodeSpec",
    "LiveTransport",
    "TransportBase",
    "RecordingHistory",
    "TraceWriter",
    "read_trace",
    "check_trace",
    "default_model_for",
]
