"""Durable state for crash-recoverable nodes (write-ahead logs, checkpoints)."""

from repro.storage.wal import WalSnapshot, WriteAheadLog

__all__ = ["WalSnapshot", "WriteAheadLog"]
