"""A write-ahead log with atomic checkpoints and torn-tail-tolerant replay.

Gryff replicas and Spanner shard leaders assume their committed state is
durable: the paper's guarantees are stated over what a node *acknowledged*,
so a crash must not silently forget acknowledged writes.  The chaos engine
gives each node a :class:`WriteAheadLog`; the node appends one JSONL record
per state transition *before* the transition becomes externally visible, and
a restarted node replays checkpoint + surviving records back into memory.

Durability model
----------------
* ``append`` writes one JSON line and fsyncs it before returning, so every
  record the node acted on survives a kill -9.  Only the final line of the
  log can ever be *torn* (a crash mid-``write``), and :meth:`recover`
  tolerates exactly that: it stops at the first undecodable line with a
  warning rather than raising.
* ``checkpoint`` serialises a full state snapshot to ``<path>.ckpt`` via a
  temp file + ``os.replace`` (atomic on POSIX), then truncates the log.  A
  crash between the replace and the truncate leaves records that are already
  covered by the checkpoint; replay filters them by sequence number, so the
  overlap is harmless (records are idempotent re-applications).
* ``close`` marks the log dead; appends after close are silently dropped.
  This models a SIGKILL-ed process: in the simulator a "crashed" node's
  in-flight handler generators keep running for a few more events, and their
  writes must vanish exactly like the un-fsynced writes of a killed process
  instead of resurrecting into the durable state.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

__all__ = ["WalSnapshot", "WriteAheadLog"]


@dataclass
class WalSnapshot:
    """What :meth:`WriteAheadLog.recover` found on disk.

    ``state`` is the last checkpoint's payload (``None`` if no checkpoint was
    ever taken), ``records`` the log records appended after that checkpoint,
    in append order.  ``torn`` reports that the final line of the log was
    truncated by a crash and has been discarded.
    """

    state: Optional[Dict[str, Any]] = None
    records: List[Dict[str, Any]] = field(default_factory=list)
    torn: bool = False


class WriteAheadLog:
    """Fsync-per-record JSONL log with an atomically-replaced checkpoint."""

    def __init__(self, path: str, checkpoint_every: int = 256):
        self.path = path
        self.checkpoint_path = path + ".ckpt"
        #: Appends between automatic checkpoints (see :meth:`maybe_checkpoint`).
        self.checkpoint_every = checkpoint_every
        self._seq = 0
        self._since_checkpoint = 0
        self._closed = False
        #: Optional metrics hook called with each append's write+fsync
        #: latency in milliseconds.  ``None`` (the default) keeps the append
        #: path free of any timing call.
        self.on_append_latency: Optional[Callable[[float], None]] = None
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "a", encoding="utf-8")

    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def seq(self) -> int:
        """Sequence number of the most recent record (0 before any append)."""
        return self._seq

    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record (write + flush + fsync).

        Appends on a closed log are dropped: the owning process is "dead"
        and its writes must not reach disk.
        """
        if self._closed:
            return
        started = perf_counter() if self.on_append_latency is not None else 0.0
        self._seq += 1
        payload = dict(record)
        payload["seq"] = self._seq
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._since_checkpoint += 1
        if self.on_append_latency is not None:
            self.on_append_latency((perf_counter() - started) * 1000.0)

    def maybe_checkpoint(self, state_fn: Callable[[], Dict[str, Any]]) -> bool:
        """Take a checkpoint if ``checkpoint_every`` appends have accumulated.

        ``state_fn`` is only invoked when a checkpoint is actually due, so
        callers can pass a snapshot builder unconditionally on the hot path.
        """
        if self._closed or self._since_checkpoint < self.checkpoint_every:
            return False
        self.checkpoint(state_fn())
        return True

    def checkpoint(self, state: Dict[str, Any]) -> None:
        """Atomically persist a full state snapshot, then truncate the log.

        Crash-ordering: the snapshot lands via temp file + ``os.replace``
        before the log is truncated, so at every instant disk holds either
        (old checkpoint + full log) or (new checkpoint + superseded log
        records filtered out on replay by sequence number).
        """
        if self._closed:
            return
        tmp_path = self.checkpoint_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump({"seq": self._seq, "state": state}, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.checkpoint_path)
        self._fsync_directory()
        self._handle.close()
        self._handle = open(self.path, "w", encoding="utf-8")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._since_checkpoint = 0

    def recover(self) -> WalSnapshot:
        """Read checkpoint + surviving records; tolerate a torn final line."""
        state: Optional[Dict[str, Any]] = None
        base_seq = 0
        if os.path.exists(self.checkpoint_path):
            try:
                with open(self.checkpoint_path, "r", encoding="utf-8") as handle:
                    snapshot = json.load(handle)
                state = snapshot.get("state")
                base_seq = int(snapshot.get("seq", 0))
            except (json.JSONDecodeError, OSError, TypeError, ValueError) as exc:
                warnings.warn(
                    f"unreadable checkpoint {self.checkpoint_path}: {exc}; "
                    "recovering from the log alone",
                    RuntimeWarning, stacklevel=2)
        records: List[Dict[str, Any]] = []
        torn = False
        if os.path.exists(self.path):
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError as exc:
                        # Fsync-per-record means only a crash mid-write can
                        # leave a bad line, and it is necessarily the last.
                        torn = True
                        warnings.warn(
                            f"WAL {self.path} ends with a torn record "
                            f"(discarded): {exc}",
                            RuntimeWarning, stacklevel=2)
                        break
                    records.append(record)
        records = [r for r in records if int(r.get("seq", 0)) > base_seq]
        self._seq = max([base_seq] + [int(r.get("seq", 0)) for r in records])
        return WalSnapshot(state=state, records=records, torn=torn)

    def close(self) -> None:
        """Mark the log dead (kill -9): later appends silently vanish."""
        if self._closed:
            return
        self._closed = True
        try:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except (OSError, ValueError):  # pragma: no cover - teardown
            pass
        self._handle.close()

    # ------------------------------------------------------------------ #
    def _fsync_directory(self) -> None:
        """Persist the directory entry for the renamed checkpoint."""
        directory = os.path.dirname(self.path) or "."
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-specific
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-specific
            pass
        finally:
            os.close(fd)
