"""Invariants of the photo-sharing application (Table 1).

* I1: for every album a process has read, every photo referenced by the album
  has non-null data.
* I2: every photo id a worker receives through the messaging service resolves
  to non-null data in the key-value store.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["album_photos_all_present", "worker_jobs_all_resolvable"]


def album_photos_all_present(album_views: Iterable[Dict[str, Any]]) -> bool:
    """I1 over a collection of album views (photo id → data mappings)."""
    for view in album_views:
        for photo_id, data in view.items():
            if data is None:
                return False
    return True


def worker_jobs_all_resolvable(job_results: Iterable[Tuple[str, Any]]) -> bool:
    """I2 over a collection of ``(photo_id, data)`` results observed by workers."""
    for _photo_id, data in job_results:
        if data is None:
            return False
    return True
