"""A linearizable FIFO messaging service (the second service of Figure 1).

The photo-sharing application enqueues asynchronous processing requests
(e.g. thumbnail generation) and worker processes dequeue them.  The service
is a single logical server (as a linearizable service its internals are not
the subject of the paper); client operations are recorded into the shared
history with ``service="queue"`` so that composite consistency checking and
libRSS composition can reason about them.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Optional

from repro.core.events import Operation
from repro.core.history import History
from repro.core.recording import SessionRecorder
from repro.sim.engine import Environment
from repro.sim.network import Message, Network
from repro.sim.node import Node
from repro.sim.stats import LatencyRecorder

__all__ = ["MessageQueueServer", "MessageQueueClient"]


class MessageQueueServer(Node):
    """A single-node FIFO queue server."""

    def __init__(self, env: Environment, network: Network, name: str = "mq",
                 site: str = "CA"):
        super().__init__(env, network, name, site)
        self._queues: Dict[str, deque] = {}
        self.enqueues = 0
        self.dequeues = 0

    def on_enqueue(self, message: Message):
        payload = message.payload
        self._queues.setdefault(payload["queue"], deque()).append(payload["value"])
        self.enqueues += 1
        return {"ok": True}

    def on_dequeue(self, message: Message):
        payload = message.payload
        queue = self._queues.get(payload["queue"])
        self.dequeues += 1
        if not queue:
            return {"value": None}
        return {"value": queue.popleft()}

    def queue_length(self, queue: str) -> int:
        return len(self._queues.get(queue, ()))


class MessageQueueClient(SessionRecorder, Node):
    """Client library for the messaging service."""

    def __init__(self, env: Environment, network: Network, name: str, site: str,
                 server: str = "mq", history: Optional[History] = None,
                 recorder: Optional[LatencyRecorder] = None,
                 record_history: bool = True):
        super().__init__(env, network, name, site)
        self.server = server
        self._init_recording(history, recorder, record_history)

    def enqueue(self, queue: str, value: Any):
        """Append ``value`` to ``queue`` (generator)."""
        invoked_at = self.env.now
        yield self.rpc_call(self.server, "enqueue", queue=queue, value=value)
        self._record(Operation.enqueue(
            self.name, queue, value,
            invoked_at=invoked_at, responded_at=self.env.now),
            "enqueue", invoked_at)
        return True

    def dequeue(self, queue: str):
        """Remove and return the head of ``queue`` (generator); None if empty."""
        invoked_at = self.env.now
        reply = yield self.rpc_call(self.server, "dequeue", queue=queue)
        value = reply["value"]
        self._record(Operation.dequeue(
            self.name, queue, value,
            invoked_at=invoked_at, responded_at=self.env.now),
            "dequeue", invoked_at)
        return value
