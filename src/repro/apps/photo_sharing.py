"""The photo-sharing application of §2.2 and the Table 1 scenarios.

The module has two halves:

1. :func:`table1_scenarios` constructs the invariant-violation and anomaly
   histories of Table 1 (I1, I2, A1, A2, A3) against the composite
   key-value-store + messaging-service specification, together with the
   verdict each consistency model should give.  The Table 1 benchmark and the
   unit tests replay them through the checkers.

2. :class:`PhotoSharingApp` is a runnable version of the application on top
   of a simulated Spanner / Spanner-RSS cluster and the messaging service,
   with libRSS inserting real-time fences when a process switches services
   (§4.1).  Web servers add photos (a read-write transaction followed by an
   enqueue); workers dequeue photo ids and fetch the photo data; users view
   albums with read-only transactions.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.api import Store, UnsupportedOperationError, open_store
from repro.core.events import Operation
from repro.core.history import History
from repro.core.librss import LibRSS
from repro.core.specification import (
    CompositeSpec,
    FifoQueueSpec,
    SequentialSpec,
    TransactionalKVSpec,
)
from repro.apps.messaging import MessageQueueClient, MessageQueueServer

__all__ = ["Table1Scenario", "table1_scenarios", "PhotoSharingApp", "WebServer"]


# --------------------------------------------------------------------------- #
# Table 1 scenarios
# --------------------------------------------------------------------------- #
@dataclass
class Table1Scenario:
    """A candidate execution for one cell group of Table 1.

    ``admitted_by`` maps model name → whether the model admits the execution.
    For invariant rows (I1, I2), a model under which the execution is
    *rejected* preserves the invariant; for anomaly rows (A1-A3), a model that
    admits the execution exposes the anomaly.
    """

    name: str
    column: str
    description: str
    history: History
    spec: SequentialSpec
    admitted_by: Dict[str, bool]


def _composite_spec() -> CompositeSpec:
    return CompositeSpec({"kv": TransactionalKVSpec(), "queue": FifoQueueSpec()})


def _i1_violation() -> Table1Scenario:
    history = History()
    history.add(Operation.rw_txn(
        "web1", read_set={"album:alice": None},
        write_set={"album:alice": ("p1",), "photo:p1": "data1"},
        invoked_at=0, responded_at=10, service="kv"))
    history.add(Operation.ro_txn(
        "web2", read_set={"album:alice": ("p1",), "photo:p1": None},
        invoked_at=20, responded_at=30, service="kv"))
    return Table1Scenario(
        name="i1_violation", column="I1",
        description="an album references a photo whose data reads as null",
        history=history, spec=_composite_spec(),
        admitted_by={"strict_serializability": False, "rss": False,
                     "po_serializability": False},
    )


def _i2_violation() -> Table1Scenario:
    history = History()
    history.add(Operation.rw_txn(
        "web1", read_set={}, write_set={"photo:p1": "data1"},
        invoked_at=0, responded_at=10, service="kv"))
    history.add(Operation.enqueue(
        "web1", "thumbnail-jobs", "p1",
        invoked_at=12, responded_at=14, service="queue"))
    history.add(Operation.dequeue(
        "worker1", "thumbnail-jobs", "p1",
        invoked_at=20, responded_at=22, service="queue"))
    history.add(Operation.ro_txn(
        "worker1", read_set={"photo:p1": None},
        invoked_at=24, responded_at=30, service="kv"))
    return Table1Scenario(
        name="i2_violation", column="I2",
        description="a worker dequeues a photo id but reads null photo data",
        history=history, spec=_composite_spec(),
        admitted_by={"strict_serializability": False, "rss": False,
                     "po_serializability": True},
    )


def _a1_lost_photo() -> Table1Scenario:
    history = History()
    history.add(Operation.rw_txn(
        "web1", read_set={"album:alice": None},
        write_set={"album:alice": ("p1",), "photo:p1": "data1"},
        invoked_at=0, responded_at=10, service="kv"))
    # The second add fails to observe the first, losing photo p1.
    history.add(Operation.rw_txn(
        "web1", read_set={"album:alice": None},
        write_set={"album:alice": ("p2",), "photo:p2": "data2"},
        invoked_at=20, responded_at=30, service="kv"))
    history.add(Operation.ro_txn(
        "web2", read_set={"album:alice": ("p2",)},
        invoked_at=40, responded_at=50, service="kv"))
    return Table1Scenario(
        name="a1_lost_photo", column="A1",
        description="Alice adds two photos; later only one is in her album",
        history=history, spec=_composite_spec(),
        admitted_by={"strict_serializability": False, "rss": False,
                     "po_serializability": False},
    )


def _a2_completed_write_invisible() -> Table1Scenario:
    history = History()
    history.add(Operation.rw_txn(
        "web1", read_set={"album:alice": None},
        write_set={"album:alice": ("p1",), "photo:p1": "data1"},
        invoked_at=0, responded_at=10, service="kv"))
    # Alice calls Bob on the phone (not captured by the application), and
    # Bob's Web server still reads the old album afterwards.
    history.add(Operation.ro_txn(
        "web2", read_set={"album:alice": None},
        invoked_at=20, responded_at=30, service="kv"))
    return Table1Scenario(
        name="a2_completed_write_invisible", column="A2",
        description="Alice adds a photo and calls Bob; Bob does not see it",
        history=history, spec=_composite_spec(),
        admitted_by={"strict_serializability": False, "rss": False,
                     "po_serializability": True},
    )


def _a3_concurrent_write_invisible(after_completion: bool) -> Table1Scenario:
    history = History()
    charlie_end = 25 if after_completion else 100
    history.add(Operation.rw_txn(
        "web3", read_set={"album:charlie": None},
        write_set={"album:charlie": ("p9",), "photo:p9": "data9"},
        invoked_at=0, responded_at=charlie_end, service="kv"))
    history.add(Operation.ro_txn(
        "web1", read_set={"album:charlie": ("p9",), "photo:p9": "data9"},
        invoked_at=5, responded_at=15, service="kv"))
    # Alice calls Bob (uncaptured); Bob reads afterwards and misses the photo.
    history.add(Operation.ro_txn(
        "web2", read_set={"album:charlie": None, "photo:p9": None},
        invoked_at=30, responded_at=40, service="kv"))
    if after_completion:
        name = "a3_after_write_completes"
        description = ("Alice saw Charlie's photo; Bob reads after Charlie's "
                       "add finished and misses it")
        admitted = {"strict_serializability": False, "rss": False,
                    "po_serializability": True}
    else:
        name = "a3_during_write"
        description = ("Alice saw Charlie's in-flight photo; Bob reads while "
                       "the add is still running and misses it")
        admitted = {"strict_serializability": False, "rss": True,
                    "po_serializability": True}
    return Table1Scenario(
        name=name, column="A3", description=description,
        history=history, spec=_composite_spec(), admitted_by=admitted,
    )


def table1_scenarios() -> List[Table1Scenario]:
    """All Table 1 scenario executions."""
    return [
        _i1_violation(),
        _i2_violation(),
        _a1_lost_photo(),
        _a2_completed_write_invisible(),
        _a3_concurrent_write_invisible(after_completion=False),
        _a3_concurrent_write_invisible(after_completion=True),
    ]


# --------------------------------------------------------------------------- #
# Runnable application
# --------------------------------------------------------------------------- #
JOB_QUEUE = "thumbnail-jobs"


@dataclass
class WebServer:
    """One application server: a kv session plus a queue session."""

    name: str
    kv: Any
    queue: Any


class PhotoSharingApp:
    """The photo-sharing application running on Spanner(-RSS) + messaging.

    The application is written against the unified client API: it takes a
    :class:`repro.api.Store` (e.g. ``open_store("sim-spanner")``) and its
    web servers hold :class:`repro.api.Session` objects — the application
    logic itself only speaks the unified vocabulary (``txn``, ``read_only``,
    ``fence``).  It needs a *simulated transactional* store: the messaging
    service is an in-simulator node, so the store must expose the sim
    environment/network, and ``add_photo`` uses multi-key transactions.
    (Passing a raw :class:`~repro.spanner.cluster.SpannerCluster` still
    works but is deprecated.)

    All methods that perform service operations are generators intended to be
    driven by the simulation (``yield from app.add_photo(...)``).
    """

    def __init__(self, store: Store, queue_site: str = "CA"):
        if not isinstance(store, Store):
            warnings.warn(
                "passing a cluster to PhotoSharingApp is deprecated; pass a "
                "Store from repro.api.open_store", DeprecationWarning,
                stacklevel=2)
            store = open_store(store)
        if not store.supports("multi_key_txn"):
            raise UnsupportedOperationError(
                "PhotoSharingApp needs a transactional backend "
                "(multi_key_txn); open a sim-spanner store")
        if not hasattr(store, "network"):
            raise TypeError(
                "PhotoSharingApp runs inside the simulator (its messaging "
                "service is a sim node); open a simulated store, not "
                f"{type(store).__name__}")
        self.store = store
        self.cluster = store.cluster
        self.librss = LibRSS()
        self.mq_server = MessageQueueServer(store.env, store.network,
                                            name="mq", site=queue_site)
        self._servers: List[WebServer] = []
        self.librss.register_service("kv", self._kv_fence)
        self.librss.register_service("queue", lambda process: None)
        self.job_results: List[Tuple[str, Any]] = []
        self.album_views: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------ #
    def _kv_fence(self, process: str):
        """Real-time fence for the Spanner-RSS service (§5.1)."""
        server = self._server_by_name(process)
        yield from server.kv.fence()

    def _server_by_name(self, name: str) -> WebServer:
        for server in self._servers:
            if server.name == name:
                return server
        raise KeyError(name)

    def new_web_server(self, site: str, name: Optional[str] = None) -> WebServer:
        """Create an application server (or worker) located at ``site``."""
        name = name or f"web{len(self._servers) + 1}@{site}"
        kv_session = self.store.session(site, name=f"{name}-kv")
        queue_client = MessageQueueClient(
            self.store.env, self.store.network, name=f"{name}-mq", site=site,
            server="mq", history=self.store.history,
            recorder=self.store.recorder,
        )
        server = WebServer(name=name, kv=kv_session, queue=queue_client)
        self._servers.append(server)
        return server

    # ------------------------------------------------------------------ #
    # Application operations
    # ------------------------------------------------------------------ #
    @staticmethod
    def album_key(user: str) -> str:
        return f"album:{user}"

    @staticmethod
    def photo_key(photo_id: str) -> str:
        return f"photo:{photo_id}"

    def add_photo(self, server: WebServer, user: str, photo_id: str, data: str):
        """Add a photo: one read-write transaction, then an async job enqueue."""
        album_key = self.album_key(user)
        photo_key = self.photo_key(photo_id)

        def update(reads: Dict[str, Any]) -> Dict[str, Any]:
            album = tuple(reads.get(album_key) or ())
            return {album_key: album + (photo_id,), photo_key: data}

        yield from self.librss.start_transaction(server.name, "kv")
        yield from server.kv.txn([album_key], update)
        yield from self.librss.start_transaction(server.name, "queue")
        yield from server.queue.enqueue(JOB_QUEUE, photo_id)
        return photo_id

    def process_next_job(self, worker: WebServer):
        """Worker loop body: dequeue a photo id and fetch its data (I2)."""
        yield from self.librss.start_transaction(worker.name, "queue")
        photo_id = yield from worker.queue.dequeue(JOB_QUEUE)
        if photo_id is None:
            return None
        yield from self.librss.start_transaction(worker.name, "kv")
        values = yield from worker.kv.read_only([self.photo_key(photo_id)])
        data = values[self.photo_key(photo_id)]
        self.job_results.append((photo_id, data))
        return photo_id, data

    def view_album(self, server: WebServer, user: str):
        """Read an album and all its photos (I1)."""
        album_key = self.album_key(user)
        yield from self.librss.start_transaction(server.name, "kv")
        album_values = yield from server.kv.read_only([album_key])
        photo_ids = tuple(album_values.get(album_key) or ())
        if not photo_ids:
            self.album_views.append({})
            return {}
        photo_keys = [self.photo_key(photo_id) for photo_id in photo_ids]
        photo_values = yield from server.kv.read_only(photo_keys)
        view = {photo_id: photo_values[self.photo_key(photo_id)]
                for photo_id in photo_ids}
        self.album_views.append(view)
        return view
