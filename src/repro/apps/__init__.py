"""The photo-sharing example application (§2.2) and its supporting services.

* :mod:`repro.apps.messaging` — a linearizable FIFO messaging service used to
  enqueue asynchronous thumbnail-generation jobs.
* :mod:`repro.apps.photo_sharing` — the application logic (Web servers,
  workers) plus the Table 1 scenario histories: invariants I1/I2 and
  anomalies A1–A4 under different consistency models.
* :mod:`repro.apps.invariants` — invariant definitions and checks.
"""

from repro.apps.messaging import MessageQueueClient, MessageQueueServer
from repro.apps.photo_sharing import (
    PhotoSharingApp,
    Table1Scenario,
    table1_scenarios,
)
from repro.apps.invariants import (
    album_photos_all_present,
    worker_jobs_all_resolvable,
)

__all__ = [
    "MessageQueueClient",
    "MessageQueueServer",
    "PhotoSharingApp",
    "Table1Scenario",
    "table1_scenarios",
    "album_photos_all_present",
    "worker_jobs_all_resolvable",
]
