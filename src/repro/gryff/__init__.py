"""Gryff and Gryff-RSC (§7, Appendix B).

A from-scratch simulation of Gryff's hybrid shared-register / consensus
protocol and the paper's Gryff-RSC variant:

* reads use a quorum read phase and, in Gryff, a write-back phase whenever the
  quorum disagrees; Gryff-RSC always finishes in one round and instead
  piggybacks the observed ``(key, value, carstamp)`` dependency onto the
  client's next operation (Algorithms 3-5);
* writes use the two-phase carstamp protocol;
* read-modify-writes run through an EPaxos-style pre-accept/commit path at a
  coordinator replica.

The top-level entry point is :class:`repro.gryff.cluster.GryffCluster`.
"""

from repro.gryff.carstamp import Carstamp
from repro.gryff.config import GryffConfig, GryffVariant
from repro.gryff.replica import GryffReplica
from repro.gryff.client import GryffClient
from repro.gryff.cluster import GryffCluster

__all__ = [
    "Carstamp",
    "GryffConfig",
    "GryffVariant",
    "GryffReplica",
    "GryffClient",
    "GryffCluster",
]
