"""Carstamps — consensus-after-register timestamps (§7, Appendix B).

A carstamp identifies the position of a write or read-modify-write in the
total order of updates to a key.  It is a tuple of a logical number, a
read-modify-write counter, and the writer's client id; comparison is
lexicographic.  Reads adopt the carstamp of the value they return.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Tuple

__all__ = ["Carstamp"]


@dataclass(frozen=True, order=True)
class Carstamp:
    """A totally ordered version stamp for one key."""

    number: int = 0
    rmw_count: int = 0
    writer: str = ""

    ZERO: ClassVar["Carstamp"]

    def bump_write(self, writer: str) -> "Carstamp":
        """The carstamp a write chooses after observing this one (Alg. 3 l.16)."""
        return Carstamp(number=self.number + 1, rmw_count=0, writer=writer)

    def bump_rmw(self, writer: str) -> "Carstamp":
        """The carstamp a read-modify-write chooses after observing this one."""
        return Carstamp(number=self.number, rmw_count=self.rmw_count + 1,
                        writer=writer)

    def as_tuple(self) -> Tuple[int, int, str]:
        return (self.number, self.rmw_count, self.writer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"cs({self.number},{self.rmw_count},{self.writer})"


Carstamp.ZERO = Carstamp(0, 0, "")
