"""Configuration for the simulated Gryff deployment (§7.2)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from repro.sim.network import LatencyMatrix, gryff_wan, single_dc

__all__ = ["GryffVariant", "GryffConfig"]


class GryffVariant(enum.Enum):
    """Which read protocol the deployment runs."""

    GRYFF = "gryff"
    GRYFF_RSC = "gryff-rsc"


@dataclass
class GryffConfig:
    """Deployment parameters.

    Defaults follow §7.2: five replicas, one per emulated region in Table 2,
    read/write quorums of three.
    """

    variant: GryffVariant = GryffVariant.GRYFF_RSC
    sites: List[str] = field(default_factory=lambda: ["CA", "VA", "IR", "OR", "JP"])
    #: Per-message network/processing overhead added to every message, in ms.
    processing_ms: float = 0.05
    #: Per-message CPU time at each (single-threaded) replica, in ms.  Zero
    #: disables CPU modelling; the §7.4 overhead experiments set it.
    server_cpu_ms: float = 0.0
    #: Per-message network jitter bound in ms.
    jitter_ms: float = 0.5
    #: Random seed for network jitter.
    seed: int = 1
    #: Use the wide-area RTTs of Table 2; otherwise a single data center
    #: (the §7.4 overhead experiments).
    wide_area: bool = True
    #: Prefix prepended to every replica name.  Empty for standalone
    #: clusters; fleet groups use ``"g<id>/"`` so node names stay unique
    #: across the merged multi-group topology.
    name_prefix: str = ""

    @property
    def num_replicas(self) -> int:
        return len(self.sites)

    @property
    def quorum_size(self) -> int:
        return self.num_replicas // 2 + 1

    def latency_matrix(self) -> LatencyMatrix:
        if self.wide_area:
            return gryff_wan()
        return single_dc(self.sites, rtt_ms=0.2)

    def replica_name(self, index: int) -> str:
        return f"{self.name_prefix}replica{index}"

    def replica_names(self) -> List[str]:
        return [self.replica_name(i) for i in range(self.num_replicas)]

    def replica_site(self, index: int) -> str:
        return self.sites[index % len(self.sites)]

    def local_replica(self, site: str) -> str:
        """The replica co-located with ``site`` (used to coordinate rmws)."""
        for index, replica_site in enumerate(self.sites):
            if replica_site == site:
                return self.replica_name(index)
        return self.replica_name(0)
