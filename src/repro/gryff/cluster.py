"""Assembly of a complete simulated Gryff / Gryff-RSC deployment."""

from __future__ import annotations

import itertools
import os
from collections import defaultdict, deque
from typing import Dict, List, Optional

from repro.core.checkers import check_with_witness
from repro.core.checkers.base import CheckResult
from repro.core.orders import real_time_edges
from repro.core.relations import CausalOrder, regular_constraint_edges
from repro.core.history import History
from repro.core.specification import RegisterSpec
from repro.gryff.carstamp import Carstamp
from repro.gryff.client import GryffClient
from repro.gryff.config import GryffConfig, GryffVariant
from repro.gryff.replica import GryffReplica
from repro.sim.engine import Environment
from repro.sim.network import Network
from repro.sim.stats import LatencyRecorder

__all__ = ["GryffCluster", "gryff_witness_order"]


def gryff_witness_order(history: History, model: str = "rsc") -> Optional[List]:
    """A serialization witnessing a Gryff history's consistency.

    This mirrors the construction in the paper's Theorem D.15: a topological
    sort of the partial order <ψ formed by (1) each key's carstamp order,
    (2) the potential-causality order, and (3) the model's real-time
    constraints.  Returns ``None`` if those constraints are cyclic (which
    would itself be a consistency violation).

    Works on any history whose operations carry ``meta["carstamp"]`` — both
    simulated runs (:class:`GryffCluster`) and live traces loaded by
    ``repro live-check``.
    """
    ops = [op for op in history if op.is_complete or op.is_mutation]
    included = {op.op_id for op in ops}
    edges: List = []

    # (1) Per-key carstamp order (mutations before the reads that adopt
    # their carstamp).
    by_key = defaultdict(list)
    for op in ops:
        by_key[op.key].append(op)
    for group in by_key.values():
        group.sort(key=lambda op: (tuple(op.meta.get("carstamp", (0, 0, ""))),
                                   0 if op.is_mutation else 1,
                                   op.invoked_at, op.op_id))
        edges.extend((a.op_id, b.op_id) for a, b in zip(group, group[1:]))

    # (2) Potential causality and (3) real-time constraints.  The
    # smallest-id-first Kahn sort below depends only on the partial
    # order, so the sweep-line reductions yield the same witness order
    # as the full pair sets.
    edges.extend(CausalOrder(history).edges())
    if model in ("rsc", "rss"):
        edges.extend(regular_constraint_edges(history))
    else:
        edges.extend(real_time_edges(history, ops))

    # Deterministic Kahn topological sort.
    successors: Dict[int, set] = {op.op_id: set() for op in ops}
    indegree: Dict[int, int] = {op.op_id: 0 for op in ops}
    for a, b in edges:
        if a in included and b in included and b not in successors[a]:
            successors[a].add(b)
            indegree[b] += 1
    ready = sorted(op_id for op_id, degree in indegree.items() if degree == 0)
    order: List = []
    queue = deque(ready)
    while queue:
        op_id = queue.popleft()
        order.append(history.get(op_id))
        promoted = []
        for succ in successors[op_id]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                promoted.append(succ)
        for succ in sorted(promoted):
            queue.append(succ)
    if len(order) != len(ops):
        return None
    return order


class GryffCluster:
    """A simulated deployment: environment, network, replicas, clients."""

    def __init__(self, config: Optional[GryffConfig] = None,
                 wal_dir: Optional[str] = None):
        self.config = config or GryffConfig()
        self.env = Environment()
        self.network = Network(
            self.env,
            latency=self.config.latency_matrix(),
            jitter_ms=self.config.jitter_ms,
            processing_ms=self.config.processing_ms,
            seed=self.config.seed,
        )
        self.history = History()
        self.recorder = LatencyRecorder()
        #: When set, every replica appends to ``<wal_dir>/<name>.wal`` and
        #: crash/restart (chaos engine) recovers from it.
        self.wal_dir = wal_dir
        self.replicas: Dict[str, GryffReplica] = {}
        for index in range(self.config.num_replicas):
            name = self.config.replica_name(index)
            site = self.config.replica_site(index)
            self.replicas[name] = GryffReplica(
                self.env, self.network, self.config, name=name, site=site,
                wal=self._wal_for(name),
            )
        self.clients: List[GryffClient] = []
        self._client_counter = itertools.count(1)

    def _wal_for(self, name: str):
        if self.wal_dir is None:
            return None
        from repro.storage.wal import WriteAheadLog

        return WriteAheadLog(os.path.join(self.wal_dir, f"{name}.wal"))

    # ------------------------------------------------------------------ #
    # Crash / restart (chaos engine)
    # ------------------------------------------------------------------ #
    def crash_replica(self, name: str) -> GryffReplica:
        """Kill -9 a replica: stop delivery and freeze its durable state.

        The dead endpoint stays registered (sends to it are silently dropped,
        like packets to a dead host) until :meth:`restart_replica` swaps in
        the recovered instance.  Closing the WAL first means anything an
        in-flight handler does after this instant never reaches disk —
        exactly the un-fsynced writes of a SIGKILLed process.
        """
        replica = self.replicas[name]
        if replica.wal is not None:
            replica.wal.close()
        replica.stop()
        return replica

    def restart_replica(self, name: str) -> GryffReplica:
        """Restart a crashed replica, recovering its state from the WAL."""
        index = self.config.replica_names().index(name)
        self.network.deregister(name)
        replica = GryffReplica(
            self.env, self.network, self.config,
            name=name, site=self.config.replica_site(index),
            wal=self._wal_for(name),
        )
        self.replicas[name] = replica
        return replica

    # ------------------------------------------------------------------ #
    def new_client(self, site: str, name: Optional[str] = None,
                   record_history: bool = True) -> GryffClient:
        name = name or f"client{next(self._client_counter)}@{site}"
        client = GryffClient(
            self.env, self.network, self.config, name=name, site=site,
            history=self.history, recorder=self.recorder,
            record_history=record_history,
        )
        self.clients.append(client)
        return client

    def run(self, until: Optional[float] = None) -> float:
        return self.env.run(until=until)

    def spawn(self, generator):
        return self.env.process(generator)

    # ------------------------------------------------------------------ #
    def replica_stats(self) -> Dict[str, Dict[str, int]]:
        return {name: dict(replica.stats) for name, replica in self.replicas.items()}

    def witness_order(self, model: str = "rsc") -> Optional[List]:
        """A serialization witnessing the deployment's consistency
        (see :func:`gryff_witness_order`)."""
        return gryff_witness_order(self.history, model)

    def check_consistency(self, model: Optional[str] = None) -> CheckResult:
        """Gryff must be linearizable; Gryff-RSC must satisfy RSC."""
        if model is None:
            model = ("linearizability"
                     if self.config.variant == GryffVariant.GRYFF else "rsc")
        witness = self.witness_order(model)
        if witness is None:
            return CheckResult(
                satisfied=False, model=model,
                reason="carstamp, causal, and real-time constraints are cyclic",
            )
        return check_with_witness(
            self.history, witness, model=model, spec=RegisterSpec(),
        )
