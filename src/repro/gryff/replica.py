"""Gryff / Gryff-RSC replica (Algorithms 4 and 5).

A replica stores, for each key, the current value and its carstamp.  It
serves the read phase of reads and writes, applies second-phase writes, and
coordinates read-modify-writes through an EPaxos-style pre-accept/commit
exchange with the other replicas.

In Gryff-RSC, read-phase messages may carry a piggybacked dependency
``(key, value, carstamp)`` — the most recent value the client observed that
is not yet known to be on a quorum — which the replica applies before
processing the message (Algorithm 4, lines 4-5 and 8-9).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.rmw import apply_rmw
from repro.gryff.carstamp import Carstamp
from repro.gryff.config import GryffConfig
from repro.sim.engine import Environment
from repro.sim.network import Message, Network
from repro.sim.node import Node
from repro.storage.wal import WriteAheadLog

__all__ = ["GryffReplica"]


def _carstamp_from_wire(data) -> Carstamp:
    if data is None:
        return Carstamp.ZERO
    if isinstance(data, Carstamp):
        return data
    return Carstamp(number=data[0], rmw_count=data[1], writer=data[2])


def _carstamp_to_wire(cs: Carstamp) -> Tuple[int, int, str]:
    return cs.as_tuple()


class GryffReplica(Node):
    """One of the five geo-replicated Gryff replicas."""

    def __init__(self, env: Environment, network: Network, config: GryffConfig,
                 name: str, site: str, wal: Optional[WriteAheadLog] = None):
        super().__init__(env, network, name, site, cpu_time_ms=config.server_cpu_ms)
        self.config = config
        self.values: Dict[str, Any] = {}
        self.carstamps: Dict[str, Carstamp] = {}
        self._rmw_instance = itertools.count(1)
        self.stats = {
            "reads": 0,
            "write1": 0,
            "write2": 0,
            "rmws": 0,
            "dependency_applies": 0,
        }
        #: Optional write-ahead log (chaos engine): every carstamp install is
        #: durably logged before the replica acknowledges it, and a restarted
        #: replica replays checkpoint + log back into ``values``/``carstamps``.
        self.wal = wal
        self._replaying = False
        if wal is not None:
            self._recover_from_wal()

    # ------------------------------------------------------------------ #
    # Register state
    # ------------------------------------------------------------------ #
    def apply(self, key: str, value: Any, carstamp: Carstamp) -> None:
        """Install ``value`` if ``carstamp`` is newer (Algorithm 4, Apply)."""
        current = self.carstamps.get(key, Carstamp.ZERO)
        if carstamp > current:
            self.values[key] = value
            self.carstamps[key] = carstamp
            if self.wal is not None and not self._replaying:
                self.wal.append({"kind": "apply", "key": key, "value": value,
                                 "carstamp": list(_carstamp_to_wire(carstamp))})
                self.wal.maybe_checkpoint(self._wal_state)

    def _wal_state(self) -> Dict[str, Any]:
        """Full register state for a WAL checkpoint."""
        return {"registers": {
            key: {"value": self.values.get(key),
                  "carstamp": list(_carstamp_to_wire(carstamp))}
            for key, carstamp in self.carstamps.items()}}

    def _recover_from_wal(self) -> None:
        """Rebuild register state from checkpoint + surviving log records.

        Replay reuses :meth:`apply` (install iff newer), so overlapping
        checkpoint/log records and duplicated installs are idempotent.
        """
        snapshot = self.wal.recover()
        self._replaying = True
        try:
            registers = (snapshot.state or {}).get("registers", {})
            for key, entry in registers.items():
                self.apply(key, entry["value"],
                           _carstamp_from_wire(entry["carstamp"]))
            for record in snapshot.records:
                kind = record.get("kind")
                if kind == "apply":
                    self.apply(record["key"], record["value"],
                               _carstamp_from_wire(record["carstamp"]))
                elif kind == "purge":
                    for key in record.get("keys", []):
                        self.values.pop(key, None)
                        self.carstamps.pop(key, None)
        finally:
            self._replaying = False

    def _apply_dependency(self, dependency) -> None:
        if not dependency:
            return
        self.stats["dependency_applies"] += 1
        self.apply(dependency["key"], dependency["value"],
                   _carstamp_from_wire(dependency["carstamp"]))

    def current(self, key: str) -> Tuple[Any, Carstamp]:
        return self.values.get(key), self.carstamps.get(key, Carstamp.ZERO)

    # ------------------------------------------------------------------ #
    # Read phase / write phases (Algorithm 4)
    # ------------------------------------------------------------------ #
    def on_read1(self, message: Message):
        payload = message.payload
        self.stats["reads"] += 1
        self._apply_dependency(payload.get("dependency"))
        value, carstamp = self.current(payload["key"])
        return {"value": value, "carstamp": _carstamp_to_wire(carstamp)}

    def on_write1(self, message: Message):
        payload = message.payload
        self.stats["write1"] += 1
        self._apply_dependency(payload.get("dependency"))
        _, carstamp = self.current(payload["key"])
        return {"carstamp": _carstamp_to_wire(carstamp)}

    def on_write2(self, message: Message):
        payload = message.payload
        self.stats["write2"] += 1
        self.apply(payload["key"], payload["value"],
                   _carstamp_from_wire(payload["carstamp"]))
        return {"ack": True}

    # ------------------------------------------------------------------ #
    # Read-modify-writes (Algorithm 5, EPaxos-style, simplified recovery-free)
    # ------------------------------------------------------------------ #
    def on_rmw(self, message: Message):
        """Coordinate a read-modify-write submitted by a co-located client.

        The function to apply is described declaratively in the payload
        (``mode`` + parameters) so it can travel through the simulated
        network: ``increment`` adds ``amount`` to an integer value, ``set``
        installs ``new_value`` regardless of the old one.

        This is the fast path of Gryff's EPaxos-based rmw protocol; recovery
        and the ordering of *concurrent conflicting* rmws are simplified
        (the paper's evaluation workloads issue only reads and writes).
        """
        payload = message.payload
        self.stats["rmws"] += 1
        self._apply_dependency(payload.get("dependency"))
        key = payload["key"]
        base_value, base_cs = self.current(key)

        # PreAccept phase: learn of any newer base from a fast quorum.
        others = [name for name in self.config.replica_names() if name != self.name]
        call = self.rpc_multicast(
            others, "rmw_preaccept",
            key=key, base_value=base_value,
            base_carstamp=_carstamp_to_wire(base_cs),
            dependency=payload.get("dependency"),
        )
        needed = max(self.config.quorum_size - 1, 0)
        replies = {}
        if needed:
            replies = yield call.wait(needed)
        for reply in replies.values():
            candidate = _carstamp_from_wire(reply["base_carstamp"])
            if candidate > base_cs:
                base_cs = candidate
                base_value = reply["base_value"]

        old_value = base_value
        new_value = self._apply_rmw_function(payload, old_value)
        commit_cs = base_cs.bump_rmw(payload["client"])

        # Commit/execute phase: propagate the chosen value to a quorum.
        self.apply(key, new_value, commit_cs)
        commit_call = self.rpc_multicast(
            others, "rmw_commit",
            key=key, value=new_value, carstamp=_carstamp_to_wire(commit_cs),
        )
        if needed:
            yield commit_call.wait(needed)
        return {
            "old_value": old_value,
            "new_value": new_value,
            "carstamp": _carstamp_to_wire(commit_cs),
        }

    def on_rmw_preaccept(self, message: Message):
        payload = message.payload
        self._apply_dependency(payload.get("dependency"))
        value, carstamp = self.current(payload["key"])
        incoming = _carstamp_from_wire(payload["base_carstamp"])
        if incoming > carstamp:
            value, carstamp = payload["base_value"], incoming
        return {"base_value": value, "base_carstamp": _carstamp_to_wire(carstamp)}

    def on_rmw_commit(self, message: Message):
        payload = message.payload
        self.apply(payload["key"], payload["value"],
                   _carstamp_from_wire(payload["carstamp"]))
        return {"ack": True}

    # ------------------------------------------------------------------ #
    # Key-range migration (fleet layer)
    # ------------------------------------------------------------------ #
    def on_mig_dump(self, message: Message):
        """Dump every register for a migration copy.

        The controller merges dumps from all source replicas by maximum
        carstamp (a superset of any acknowledged quorum) and filters to the
        moving key range client-side, so the replica stays placement-blind.
        """
        return {"entries": [
            [key, self.values.get(key), list(_carstamp_to_wire(carstamp))]
            for key, carstamp in self.carstamps.items()]}

    def on_mig_install(self, message: Message):
        """Install migrated registers; reuses :meth:`apply` (iff newer), so
        re-installs and races with live dual-writes are idempotent."""
        installed = 0
        for key, value, carstamp in message.payload["entries"]:
            self.apply(key, value, _carstamp_from_wire(carstamp))
            installed += 1
        return {"ack": True, "installed": installed}

    def on_mig_purge(self, message: Message):
        """Drop registers that migrated away (post-flip cleanup)."""
        removed = 0
        for key in message.payload["keys"]:
            if key in self.carstamps:
                del self.carstamps[key]
                self.values.pop(key, None)
                removed += 1
        if removed and self.wal is not None and not self._replaying:
            self.wal.append({"kind": "purge",
                             "keys": list(message.payload["keys"])})
            self.wal.maybe_checkpoint(self._wal_state)
        return {"ack": True, "removed": removed}

    @staticmethod
    def _apply_rmw_function(payload, old_value):
        # Non-strict: a malformed wire request degrades to "set" instead of
        # crashing the server; the client-facing surfaces validate modes.
        return apply_rmw(payload.get("mode", "set"), old_value, payload,
                         strict=False)
