"""Gryff / Gryff-RSC client library (Algorithm 3).

Reads, writes, and read-modify-writes follow the carstamp protocol.  The
variant determines the read path:

* Gryff: a read performs a quorum read phase; if the quorum disagrees on the
  carstamp, a write-back phase propagates the newest value to a quorum before
  the read returns (two wide-area round trips).
* Gryff-RSC: a read always returns after the read phase; if the quorum
  disagreed, the observed ``(key, value, carstamp)`` is kept as a dependency
  and piggybacked onto the read phase of the client's next operation.

The client records every completed operation into a
:class:`~repro.core.history.History` with its carstamp in ``meta`` and its
latency in a :class:`~repro.sim.stats.LatencyRecorder`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.events import Operation
from repro.core.history import History
from repro.core.recording import SessionRecorder
from repro.gryff.carstamp import Carstamp
from repro.gryff.config import GryffConfig, GryffVariant
from repro.sim.engine import Environment
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.stats import LatencyRecorder

__all__ = ["GryffClient"]


def _carstamp_from_wire(data) -> Carstamp:
    if data is None:
        return Carstamp.ZERO
    if isinstance(data, Carstamp):
        return data
    return Carstamp(number=data[0], rmw_count=data[1], writer=data[2])


class GryffClient(SessionRecorder, Node):
    """A client process issuing reads, writes, and rmws to the replicas."""

    def __init__(self, env: Environment, network: Network, config: GryffConfig,
                 name: str, site: str,
                 history: Optional[History] = None,
                 recorder: Optional[LatencyRecorder] = None,
                 record_history: bool = True):
        super().__init__(env, network, name, site)
        self.config = config
        self._init_recording(history, recorder, record_history)
        #: The pending dependency d (Algorithm 3, line 2); None when clear.
        self.dependency: Optional[Dict[str, Any]] = None
        self.reads_fast = 0
        self.reads_slow = 0

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _replicas(self, key: Optional[str] = None):
        """The replica group serving ``key`` (key-independent here; the
        fleet client overrides this to route by placement)."""
        return self.config.replica_names()

    def _rmw_coordinator(self, key: str) -> str:
        """The replica that coordinates an rmw on ``key``."""
        return self.config.local_replica(self.site)

    def _take_dependency(self) -> Optional[Dict[str, Any]]:
        """The dependency to piggyback on the next operation's read phase."""
        return self.dependency

    # The three hooks below are no-ops for a standalone cluster; the fleet
    # client overrides them to gate operations during placement freezes,
    # settle a pending dependency whose key lives in a different group, and
    # dual-write installed values into a migration's destination group.
    def _begin_op(self, key: str):
        return None
        yield  # pragma: no cover - makes this a generator

    def _end_op(self, token) -> None:
        pass

    def _settle_dependency(self, key: str):
        return None
        yield  # pragma: no cover - makes this a generator

    def _after_install(self, key: str, value: Any, carstamp: Carstamp):
        return None
        yield  # pragma: no cover - makes this a generator

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def read(self, key: str):
        """Read ``key`` (generator); returns the value."""
        invoked_at = self.env.now
        self._note_invocation(invoked_at)
        token = yield from self._begin_op(key)
        try:
            yield from self._settle_dependency(key)
            call = self.rpc_multicast(
                self._replicas(key), "read1",
                key=key, dependency=self._take_dependency(),
            )
            replies = yield call.wait(self.config.quorum_size)
            carstamps = {
                src: _carstamp_from_wire(reply["carstamp"])
                for src, reply in replies.items()
            }
            max_cs = max(carstamps.values())
            value = None
            for src, reply in replies.items():
                if carstamps[src] == max_cs:
                    value = reply["value"]
                    break
            quorum_agrees = all(cs == max_cs for cs in carstamps.values())

            if self.config.variant == GryffVariant.GRYFF:
                self.dependency = None
                if quorum_agrees:
                    self.reads_fast += 1
                else:
                    # Write-back phase: propagate the newest value to a quorum
                    # before returning (required by linearizability).
                    self.reads_slow += 1
                    write_back = self.rpc_multicast(
                        self._replicas(key), "write2",
                        key=key, value=value, carstamp=max_cs.as_tuple(),
                    )
                    yield write_back.wait(self.config.quorum_size)
                    yield from self._after_install(key, value, max_cs)
            else:
                # Gryff-RSC: always one round; remember the dependency if the
                # value is not yet known to be on a quorum (Algorithm 3, l. 8-9).
                if quorum_agrees:
                    self.reads_fast += 1
                    self.dependency = None
                else:
                    self.reads_slow += 1
                    self.dependency = {
                        "key": key, "value": value, "carstamp": max_cs.as_tuple(),
                    }
        finally:
            self._end_op(token)

        op = Operation.read(self.name, key, value,
                            invoked_at=invoked_at, responded_at=self.env.now,
                            carstamp=max_cs.as_tuple())
        self._record(op, "read", invoked_at)
        return value

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #
    def write(self, key: str, value: Any):
        """Write ``value`` to ``key`` (generator); returns the carstamp."""
        invoked_at = self.env.now
        self._note_invocation(invoked_at)
        token = yield from self._begin_op(key)
        try:
            yield from self._settle_dependency(key)
            phase1 = self.rpc_multicast(
                self._replicas(key), "write1",
                key=key, dependency=self._take_dependency(),
            )
            replies = yield phase1.wait(self.config.quorum_size)
            self.dependency = None  # propagated to a quorum with phase 1
            max_cs = max(
                _carstamp_from_wire(reply["carstamp"]) for reply in replies.values()
            )
            new_cs = max_cs.bump_write(self.name)
            phase2 = self.rpc_multicast(
                self._replicas(key), "write2",
                key=key, value=value, carstamp=new_cs.as_tuple(),
            )
            yield phase2.wait(self.config.quorum_size)
            yield from self._after_install(key, value, new_cs)
        finally:
            self._end_op(token)
        op = Operation.write(self.name, key, value,
                             invoked_at=invoked_at, responded_at=self.env.now,
                             carstamp=new_cs.as_tuple())
        self._record(op, "write", invoked_at)
        return new_cs

    # ------------------------------------------------------------------ #
    # Read-modify-writes
    # ------------------------------------------------------------------ #
    def rmw(self, key: str, mode: str = "increment", **params):
        """Atomically read-modify-write ``key`` (generator).

        ``mode`` selects the update function applied at the coordinator
        replica: ``increment`` (with ``amount``), ``append`` (with
        ``suffix``), or ``set`` (with ``new_value``).
        Returns ``(old_value, new_value)``.
        """
        invoked_at = self.env.now
        self._note_invocation(invoked_at)
        token = yield from self._begin_op(key)
        try:
            yield from self._settle_dependency(key)
            coordinator = self._rmw_coordinator(key)
            reply = yield self.rpc_call(
                coordinator, "rmw",
                key=key, client=self.name, mode=mode,
                dependency=self._take_dependency(), **params,
            )
            self.dependency = None
            yield from self._after_install(
                key, reply["new_value"], _carstamp_from_wire(reply["carstamp"]))
        finally:
            self._end_op(token)
        op = Operation.rmw(self.name, key,
                           observed=reply["old_value"], new_value=reply["new_value"],
                           invoked_at=invoked_at, responded_at=self.env.now,
                           carstamp=tuple(reply["carstamp"]))
        self._record(op, "rmw", invoked_at)
        return reply["old_value"], reply["new_value"]

    # ------------------------------------------------------------------ #
    # Real-time fence (§7.1)
    # ------------------------------------------------------------------ #
    def fence(self):
        """Write back any pending dependency to a quorum so that *all* future
        reads (by any client) observe state at least as recent as everything
        that causally precedes this fence."""
        invoked_at = self.env.now
        if self.dependency is None:
            return False
        dependency = self.dependency
        token = yield from self._begin_op(dependency["key"])
        try:
            call = self.rpc_multicast(
                self._replicas(dependency["key"]), "write2",
                key=dependency["key"], value=dependency["value"],
                carstamp=dependency["carstamp"],
            )
            yield call.wait(self.config.quorum_size)
            yield from self._after_install(
                dependency["key"], dependency["value"],
                _carstamp_from_wire(dependency["carstamp"]))
            self.dependency = None
        finally:
            self._end_op(token)
        self.recorder.record("fence", invoked_at, self.env.now)
        return True
