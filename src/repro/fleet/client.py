"""Placement-routing fleet clients and the in-flight operation tracker.

The fleet clients are thin subclasses of the standalone protocol clients:

* :class:`FleetGryffClient` overrides the replica-selection hooks of
  :class:`~repro.gryff.client.GryffClient` so every single-key operation
  goes to the key's owning group.  A pending Gryff-RSC dependency whose key
  lives in a *different* group than the next operation's key cannot be
  piggybacked; it is settled first (written back to a quorum of its own
  group), preserving the causal guarantee across groups.
* :class:`FleetSpannerClient` wraps the transaction entry points of
  :class:`~repro.spanner.client.SpannerClient`; routing itself comes from
  :class:`~repro.fleet.spec.FleetSpannerConfig`, whose ``shard_for_key``
  resolves the owning group through the live placement, so the unmodified
  2PC machinery handles cross-group transactions over the merged topology.

Both cooperate with the migration controller through two mechanisms layered
on the shared :class:`~repro.fleet.ring.PlacementMap`:

* **gate**: while a range is frozen (the flip window), operations touching
  it wait before starting — Gryff gates per key point; Spanner gates
  globally, because a read-write transaction's write set is unknown until
  its execution phase, so a per-range gate could not stop a blind write
  into the moving range;
* **mirror**: while a range is dual-written, every value installed into the
  source group is also installed into the destination group *before the
  operation completes* (``mig_install``, idempotent at the server).

The :class:`OpTracker` gives the controller drain barriers: every client
operation holds a token (tagged with its key points) from just after the
gate until after any mirror write finished, so "no in-flight op can still
write the old owner" is simply "these tokens have all ended".
"""

from __future__ import annotations

import itertools
import zlib
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.fleet.ring import PlacementMap, key_point
from repro.gryff.carstamp import Carstamp
from repro.gryff.client import GryffClient
from repro.spanner.client import SpannerClient

__all__ = ["OpTracker", "FleetGryffClient", "FleetSpannerClient"]

#: How often a gated client re-checks the freeze flag, in env ms.
GATE_POLL_MS = 1.0


class OpTracker:
    """Tracks in-flight client operations for migration drain barriers."""

    def __init__(self) -> None:
        self._counter = itertools.count(1)
        self._active: Dict[int, Tuple[int, ...]] = {}
        #: Completed operations per owning group (routing metric).
        self.routed_ops: Dict[str, int] = {}
        #: Gate pauses experienced by clients, in env ms.
        self.client_pause_ms: List[float] = []
        #: Dual-write installs performed by clients.
        self.mirrored_installs = 0

    def begin(self, points: Sequence[int] = (),
              group: Optional[str] = None) -> int:
        token = next(self._counter)
        self._active[token] = tuple(points)
        if group is not None:
            self.routed_ops[group] = self.routed_ops.get(group, 0) + 1
        return token

    def end(self, token: Optional[int]) -> None:
        if token is not None:
            self._active.pop(token, None)

    def active_tokens(self) -> List[int]:
        return list(self._active)

    def any_active(self, tokens: Iterable[int]) -> bool:
        return any(token in self._active for token in tokens)

    def active_in_range(self, lo: int, hi: int) -> List[int]:
        return [token for token, points in self._active.items()
                if any(lo <= point < hi for point in points)]

    def note_client_pause(self, pause_ms: float) -> None:
        self.client_pause_ms.append(pause_ms)

    def note_mirror(self) -> None:
        self.mirrored_installs += 1


class FleetGryffClient(GryffClient):
    """A Gryff client that routes each key to its owning shard group."""

    def __init__(self, env, network, config, name: str, site: str, *,
                 groups: Dict[str, List[str]], placement: PlacementMap,
                 tracker: OpTracker, history=None, recorder=None,
                 record_history: bool = True):
        super().__init__(env, network, config, name, site, history=history,
                         recorder=recorder, record_history=record_history)
        self._groups = {gid: list(names) for gid, names in groups.items()}
        self.placement = placement
        self.tracker = tracker

    # -- routing ------------------------------------------------------- #
    def _point(self, key: str) -> int:
        return key_point(key, self.placement.seed)

    def _replicas(self, key: Optional[str] = None) -> List[str]:
        if key is None:
            return [name for names in self._groups.values() for name in names]
        return self._groups[self.placement.owner_of_point(self._point(key))]

    def _rmw_coordinator(self, key: str) -> str:
        names = self._replicas(key)
        for name in names:
            if self.network.node(name).site == self.site:
                return name
        return names[0]

    # -- migration cooperation ----------------------------------------- #
    def _begin_op(self, key: str):
        points = [self._point(key)]
        if self.dependency is not None:
            points.append(self._point(self.dependency["key"]))
        if any(self.placement.is_frozen_point(p) for p in points):
            started = self.env.now
            while any(self.placement.is_frozen_point(p) for p in points):
                yield self.env.timeout(GATE_POLL_MS)
            self.tracker.note_client_pause(self.env.now - started)
        # No yield between the frozen check and begin(): registration is
        # atomic with respect to the event loop, so the controller's
        # freeze-then-drain sequence cannot miss this operation.
        group = self.placement.owner_of_point(points[0])
        return self.tracker.begin(points, group=group)

    def _end_op(self, token) -> None:
        self.tracker.end(token)

    def _settle_dependency(self, key: str):
        dependency = self.dependency
        if dependency is None:
            return
        op_owner = self.placement.owner_of_point(self._point(key))
        dep_owner = self.placement.owner_of_point(
            self._point(dependency["key"]))
        if dep_owner == op_owner:
            return  # same group: piggyback on the read phase as usual
        # The dependency cannot travel to another group's replicas, so make
        # it quorum-durable in its own group first (a write-back identical
        # to the fence path), keeping RSC's causal order across groups.
        call = self.rpc_multicast(
            self._replicas(dependency["key"]), "write2",
            key=dependency["key"], value=dependency["value"],
            carstamp=dependency["carstamp"],
        )
        yield call.wait(self.config.quorum_size)
        yield from self._after_install(
            dependency["key"], dependency["value"],
            Carstamp(*dependency["carstamp"]))
        self.dependency = None

    def _after_install(self, key: str, value: Any, carstamp: Carstamp):
        target = self.placement.mirror_target(self._point(key))
        if target is None:
            return
        call = self.rpc_multicast(
            self._groups[target], "mig_install",
            entries=[[key, value, list(carstamp.as_tuple())]],
        )
        yield call.wait(self.config.quorum_size)
        self.tracker.note_mirror()


class FleetSpannerClient(SpannerClient):
    """A Spanner client whose config routes keys through the placement.

    ``config`` must be a :class:`~repro.fleet.spec.FleetSpannerConfig`; all
    shard selection flows through it, so reads, 2PC, and RSS read-only
    rounds work unmodified across groups (one shared TrueTime epoch keeps
    cross-group timestamps comparable).
    """

    def __init__(self, env, network, truetime, config, name: str, site: str,
                 *, tracker: OpTracker, history=None, recorder=None,
                 record_history: bool = True):
        super().__init__(env, network, truetime, config, name, site,
                         history=history, recorder=recorder,
                         record_history=record_history)
        self.tracker = tracker

    @property
    def placement(self) -> PlacementMap:
        return self.config.placement

    def _gate(self):
        if self.placement.has_frozen():
            started = self.env.now
            while self.placement.has_frozen():
                yield self.env.timeout(GATE_POLL_MS)
            self.tracker.note_client_pause(self.env.now - started)

    def _owner_group(self, keys) -> Optional[str]:
        for key in keys:
            return self.placement.owner(key)
        return None

    def read_write_transaction(self, read_keys, compute_writes,
                               max_retries: int = 25):
        yield from self._gate()
        token = self.tracker.begin((), group=self._owner_group(read_keys))
        try:
            result = yield from super().read_write_transaction(
                read_keys, compute_writes, max_retries)
            _, writes, commit_ts = result
            # Dual-write committed values whose range is mid-migration into
            # the destination group before the transaction completes, so the
            # post-flip copy is guaranteed to include them.
            yield from self._mirror_writes(writes, commit_ts)
            return result
        finally:
            self.tracker.end(token)

    def read_only_transaction(self, keys):
        yield from self._gate()
        token = self.tracker.begin((), group=self._owner_group(keys))
        try:
            result = yield from super().read_only_transaction(keys)
            return result
        finally:
            self.tracker.end(token)

    def _mirror_writes(self, writes: Dict[str, Any], commit_ts: float):
        by_shard: Dict[str, List[List[Any]]] = {}
        for key, value in writes.items():
            target = self.placement.mirror_target(
                key_point(key, self.placement.seed))
            if target is None:
                continue
            shards = self.config.group_shards[target]
            digest = zlib.crc32(str(key).encode("utf-8"))
            shard = shards[digest % len(shards)]
            by_shard.setdefault(shard, []).append(
                [key, commit_ts, value, f"mig:{self.name}"])
        if not by_shard:
            return
        calls = [self.rpc_call(shard, "mig_install", versions=versions)
                 for shard, versions in by_shard.items()]
        for call in calls:
            yield call
        self.tracker.note_mirror()
