"""Deterministic consistent-hash ring and versioned placement map.

Keys hash onto a fixed ``2**32`` point space via a seeded blake2b digest;
the space is partitioned into contiguous half-open ranges ``[lo, hi)`` each
owned by exactly one shard group.  The initial partition is derived from a
classic virtual-node ring (``vnodes`` seeded tokens per group, ownership by
successor token) collapsed into the contiguous range table, so placement is
a pure function of ``(group_ids, seed, vnodes)`` — every client and every
controller derives the identical map.

The map is *versioned*: every mutation (``move``) bumps ``version`` by one,
giving the placement epochs (``placement/1``) that the migration protocol
flips between.  Serialization round-trips through plain JSON dicts.

Invariants (checked by :meth:`PlacementMap.validate` and property tests):

- the ranges exactly tile ``[0, POINT_SPACE)`` with no overlap and no gap;
- every key therefore routes to exactly one group at every version;
- ``version`` is strictly monotonic across mutations.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

PLACEMENT_SCHEMA = "placement/1"

# Fixed point space for the ring: 32-bit positions, half-open ranges.
POINT_SPACE = 1 << 32

DEFAULT_VNODES = 16


def key_point(key: str, seed: int = 0) -> int:
    """Map ``key`` to its deterministic position on the ring.

    Seeded so distinct fleets can use independent key distributions; the
    digest is truncated to the 32-bit point space.
    """
    digest = hashlib.blake2b(
        key.encode("utf-8"), digest_size=8, key=seed.to_bytes(8, "big")
    ).digest()
    return int.from_bytes(digest[:4], "big") % POINT_SPACE


def _token(group_id: str, index: int, seed: int) -> int:
    digest = hashlib.blake2b(
        f"{group_id}#{index}".encode("utf-8"), digest_size=8,
        key=seed.to_bytes(8, "big"),
    ).digest()
    return int.from_bytes(digest[:4], "big") % POINT_SPACE


@dataclass(frozen=True)
class PlacementRange:
    """Half-open key-point range ``[lo, hi)`` owned by one shard group."""

    lo: int
    hi: int
    group: str

    def __post_init__(self) -> None:
        if not (0 <= self.lo < self.hi <= POINT_SPACE):
            raise ValueError(
                f"invalid placement range [{self.lo}, {self.hi}): must satisfy "
                f"0 <= lo < hi <= {POINT_SPACE}")

    def contains(self, point: int) -> bool:
        return self.lo <= point < self.hi

    def to_dict(self) -> Dict[str, object]:
        return {"lo": self.lo, "hi": self.hi, "group": self.group}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "PlacementRange":
        return cls(lo=int(payload["lo"]), hi=int(payload["hi"]),
                   group=str(payload["group"]))


class PlacementMap:
    """Versioned assignment of the key-point space to shard groups.

    Mutations go through :meth:`move`, which reassigns an arbitrary
    ``[lo, hi)`` slice to a destination group (splitting boundary ranges as
    needed), coalesces adjacent same-owner ranges, and bumps ``version``.
    The migration controller layers transient *freeze* and *mirror* state on
    top — per-range flags that never survive serialization (they describe
    the in-flight protocol of one process, not the durable placement).
    """

    def __init__(self, ranges: Sequence[PlacementRange], *, seed: int = 0,
                 version: int = 1) -> None:
        self.seed = int(seed)
        self.version = int(version)
        self._ranges: List[PlacementRange] = sorted(ranges, key=lambda r: r.lo)
        self._frozen: List[Tuple[int, int]] = []
        self._mirrors: List[Tuple[int, int, str]] = []
        self.validate()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, group_ids: Sequence[str], *, seed: int = 0,
              vnodes: int = DEFAULT_VNODES) -> "PlacementMap":
        """Derive the initial placement from a seeded virtual-node ring."""
        groups = list(group_ids)
        if not groups:
            raise ValueError("placement needs at least one group")
        if len(set(groups)) != len(groups):
            raise ValueError(f"duplicate group ids: {groups}")
        if len(groups) == 1:
            return cls([PlacementRange(0, POINT_SPACE, groups[0])], seed=seed)
        tokens: List[Tuple[int, str]] = []
        seen: Dict[int, str] = {}
        for gid in groups:
            for index in range(vnodes):
                point = _token(gid, index, seed)
                # Token collisions are resolved deterministically in favor of
                # the lexicographically smaller group id.
                if point in seen and seen[point] <= gid:
                    continue
                seen[point] = gid
        tokens = sorted(seen.items())
        # Successor-token ownership: points in [token_i, token_{i+1}) belong
        # to token_{i+1}'s group; the wrap-around slice belongs to the first
        # token's group.  Expressed as contiguous ranges:
        ranges: List[PlacementRange] = []
        first_point, first_gid = tokens[0]
        if first_point > 0:
            ranges.append(PlacementRange(0, first_point, first_gid))
        for (lo, _), (hi, gid) in zip(tokens, tokens[1:]):
            ranges.append(PlacementRange(lo, hi, gid))
        last_point, _ = tokens[-1]
        ranges.append(PlacementRange(last_point, POINT_SPACE, first_gid))
        merged = cls(_coalesce(ranges), seed=seed)
        missing = set(groups) - set(merged.group_ids())
        if missing:
            # A group whose every token collided away would own nothing;
            # give it a deterministic slice of the largest range.
            for gid in sorted(missing):
                widest = max(merged._ranges, key=lambda r: r.hi - r.lo)
                mid = (widest.lo + widest.hi) // 2
                merged._reassign(mid, widest.hi, gid)
        merged.version = 1
        return merged

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def ranges(self) -> List[PlacementRange]:
        return list(self._ranges)

    def group_ids(self) -> List[str]:
        return sorted({r.group for r in self._ranges})

    def owner_of_point(self, point: int) -> str:
        lo, hi = 0, len(self._ranges) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            r = self._ranges[mid]
            if point < r.lo:
                hi = mid - 1
            elif point >= r.hi:
                lo = mid + 1
            else:
                return r.group
        raise ValueError(f"point {point} not covered by placement")

    def owner(self, key: str) -> str:
        return self.owner_of_point(key_point(key, self.seed))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def _reassign(self, lo: int, hi: int, group: str) -> None:
        out: List[PlacementRange] = []
        for r in self._ranges:
            if r.hi <= lo or r.lo >= hi:
                out.append(r)
                continue
            if r.lo < lo:
                out.append(PlacementRange(r.lo, lo, r.group))
            if r.hi > hi:
                out.append(PlacementRange(hi, r.hi, r.group))
        out.append(PlacementRange(lo, hi, group))
        self._ranges = _coalesce(sorted(out, key=lambda r: r.lo))

    def move(self, lo: int, hi: int, group: str) -> int:
        """Reassign ``[lo, hi)`` to ``group`` and bump the placement epoch.

        Returns the new version.  Splitting and merging are both just moves:
        a *split* moves half of an existing range to a new owner, a *merge*
        moves a whole range onto its neighbour's owner.
        """
        if not (0 <= lo < hi <= POINT_SPACE):
            raise ValueError(f"invalid move range [{lo}, {hi})")
        self._reassign(lo, hi, group)
        self.version += 1
        self.validate()
        return self.version

    # ------------------------------------------------------------------
    # Transient migration state (never serialized)
    # ------------------------------------------------------------------

    def freeze(self, lo: int, hi: int) -> None:
        self._frozen.append((lo, hi))

    def unfreeze(self, lo: int, hi: int) -> None:
        self._frozen = [w for w in self._frozen if w != (lo, hi)]

    def is_frozen_point(self, point: int) -> bool:
        return any(lo <= point < hi for lo, hi in self._frozen)

    def has_frozen(self) -> bool:
        return bool(self._frozen)

    def set_mirror(self, lo: int, hi: int, group: str) -> None:
        self._mirrors.append((lo, hi, group))

    def clear_mirror(self, lo: int, hi: int, group: str) -> None:
        self._mirrors = [m for m in self._mirrors if m != (lo, hi, group)]

    def mirror_target(self, point: int) -> Optional[str]:
        for lo, hi, group in self._mirrors:
            if lo <= point < hi:
                return group
        return None

    def has_mirrors(self) -> bool:
        return bool(self._mirrors)

    def clear_transient(self) -> None:
        self._frozen = []
        self._mirrors = []

    # ------------------------------------------------------------------
    # Validation / serialization
    # ------------------------------------------------------------------

    def validate(self) -> None:
        if not self._ranges:
            raise ValueError("placement has no ranges")
        if self._ranges[0].lo != 0:
            raise ValueError(f"placement does not start at 0: {self._ranges[0]}")
        for prev, cur in zip(self._ranges, self._ranges[1:]):
            if prev.hi != cur.lo:
                raise ValueError(
                    f"placement gap/overlap between [{prev.lo},{prev.hi}) and "
                    f"[{cur.lo},{cur.hi})")
        if self._ranges[-1].hi != POINT_SPACE:
            raise ValueError(
                f"placement does not cover the point space: ends at "
                f"{self._ranges[-1].hi}, expected {POINT_SPACE}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": PLACEMENT_SCHEMA,
            "seed": self.seed,
            "version": self.version,
            "ranges": [r.to_dict() for r in self._ranges],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "PlacementMap":
        schema = payload.get("schema")
        if schema != PLACEMENT_SCHEMA:
            raise ValueError(
                f"unsupported placement schema {schema!r} (expected "
                f"{PLACEMENT_SCHEMA!r})")
        ranges = [PlacementRange.from_dict(r) for r in payload["ranges"]]
        return cls(ranges, seed=int(payload.get("seed", 0)),
                   version=int(payload.get("version", 1)))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PlacementMap":
        return cls.from_dict(json.loads(text))

    def copy(self) -> "PlacementMap":
        return PlacementMap(self._ranges, seed=self.seed, version=self.version)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PlacementMap):
            return NotImplemented
        return (self.seed == other.seed and self.version == other.version
                and self._ranges == other._ranges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"[{r.lo},{r.hi})->{r.group}" for r in self._ranges)
        return f"PlacementMap(v{self.version}: {parts})"


def _coalesce(ranges: Iterable[PlacementRange]) -> List[PlacementRange]:
    out: List[PlacementRange] = []
    for r in ranges:
        if out and out[-1].group == r.group and out[-1].hi == r.lo:
            out[-1] = PlacementRange(out[-1].lo, r.hi, r.group)
        else:
            out.append(r)
    return out
