"""Multi-group fleet topology: N shard groups behind one placement map.

A :class:`FleetSpec` generalizes :class:`~repro.net.spec.ClusterSpec` to N
*shard groups*.  Each group is a complete standalone cluster of today's
machinery — a Gryff replica group or a Spanner shard group — whose node
names are prefixed with the group id (``g0/replica1``) so they stay unique
across the merged topology.  All groups share one protocol, one wall-clock
epoch (cross-group timestamps must be comparable), and one seeded
:class:`~repro.fleet.ring.PlacementMap` assigning every key to exactly one
group.

``repro init-config --groups N`` writes these files (schema
``repro-fleet/1``); ``repro serve`` hosts any subset of groups from the
same file, and ``repro load`` routes through the placement.
"""

from __future__ import annotations

import json
import re
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Union

from repro.fleet.ring import DEFAULT_VNODES, PlacementMap
from repro.gryff.config import GryffConfig, GryffVariant
from repro.net.spec import (
    GRYFF_PROTOCOLS,
    SPANNER_PROTOCOLS,
    ClusterSpec,
    NodeSpec,
    _GRYFF_SITES,
)
from repro.spanner.config import SpannerConfig, Variant

__all__ = ["FLEET_SCHEMA", "FleetConfigError", "FleetSpec",
           "FleetSpannerConfig", "load_fleet_spec"]

FLEET_SCHEMA = "repro-fleet/1"

_GROUP_ID_RE = re.compile(r"^[A-Za-z0-9_-]+$")


class FleetConfigError(ValueError):
    """An invalid fleet topology (empty group, bad names, bad placement)."""


@dataclass
class FleetSpannerConfig(SpannerConfig):
    """Client-side Spanner config that routes keys through the placement.

    ``shard_for_key`` first resolves the owning *group* from the live
    placement map, then picks the shard within the group by the same crc32
    hash a standalone cluster uses — so a single-group fleet routes keys to
    exactly the shards a standalone deployment would.
    """

    placement: Optional[PlacementMap] = None
    #: Group id -> ordered shard names of that group.
    group_shards: Dict[str, List[str]] = field(default_factory=dict)

    def shard_for_key(self, key: str) -> str:
        shards = self.group_shards[self.placement.owner(key)]
        digest = zlib.crc32(str(key).encode("utf-8"))
        return shards[digest % len(shards)]

    def all_shard_names(self) -> List[str]:
        return [name for shards in self.group_shards.values()
                for name in shards]


@dataclass
class FleetSpec:
    """A fleet deployment: protocol, N node groups, epoch, placement."""

    protocol: str
    #: Group id -> (node name -> NodeSpec); every node name unique fleet-wide.
    groups: Dict[str, Dict[str, NodeSpec]]
    placement: PlacementMap
    epoch: float = 0.0
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.protocol not in GRYFF_PROTOCOLS + SPANNER_PROTOCOLS:
            raise FleetConfigError(f"unknown protocol {self.protocol!r}")
        if not self.groups:
            raise FleetConfigError("fleet has no groups")
        sizes = set()
        seen: Dict[str, str] = {}
        for gid, nodes in self.groups.items():
            if not _GROUP_ID_RE.match(gid):
                raise FleetConfigError(f"invalid group id {gid!r}")
            if not nodes:
                raise FleetConfigError(f"group {gid!r} has no nodes")
            sizes.add(len(nodes))
            for name, node in nodes.items():
                if name != node.name:
                    raise FleetConfigError(
                        f"group {gid!r}: mapping key {name!r} != node name "
                        f"{node.name!r}")
                if name in seen:
                    raise FleetConfigError(
                        f"duplicate node name {name!r} in groups "
                        f"{seen[name]!r} and {gid!r}")
                seen[name] = gid
        if len(sizes) != 1:
            # Homogeneous groups keep one client-side quorum size valid for
            # every group (Gryff) and one shards-per-group fan-out (Spanner).
            raise FleetConfigError(
                f"groups must be the same size, got sizes {sorted(sizes)}")
        placement_gids = set(self.placement.group_ids())
        topology_gids = set(self.groups)
        if not placement_gids <= topology_gids:
            raise FleetConfigError(
                f"placement assigns ranges to unknown groups "
                f"{sorted(placement_gids - topology_gids)}")

    # ------------------------------------------------------------------ #
    # Builders
    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, protocol: str = "gryff-rsc", num_groups: int = 2,
              nodes_per_group: int = 3, host: str = "127.0.0.1",
              base_port: int = 7600, epoch: Optional[float] = None,
              placement_seed: int = 0, vnodes: int = DEFAULT_VNODES,
              params: Optional[Dict[str, Any]] = None) -> "FleetSpec":
        """A localhost fleet of ``num_groups`` identical groups.

        Ports are assigned sequentially across all nodes from ``base_port``
        (``base_port=0`` lets every node bind an ephemeral port — used by
        in-process tests and benchmarks).
        """
        if num_groups < 1:
            raise FleetConfigError(f"need at least one group, got {num_groups}")
        is_gryff = protocol in GRYFF_PROTOCOLS
        gids = [f"g{index}" for index in range(num_groups)]
        groups: Dict[str, Dict[str, NodeSpec]] = {}
        port = base_port
        for gid in gids:
            nodes: Dict[str, NodeSpec] = {}
            for index in range(nodes_per_group):
                if is_gryff:
                    name = f"{gid}/replica{index}"
                    role = "replica"
                    site = _GRYFF_SITES[index % len(_GRYFF_SITES)]
                else:
                    name = f"{gid}/shard{index}"
                    role = "shard"
                    site = "local"
                nodes[name] = NodeSpec(name=name, role=role, host=host,
                                       port=port if base_port else 0, site=site)
                port += 1
            groups[gid] = nodes
        placement = PlacementMap.build(gids, seed=placement_seed, vnodes=vnodes)
        merged_params = dict(params or {})
        merged_params.setdefault("placement_seed", placement_seed)
        merged_params.setdefault("vnodes", vnodes)
        return cls(protocol=protocol, groups=groups, placement=placement,
                   epoch=time.time() if epoch is None else epoch,
                   params=merged_params)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def is_gryff(self) -> bool:
        return self.protocol in GRYFF_PROTOCOLS

    @property
    def is_spanner(self) -> bool:
        return self.protocol in SPANNER_PROTOCOLS

    def group_ids(self) -> List[str]:
        return list(self.groups)

    @property
    def group_size(self) -> int:
        return len(next(iter(self.groups.values())))

    def group_names(self, gid: str) -> List[str]:
        return list(self.groups[gid])

    def group_of(self, node_name: str) -> str:
        for gid, nodes in self.groups.items():
            if node_name in nodes:
                return gid
        raise KeyError(node_name)

    def all_nodes(self) -> Dict[str, NodeSpec]:
        merged: Dict[str, NodeSpec] = {}
        for nodes in self.groups.values():
            merged.update(nodes)
        return merged

    def server_names(self) -> List[str]:
        return list(self.all_nodes())

    def sites(self) -> List[str]:
        """Site labels in node order (duplicates preserved for round-robin)."""
        return [node.site for node in self.all_nodes().values()]

    def group_sites(self, gid: str) -> List[str]:
        return [node.site for node in self.groups[gid].values()]

    # ------------------------------------------------------------------ #
    # Cluster views and protocol configs
    # ------------------------------------------------------------------ #
    def merged_spec(self) -> ClusterSpec:
        """The whole fleet as one flat :class:`ClusterSpec`.

        This is what the transport dials against: every node of every group
        is addressable by name, which is exactly what lets the unmodified
        Spanner 2PC coordinator fan prepares across groups.
        """
        return ClusterSpec(protocol=self.protocol, nodes=self.all_nodes(),
                           epoch=self.epoch, params=dict(self.params))

    def group_spec(self, gid: str) -> ClusterSpec:
        """One group as a standalone :class:`ClusterSpec`."""
        return ClusterSpec(protocol=self.protocol,
                           nodes=dict(self.groups[gid]),
                           epoch=self.epoch, params=dict(self.params))

    def _group_prefix(self, gid: str) -> str:
        """The name prefix this group's nodes share.

        Server-side protocol configs derive node names as
        ``{prefix}replica{i}`` / ``{prefix}shard{i}``, so group node names
        must follow that convention (the builders guarantee it).
        """
        stem = "replica" if self.is_gryff else "shard"
        names = list(self.groups[gid])
        for prefix in (f"{gid}/", ""):
            if names == [f"{prefix}{stem}{i}" for i in range(len(names))]:
                return prefix
        raise FleetConfigError(
            f"group {gid!r} node names {names} do not follow the "
            f"'<prefix>{stem}<index>' convention")

    def group_config(self, gid: str) -> Union[GryffConfig, SpannerConfig]:
        """The protocol config the *servers* of group ``gid`` run with."""
        if self.is_gryff:
            variant = (GryffVariant.GRYFF if self.protocol == "gryff"
                       else GryffVariant.GRYFF_RSC)
            return GryffConfig(
                variant=variant, sites=self.group_sites(gid),
                processing_ms=0.0, server_cpu_ms=0.0, jitter_ms=0.0,
                seed=int(self.params.get("seed", 0)), wide_area=False,
                name_prefix=self._group_prefix(gid),
            )
        variant = (Variant.SPANNER if self.protocol == "spanner"
                   else Variant.SPANNER_RSS)
        sites = sorted(set(self.group_sites(gid))) or ["local"]
        return SpannerConfig(
            variant=variant,
            num_shards=len(self.groups[gid]),
            leader_sites=self.group_sites(gid),
            sites=sites,
            truetime_epsilon_ms=float(
                self.params.get("truetime_epsilon_ms", 10.0)),
            fence_bound_ms=float(self.params.get("fence_bound_ms", 250.0)),
            processing_ms=0.0, server_cpu_ms=0.0, jitter_ms=0.0,
            seed=int(self.params.get("seed", 0)),
            name_prefix=self._group_prefix(gid),
        )

    def node_configs(self) -> Dict[str, Union[GryffConfig, SpannerConfig]]:
        """Per-node server configs (one shared config object per group)."""
        configs: Dict[str, Union[GryffConfig, SpannerConfig]] = {}
        for gid, nodes in self.groups.items():
            config = self.group_config(gid)
            for name in nodes:
                configs[name] = config
        return configs

    def client_gryff_config(self) -> GryffConfig:
        """The config fleet Gryff *clients* run with.

        Quorum size and variant come from any one group (groups are
        homogeneous); replica selection itself is overridden by the fleet
        client, which routes through the placement.
        """
        if not self.is_gryff:
            raise FleetConfigError(f"{self.protocol!r} is not a Gryff protocol")
        return self.group_config(self.group_ids()[0])

    def client_spanner_config(self) -> FleetSpannerConfig:
        """The placement-routing config fleet Spanner *clients* run with."""
        if not self.is_spanner:
            raise FleetConfigError(
                f"{self.protocol!r} is not a Spanner protocol")
        variant = (Variant.SPANNER if self.protocol == "spanner"
                   else Variant.SPANNER_RSS)
        sites = sorted({site for gid in self.groups
                        for site in self.group_sites(gid)}) or ["local"]
        return FleetSpannerConfig(
            variant=variant,
            num_shards=len(self.all_nodes()),
            leader_sites=self.sites(),
            sites=sites,
            truetime_epsilon_ms=float(
                self.params.get("truetime_epsilon_ms", 10.0)),
            fence_bound_ms=float(self.params.get("fence_bound_ms", 250.0)),
            processing_ms=0.0, server_cpu_ms=0.0, jitter_ms=0.0,
            seed=int(self.params.get("seed", 0)),
            placement=self.placement,
            group_shards={gid: list(nodes) for gid, nodes in self.groups.items()},
        )

    # ------------------------------------------------------------------ #
    # JSON round trip
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": FLEET_SCHEMA,
            "protocol": self.protocol,
            "epoch": self.epoch,
            "params": dict(self.params),
            "placement": self.placement.to_dict(),
            "groups": {gid: [node.to_dict() for node in nodes.values()]
                       for gid, nodes in self.groups.items()},
        }

    def save(self, destination: Union[str, IO[str]]) -> None:
        if isinstance(destination, str):
            with open(destination, "w", encoding="utf-8") as handle:
                self.save(handle)
            return
        json.dump(self.to_dict(), destination, indent=2)
        destination.write("\n")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FleetSpec":
        if data.get("schema") != FLEET_SCHEMA:
            raise FleetConfigError(
                f"not a {FLEET_SCHEMA} file (schema={data.get('schema')!r})")
        groups: Dict[str, Dict[str, NodeSpec]] = {}
        seen: Dict[str, str] = {}
        for gid, entries in data["groups"].items():
            nodes: Dict[str, NodeSpec] = {}
            for entry in entries:
                node = NodeSpec.from_dict(entry)
                if node.name in seen:
                    raise FleetConfigError(
                        f"duplicate node name {node.name!r} in groups "
                        f"{seen[node.name]!r} and {gid!r}")
                seen[node.name] = gid
                nodes[node.name] = node
            groups[gid] = nodes
        return cls(protocol=data["protocol"], groups=groups,
                   placement=PlacementMap.from_dict(data["placement"]),
                   epoch=float(data.get("epoch", 0.0)),
                   params=dict(data.get("params") or {}))

    @classmethod
    def load(cls, source: Union[str, IO[str]]) -> "FleetSpec":
        if isinstance(source, str):
            with open(source, "r", encoding="utf-8") as handle:
                return cls.load(handle)
        return cls.from_dict(json.load(source))


def load_fleet_spec(path: str) -> FleetSpec:
    return FleetSpec.load(path)
