"""Online key-range migration: fenced copy -> dual-write -> flip -> drain.

The :class:`MigrationController` runs *inside the load process* (it must
share the clients' live :class:`~repro.fleet.ring.PlacementMap` and
:class:`~repro.fleet.client.OpTracker`) and moves one key-point range
``[lo, hi)`` from its current owner group(s) to a destination group while
YCSB traffic keeps flowing.  The protocol, per migration:

1. **mirror on** — mark the range dual-written.  From this instant every
   value a client installs into the source group is also installed into the
   destination group before the operation completes (``mig_install``,
   idempotent: Gryff installs iff-newer by carstamp, Spanner skips an
   already-present version timestamp).
2. **barrier** — wait for every operation already in flight at (1) to
   finish; anything that started later mirrors its own writes.
3. **copy** — dump *all* replicas/shards of the source group(s)
   (``mig_dump``), merge by maximum carstamp / union of versions (a
   superset of any acknowledged quorum), filter to the moving range, and
   install into every node of the destination group.  Together with (1)+(2)
   this makes the destination a superset of every acknowledged write.
4. **fence** — freeze the range: new operations touching it (Gryff), or any
   new transaction (Spanner, whose write sets are unknown until execution),
   wait at the gate; then drain the in-flight operations that could still
   touch the old owner.
5. **flip** — bump the placement epoch (:meth:`PlacementMap.move`).  This
   is the serialization point of the reconfiguration.
6. **unfreeze** — gated clients proceed, routed by the new placement.
7. **purge** — re-dump the source group(s) (catching keys first written
   during the dual-write window) and delete the moved range from them.

Every phase transition is journaled on a
:class:`~repro.storage.wal.WriteAheadLog` *before* it takes effect, and the
``begin``/``flipped`` records carry full placement snapshots — so a kill -9
of the controller at any instant recovers, via :func:`recover_placement`,
to a placement in which every key has exactly one owner: the pre-flip
placement if the crash hit before the ``flipped`` record was durable, the
post-flip placement after.  Partially copied data left in the destination
is harmless (it is installed under its original carstamps/timestamps and
the range still routes to the source), as are stale leftovers in the source
after a post-flip crash skipped the purge (the range no longer routes
there, and any future migration back merges by newest-wins).

The checker story: migrations add **zero history events** — admin RPCs are
not recorded operations, mirrored installs reuse original carstamps and
commit timestamps, and routing only changes *which* nodes serve an
operation.  The :class:`~repro.net.check.StreamingWitnessChecker` therefore
must report the declared level satisfied *across* the flip; each
migration's env-time window is reported like a chaos fault window but with
``expect: clean``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.fleet.ring import POINT_SPACE, PlacementMap, key_point
from repro.fleet.spec import FleetSpec
from repro.gryff.carstamp import Carstamp
from repro.sim.node import Node
from repro.storage.wal import WriteAheadLog

__all__ = ["MIGRATION_JOURNAL_SCHEMA", "ControllerCrashed", "MigrationPlan",
           "MigrationController", "recover_placement"]

MIGRATION_JOURNAL_SCHEMA = "repro-migration/1"

#: Drain/gate poll granularity, in env ms.
POLL_MS = 2.0

#: Entries per ``mig_install`` request during the bulk copy.
COPY_CHUNK = 256


class ControllerCrashed(RuntimeError):
    """Raised by the deterministic crash hook (chaos testing)."""


@dataclass
class MigrationPlan:
    """One planned migration, resolved against the live placement when run.

    CLI string forms (``repro load --migrate``):

    * ``<at_ms>:split:<frac>:<dst>`` — bisect the range containing ring
      point ``frac * 2^32``; the upper half moves to ``dst``;
    * ``<at_ms>:merge:<frac>:<dst>`` — the whole range containing the point
      moves to ``dst`` (merging it into ``dst``'s neighbourhood);
    * ``<at_ms>:move:<lofrac>-<hifrac>:<dst>`` — move an explicit slice.
    """

    at_ms: float
    kind: str
    frac_lo: float
    frac_hi: Optional[float]
    dst: str

    @classmethod
    def parse(cls, text: str) -> "MigrationPlan":
        parts = text.split(":")
        if len(parts) != 4:
            raise ValueError(
                f"bad migration spec {text!r} (want '<at_ms>:<kind>:<range>:"
                f"<dst>')")
        at_ms, kind, span, dst = parts
        if kind not in ("split", "merge", "move"):
            raise ValueError(f"bad migration kind {kind!r} in {text!r}")
        if kind == "move":
            lo_text, sep, hi_text = span.partition("-")
            if not sep:
                raise ValueError(
                    f"move needs '<lofrac>-<hifrac>', got {span!r}")
            frac_lo, frac_hi = float(lo_text), float(hi_text)
            if not (0.0 <= frac_lo < frac_hi <= 1.0):
                raise ValueError(f"bad move range {span!r}")
        else:
            frac_lo, frac_hi = float(span), None
            if not (0.0 <= frac_lo < 1.0):
                raise ValueError(f"bad point fraction {span!r}")
        return cls(at_ms=float(at_ms), kind=kind, frac_lo=frac_lo,
                   frac_hi=frac_hi, dst=dst)

    def resolve(self, placement: PlacementMap) -> Tuple[int, int]:
        """The concrete point range to move, given the current placement."""
        if self.kind == "move":
            return (int(self.frac_lo * POINT_SPACE),
                    int(self.frac_hi * POINT_SPACE))
        point = int(self.frac_lo * POINT_SPACE) % POINT_SPACE
        for r in placement.ranges():
            if r.contains(point):
                if self.kind == "split":
                    mid = (r.lo + r.hi) // 2
                    if mid == r.lo:
                        raise ValueError(
                            f"range [{r.lo},{r.hi}) too narrow to split")
                    return mid, r.hi
                return r.lo, r.hi
        raise ValueError(f"point {point} not covered by placement")

    def describe(self) -> str:
        span = (f"{self.frac_lo}-{self.frac_hi}" if self.kind == "move"
                else f"{self.frac_lo}")
        return f"{self.at_ms:g}:{self.kind}:{span}:{self.dst}"


class _AdminNode(Node):
    """A transport endpoint for the controller's admin RPCs.

    Admin traffic (``mig_dump`` / ``mig_install`` / ``mig_purge``) is not a
    recorded client, so migrations add zero events to the history.
    """


class MigrationController:
    """Executes :class:`MigrationPlan`\\ s against a live fleet store."""

    def __init__(self, fleet: FleetSpec, store, *,
                 journal_path: Optional[str] = None,
                 crash_phase: Optional[str] = None):
        self.fleet = fleet
        self.store = store
        self.placement: PlacementMap = store.placement
        self.tracker = store.tracker
        self.journal = (WriteAheadLog(journal_path)
                        if journal_path is not None else None)
        #: Deterministic kill -9 injection: when set, the controller closes
        #: its journal (dropping everything not yet durable — the WAL crash
        #: model) and dies with :class:`ControllerCrashed` upon *reaching*
        #: the named phase ("mirror_on", "mid_copy", "fenced", "flipped").
        self.crash_phase = crash_phase
        self._mig_counter = itertools.count(1)
        #: Per-migration report dicts, appended as each migration completes.
        self.migrations: List[Dict[str, Any]] = []
        self.admin = _AdminNode(
            store.env, store.process.transport,
            name="mig-admin", site=fleet.sites()[0])

    @property
    def env(self):
        return self.store.env

    # ------------------------------------------------------------------ #
    # Journal / crash hooks
    # ------------------------------------------------------------------ #
    def _journal(self, record: Dict[str, Any]) -> None:
        if self.journal is not None:
            self.journal.append(record)

    def _crash_if(self, phase: str) -> None:
        if self.crash_phase == phase:
            if self.journal is not None:
                self.journal.close()
            raise ControllerCrashed(f"injected controller crash at {phase!r}")

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()

    # ------------------------------------------------------------------ #
    # Drains
    # ------------------------------------------------------------------ #
    def _drain(self, tokens) -> Any:
        while self.tracker.any_active(tokens):
            yield self.env.timeout(POLL_MS)

    def _drain_range(self, lo: int, hi: int) -> Any:
        if self.fleet.is_spanner:
            # Spanner write sets are unknown until execution, so the fence
            # drains *every* in-flight transaction (the gate is global too).
            yield from self._drain(self.tracker.active_tokens())
            return
        while self.tracker.active_in_range(lo, hi):
            yield self.env.timeout(POLL_MS)

    # ------------------------------------------------------------------ #
    # Copy / purge plumbing
    # ------------------------------------------------------------------ #
    def _in_range(self, key: str, lo: int, hi: int) -> bool:
        return lo <= key_point(key, self.placement.seed) < hi

    def _src_groups(self, lo: int, hi: int) -> List[str]:
        return sorted({r.group for r in self.placement.ranges()
                       if r.lo < hi and r.hi > lo})

    def _copy_gryff(self, src_groups: List[str], dst: str, lo: int, hi: int):
        best: Dict[str, Tuple[Carstamp, Any]] = {}
        for gid in src_groups:
            for name in self.fleet.group_names(gid):
                reply = yield self.admin.rpc_call(name, "mig_dump")
                for key, value, cs in reply["entries"]:
                    if not self._in_range(key, lo, hi):
                        continue
                    carstamp = Carstamp(cs[0], cs[1], cs[2])
                    current = best.get(key)
                    if current is None or carstamp > current[0]:
                        best[key] = (carstamp, value)
        entries = [[key, value, list(carstamp.as_tuple())]
                   for key, (carstamp, value) in best.items()]
        targets = self.fleet.group_names(dst)
        installed = 0
        for start in range(0, len(entries), COPY_CHUNK):
            chunk = entries[start:start + COPY_CHUNK]
            call = self.admin.rpc_multicast(targets, "mig_install",
                                            entries=chunk)
            yield call.wait(len(targets))
            installed += len(chunk)
            self._crash_if("mid_copy")
        return len(best)

    def _copy_spanner(self, src_groups: List[str], dst: str, lo: int, hi: int):
        dst_shards = self.fleet.group_names(dst)
        by_shard: Dict[str, List[List[Any]]] = {}
        keys = set()
        for gid in src_groups:
            for name in self.fleet.group_names(gid):
                reply = yield self.admin.rpc_call(name, "mig_dump")
                for key, commit_ts, value, writer in reply["versions"]:
                    if not self._in_range(key, lo, hi):
                        continue
                    keys.add(key)
                    import zlib

                    digest = zlib.crc32(str(key).encode("utf-8"))
                    shard = dst_shards[digest % len(dst_shards)]
                    by_shard.setdefault(shard, []).append(
                        [key, commit_ts, value, writer])
        for shard, versions in by_shard.items():
            for start in range(0, len(versions), COPY_CHUNK):
                yield self.admin.rpc_call(
                    shard, "mig_install",
                    versions=versions[start:start + COPY_CHUNK])
                self._crash_if("mid_copy")
        return len(keys)

    def _purge(self, src_groups: List[str], dst: str, lo: int, hi: int):
        """Re-dump the sources post-flip and delete the moved range.

        The second dump catches keys whose *first* write happened during the
        dual-write window (absent from the bulk copy's key list).
        """
        removed = 0
        for gid in src_groups:
            if gid == dst:
                continue
            names = self.fleet.group_names(gid)
            keys = set()
            for name in names:
                reply = yield self.admin.rpc_call(name, "mig_dump")
                if self.fleet.is_gryff:
                    keys.update(key for key, _, _ in reply["entries"]
                                if self._in_range(key, lo, hi))
                else:
                    keys.update(key for key, _, _, _ in reply["versions"]
                                if self._in_range(key, lo, hi))
            if not keys:
                continue
            call = self.admin.rpc_multicast(names, "mig_purge",
                                            keys=sorted(keys))
            replies = yield call.wait(len(names))
            counts = [reply.get("removed", 0) for reply in replies.values()]
            # Gryff replicas hold copies of every key (max = distinct keys);
            # Spanner shards partition them (sum = distinct keys).
            removed += max(counts) if self.fleet.is_gryff else sum(counts)
        return removed

    # ------------------------------------------------------------------ #
    # The protocol
    # ------------------------------------------------------------------ #
    def run(self, plans: List[MigrationPlan]):
        """Run ``plans`` (relative to now) to completion; a process generator."""
        started = self.env.now
        for plan in sorted(plans, key=lambda p: p.at_ms):
            delay = plan.at_ms - (self.env.now - started)
            if delay > 0:
                yield self.env.timeout(delay)
            yield from self.run_one(plan)
        return self.migrations

    def run_one(self, plan: MigrationPlan):
        lo, hi = plan.resolve(self.placement)
        dst = plan.dst
        if dst not in self.fleet.groups:
            raise ValueError(f"unknown destination group {dst!r}")
        src_groups = self._src_groups(lo, hi)
        mig_id = f"mig{next(self._mig_counter)}"
        t_begin = self.env.now
        report: Dict[str, Any] = {
            "mig_id": mig_id, "plan": plan.describe(), "lo": lo, "hi": hi,
            "src_groups": src_groups, "dst": dst,
            "epoch_before": self.placement.version,
        }
        self._journal({"schema": MIGRATION_JOURNAL_SCHEMA, "kind": "begin",
                       "mig_id": mig_id, "lo": lo, "hi": hi,
                       "src_groups": src_groups, "dst": dst,
                       "placement": self.placement.to_dict()})

        # (1) dual-write on.
        self.placement.set_mirror(lo, hi, dst)
        self._journal({"kind": "mirror_on", "mig_id": mig_id})
        self._crash_if("mirror_on")

        # (2) barrier: everything in flight at mirror-on must finish.
        yield from self._drain(self.tracker.active_tokens())

        # (3) bulk copy.
        if self.fleet.is_gryff:
            copied = yield from self._copy_gryff(src_groups, dst, lo, hi)
        else:
            copied = yield from self._copy_spanner(src_groups, dst, lo, hi)
        report["keys_copied"] = copied
        self._journal({"kind": "copied", "mig_id": mig_id, "keys": copied})

        # (4) fence + drain.
        pause_started = self.env.now
        self.placement.freeze(lo, hi)
        self._journal({"kind": "fenced", "mig_id": mig_id})
        self._crash_if("fenced")
        try:
            yield from self._drain_range(lo, hi)
            # (5) flip the placement epoch.
            self.placement.move(lo, hi, dst)
            self._journal({"kind": "flipped", "mig_id": mig_id,
                           "placement": self.placement.to_dict()})
            self._crash_if("flipped")
        finally:
            # (6) unfreeze; gated clients re-route by the (new) placement.
            self.placement.unfreeze(lo, hi)
            self.placement.clear_mirror(lo, hi, dst)
        report["pause_ms"] = self.env.now - pause_started
        report["epoch_after"] = self.placement.version

        # (7) purge the sources.
        removed = yield from self._purge(src_groups, dst, lo, hi)
        report["keys_purged"] = removed
        self._journal({"kind": "purged", "mig_id": mig_id, "removed": removed})
        self._journal({"kind": "done", "mig_id": mig_id})
        report["window_ms"] = [t_begin, self.env.now]
        self.migrations.append(report)
        return report

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def report(self) -> Dict[str, Any]:
        pauses = sorted(self.tracker.client_pause_ms)

        def pct(p: float) -> float:
            if not pauses:
                return 0.0
            return pauses[min(len(pauses) - 1, int(p * len(pauses)))]

        return {
            "migrations": list(self.migrations),
            "placement_epoch": self.placement.version,
            "client_pauses": {
                "count": len(pauses),
                "p50_ms": pct(0.50), "p99_ms": pct(0.99),
                "max_ms": pauses[-1] if pauses else 0.0,
            },
            "mirrored_installs": self.tracker.mirrored_installs,
        }

    def windows(self, origin_ms: float = 0.0) -> List[Dict[str, Any]]:
        """Migration windows in the chaos fault-window shape, ``expect
        clean``: the checker must hold across them, they are reported for
        observability only."""
        return [{"start_ms": m["window_ms"][0] - origin_ms,
                 "end_ms": m["window_ms"][1] - origin_ms,
                 "mig_id": m["mig_id"], "expect": "clean"}
                for m in self.migrations if "window_ms" in m]


def recover_placement(journal_path: str, initial: PlacementMap
                      ) -> Tuple[PlacementMap, Optional[str]]:
    """Reconstruct the authoritative placement from a migration journal.

    Returns ``(placement, unfinished_mig_id)``.  Every journal prefix —
    i.e. a kill -9 at any instant — yields a valid single-owner placement:
    ``begin`` and ``flipped`` records carry full snapshots, and nothing
    between them mutates the durable placement.
    """
    wal = WriteAheadLog(journal_path)
    try:
        snapshot = wal.recover()
    finally:
        wal.close()
    placement = initial.copy()
    placement.clear_transient()
    unfinished: Optional[str] = None
    for record in snapshot.records:
        kind = record.get("kind")
        if kind == "begin":
            unfinished = record.get("mig_id")
            if "placement" in record:
                placement = PlacementMap.from_dict(record["placement"])
        elif kind == "flipped":
            placement = PlacementMap.from_dict(record["placement"])
        elif kind == "done":
            unfinished = None
    placement.validate()
    return placement, unfinished
