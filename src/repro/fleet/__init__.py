"""Fleet layer: N shard groups behind consistent-hash key routing.

A *fleet* is a set of independent shard groups — each group is a complete,
unmodified Gryff replica group or Spanner shard group — stitched together by
a deterministic consistent-hash :class:`~repro.fleet.ring.PlacementMap` that
assigns every point of the key space to exactly one group.  Clients route
single-key operations to the owning group; cross-group transactions run
through the existing Spanner 2PC machinery over the merged topology.

The placement is versioned (``placement/1`` epochs) and can be reconfigured
online: :class:`~repro.fleet.migration.MigrationController` moves a key
range between groups under live load via a fenced copy -> dual-write ->
flip-epoch -> drain protocol, journaled on a
:class:`~repro.storage.wal.WriteAheadLog` so a crash mid-migration recovers
to a consistent single-owner placement.
"""

from repro.fleet.ring import (
    PLACEMENT_SCHEMA,
    POINT_SPACE,
    PlacementMap,
    PlacementRange,
    key_point,
)
from repro.fleet.spec import (
    FLEET_SCHEMA,
    FleetConfigError,
    FleetSpannerConfig,
    FleetSpec,
    load_fleet_spec,
)
from repro.fleet.migration import (
    MIGRATION_JOURNAL_SCHEMA,
    MigrationController,
    MigrationPlan,
    recover_placement,
)

__all__ = [
    "PLACEMENT_SCHEMA",
    "POINT_SPACE",
    "PlacementMap",
    "PlacementRange",
    "key_point",
    "FLEET_SCHEMA",
    "FleetConfigError",
    "FleetSpannerConfig",
    "FleetSpec",
    "load_fleet_spec",
    "MIGRATION_JOURNAL_SCHEMA",
    "MigrationController",
    "MigrationPlan",
    "recover_placement",
]
