"""Protocol-agnostic fault injection for both transports.

A :class:`FaultController` is the one mutable object a chaos scenario steers.
Both message layers consult it at send time through the same two-line hook:
the simulated :class:`~repro.sim.network.Network` and the live
:class:`~repro.net.transport.LiveTransport` each carry a ``faults`` attribute
(``None`` by default — the hot path is untouched and byte-identical for every
existing experiment) and, when set, ask ``faults.fate(src, dst, kind)`` what
to do with one message.  The controller answers with a :class:`Fate`: deliver,
drop, or delay (optionally released from FIFO ordering, which is how message
*reorder* is expressed — the simulated network's per-channel FIFO clamp is
skipped for reordered messages, and the live transport re-dispatches them
after a wall-clock delay while later frames overtake on the TCP stream).

The controller layers three independent mechanisms:

* **Partitions** — disjoint groups of node names; a message crossing groups
  is dropped.  Names not in any group are unaffected, so a scenario can
  partition servers while leaving clients connected to both sides, or place
  client names into groups explicitly.
* **Crash isolation** — names marked dead (``isolate``) send and receive
  nothing.  The chaos engine isolates a node for its crash window so that
  in-flight handler output from a "killed" simulated node does not leak onto
  the network after the kill instant.
* **Rules** — probabilistic drop/delay predicates over (src, dst, kind).

The controller owns its own RNG so probabilistic faults never perturb the
simulation's workload/jitter random streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set

__all__ = ["Fate", "FaultController"]


@dataclass(frozen=True)
class Fate:
    """The controller's verdict for one message."""

    drop: bool = False
    extra_delay_ms: float = 0.0
    reorder: bool = False


#: Shared "deliver normally" verdict (the overwhelmingly common answer).
DELIVER = Fate()


@dataclass
class _Rule:
    """One drop or delay predicate over (src, dst, kind)."""

    src: Optional[str] = None
    dst: Optional[str] = None
    kinds: Optional[FrozenSet[str]] = None
    probability: float = 1.0
    extra_ms: float = 0.0
    jitter_ms: float = 0.0
    reorder: bool = False
    drop: bool = False

    def matches(self, src: str, dst: str, kind: str, rng: random.Random) -> bool:
        if self.src is not None and src != self.src:
            return False
        if self.dst is not None and dst != self.dst:
            return False
        if self.kinds is not None and kind not in self.kinds:
            return False
        if self.probability >= 1.0:
            return True
        return rng.random() < self.probability


class FaultController:
    """Mutable fault state consulted by both transports at send time."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        self._groups: List[Set[str]] = []
        self._dead: Set[str] = set()
        self._rules: List[_Rule] = []
        #: Messages dropped (partition, isolation, or drop rule).
        self.dropped = 0
        #: Messages delayed by a delay rule.
        self.delayed = 0

    # ------------------------------------------------------------------ #
    # Partitions and crash isolation
    # ------------------------------------------------------------------ #
    def partition(self, *groups: Sequence[str]) -> None:
        """Split the network: messages between different groups are dropped.

        Names absent from every group communicate freely with everyone.
        """
        self._groups = [set(group) for group in groups]

    def heal(self) -> None:
        """Remove every partition (crash isolation is separate)."""
        self._groups = []

    def isolate(self, name: str) -> None:
        """Cut ``name`` off entirely (both directions) — a crashed node."""
        self._dead.add(name)

    def restore(self, name: str) -> None:
        """Reconnect a previously isolated name — the node restarted."""
        self._dead.discard(name)

    # ------------------------------------------------------------------ #
    # Probabilistic rules
    # ------------------------------------------------------------------ #
    def drop_matching(self, src: Optional[str] = None, dst: Optional[str] = None,
                      kinds: Optional[Sequence[str]] = None,
                      probability: float = 1.0) -> None:
        """Drop messages matching the predicate with ``probability``."""
        self._rules.append(_Rule(
            src=src, dst=dst, kinds=frozenset(kinds) if kinds else None,
            probability=probability, drop=True))

    def delay_matching(self, extra_ms: float, src: Optional[str] = None,
                       dst: Optional[str] = None,
                       kinds: Optional[Sequence[str]] = None,
                       jitter_ms: float = 0.0, reorder: bool = True,
                       probability: float = 1.0) -> None:
        """Add ``extra_ms`` (+ uniform jitter) to matching messages.

        ``reorder=True`` additionally releases the delayed message from
        per-channel FIFO ordering, so later messages may overtake it.
        """
        self._rules.append(_Rule(
            src=src, dst=dst, kinds=frozenset(kinds) if kinds else None,
            probability=probability, extra_ms=extra_ms, jitter_ms=jitter_ms,
            reorder=reorder))

    def clear_rules(self) -> None:
        """Drop all probabilistic rules (partitions/isolation unaffected)."""
        self._rules = []

    # ------------------------------------------------------------------ #
    @property
    def active(self) -> bool:
        return bool(self._groups or self._dead or self._rules)

    def counters(self) -> Dict[str, int]:
        return {"dropped": self.dropped, "delayed": self.delayed}

    def gauges(self) -> Dict[str, int]:
        """Currently installed fault state (for the metrics registry)."""
        return {
            "partitions": len(self._groups),
            "isolated": len(self._dead),
            "rules": len(self._rules),
        }

    def fate(self, src: str, dst: str, kind: str) -> Fate:
        """Decide what happens to one message from ``src`` to ``dst``."""
        if src in self._dead or dst in self._dead or self._partitioned(src, dst):
            self.dropped += 1
            return Fate(drop=True)
        extra = 0.0
        reorder = False
        for rule in self._rules:
            if not rule.matches(src, dst, kind, self._rng):
                continue
            if rule.drop:
                self.dropped += 1
                return Fate(drop=True)
            extra += rule.extra_ms
            if rule.jitter_ms > 0:
                extra += self._rng.uniform(0, rule.jitter_ms)
            reorder = reorder or rule.reorder
        if extra > 0 or reorder:
            self.delayed += 1
            return Fate(extra_delay_ms=extra, reorder=reorder)
        return DELIVER

    def _partitioned(self, src: str, dst: str) -> bool:
        if not self._groups:
            return False
        src_group = dst_group = None
        for index, group in enumerate(self._groups):
            if src in group:
                src_group = index
            if dst in group:
                dst_group = index
        return (src_group is not None and dst_group is not None
                and src_group != dst_group)
