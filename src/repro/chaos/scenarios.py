"""The named scenario catalog (``python -m repro chaos --list``).

Each scenario runs unchanged on both backends (``--backend sim|live|both``)
and is expected to come back :attr:`~repro.chaos.engine.ChaosReport.ok`:
either its faults are within spec (``expect_clean``) and the checker stays
fully satisfied, or any violation the faults provoke falls inside the
scenario's fault windows and every crashed node recovers its exact pre-crash
durable state.
"""

from __future__ import annotations

from typing import Dict, List

from repro.chaos.scenario import FaultEvent, Scenario

__all__ = ["all_scenarios", "get_scenario", "scenario_names"]


def _catalog() -> List[Scenario]:
    return [
        Scenario(
            name="replica-crash-restart",
            protocol="gryff-rsc",
            description="Kill -9 one Gryff replica mid-load, restart it, and "
                        "require its WAL-recovered registers to equal the "
                        "pre-crash durable state.",
            events=[
                FaultEvent(600, "crash", "replica2"),
                FaultEvent(1400, "restart", "replica2"),
            ],
        ),
        Scenario(
            name="leader-crash-failover",
            protocol="spanner-rss",
            description="Kill -9 a Spanner shard leader, let its lease "
                        "expire, and restart it: recovery replays the WAL "
                        "and re-election bumps the lease term (fencing).",
            num_servers=2,
            events=[
                FaultEvent(600, "crash", "shard1"),
                FaultEvent(1200, "restart", "shard1"),
            ],
        ),
        Scenario(
            name="partition-heal",
            protocol="gryff-rsc",
            description="Symmetric partition: one replica isolated from the "
                        "majority and every client, then healed.  Quorums "
                        "stay available on the majority side throughout.",
            events=[
                FaultEvent(500, "partition", args={"groups": [
                    ["replica0", "replica1", "@clients"], ["replica2"]]}),
                FaultEvent(1300, "heal"),
            ],
        ),
        Scenario(
            name="drop-reorder-burst",
            protocol="gryff-rsc",
            description="A lossy, reordering network burst: every message "
                        "dropped with p=0.25 and half the survivors delayed "
                        "out of FIFO order, then the rules are cleared.",
            events=[
                FaultEvent(400, "drop", args={"probability": 0.25}),
                FaultEvent(400, "delay", args={"extra_ms": 25.0,
                                               "jitter_ms": 10.0,
                                               "reorder": True,
                                               "probability": 0.5}),
                FaultEvent(1400, "clear_rules"),
            ],
        ),
        Scenario(
            name="clock-skew-sweep",
            protocol="spanner-rss",
            description="Sweep one shard leader's clock offset through "
                        "+4ms / -4ms / 0 — inside the ±epsilon=10ms TrueTime "
                        "bound, so the checker must stay fully satisfied.",
            num_servers=2,
            expect_clean=True,
            events=[
                FaultEvent(400, "skew", "shard0", args={"offset_ms": 4.0}),
                FaultEvent(1000, "skew", "shard0", args={"offset_ms": -4.0}),
                FaultEvent(1600, "skew", "shard0", args={"offset_ms": 0.0}),
            ],
        ),
        Scenario(
            name="truetime-epsilon-sweep",
            protocol="spanner-rss",
            description="Sweep the TrueTime uncertainty bound 10 -> 4 -> 20 "
                        "-> 10 ms while clocks stay true: every bound still "
                        "covers the (zero) actual skew, so the checker must "
                        "stay fully satisfied.",
            num_servers=2,
            expect_clean=True,
            events=[
                FaultEvent(400, "epsilon", args={"epsilon_ms": 4.0}),
                FaultEvent(1000, "epsilon", args={"epsilon_ms": 20.0}),
                FaultEvent(1600, "epsilon", args={"epsilon_ms": 10.0,
                                                  "restore": True}),
            ],
        ),
        Scenario(
            name="gryff-smoke",
            protocol="gryff-rsc",
            description="CI smoke: a short kill/restart plus partition/heal "
                        "cycle on 3-replica Gryff-RSC under YCSB.",
            duration_ms=1800,
            events=[
                FaultEvent(300, "crash", "replica1"),
                FaultEvent(900, "restart", "replica1"),
                FaultEvent(1100, "partition", args={"groups": [
                    ["replica0", "replica1", "@clients"], ["replica2"]]}),
                FaultEvent(1500, "heal"),
            ],
        ),
        Scenario(
            name="spanner-smoke",
            protocol="spanner-rss",
            description="CI smoke: a short kill/restart plus partition/heal "
                        "cycle on 2-shard Spanner-RSS under YCSB.",
            num_servers=2,
            duration_ms=1800,
            events=[
                FaultEvent(300, "crash", "shard1"),
                FaultEvent(900, "restart", "shard1"),
                FaultEvent(1100, "partition", args={"groups": [
                    ["shard0", "@clients"], ["shard1"]]}),
                FaultEvent(1500, "heal"),
            ],
        ),
    ]


def all_scenarios() -> Dict[str, Scenario]:
    """Name -> scenario for the whole catalog (fresh objects each call)."""
    return {scenario.name: scenario for scenario in _catalog()}


def scenario_names() -> List[str]:
    return [scenario.name for scenario in _catalog()]


def get_scenario(name: str) -> Scenario:
    scenarios = all_scenarios()
    try:
        return scenarios[name]
    except KeyError:
        known = ", ".join(sorted(scenarios))
        raise KeyError(f"unknown scenario {name!r} (known: {known})") from None
