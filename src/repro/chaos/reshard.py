"""The ``reshard-crash`` chaos scenario: kill the migration controller
mid-copy, recover the placement from its journal, finish the reshard.

The fleet's migration controller journals every phase transition to a
:class:`~repro.storage.wal.WriteAheadLog` precisely so that its death is
survivable.  This scenario exercises the whole claim end to end against a
*live* two-group Gryff fleet:

1. **Phase 1 — crash.**  YCSB load runs against the fleet while a split
   migration starts; the controller kills itself after the first copy
   chunk (``crash_phase="mid_copy"``), i.e. with keys already installed
   on the destination group but the placement not yet flipped.  The load
   keeps running — clients never depend on the controller being alive.
2. **Recovery.**  :func:`~repro.fleet.migration.recover_placement` replays
   the journal: the placement must come back *pre-flip* (single-owner,
   byte-identical to the snapshot in the ``begin`` record) with the
   crashed migration reported as unfinished.
3. **Phase 2 — resume.**  A fresh controller re-runs the same plan to
   completion under renewed load; the copy phase is idempotent (installs
   merge by carstamp), so the half-copied keys are harmless.
4. **Verdict.**  Both phases' traces are merged by timestamp and the full
   offline checker validates RSC across the crash, the recovery, and the
   eventual flip.  This scenario ``expect_clean``: a migration — even a
   crashed one — is not a fault window, and any violation fails the run.

Unlike the catalog scenarios in :mod:`repro.chaos.scenarios` (single-group
timelines judged by :func:`~repro.chaos.engine.run_scenario`), this runner
is self-contained: it builds its own fleet topology and reports through
:class:`ReshardReport`.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["ReshardReport", "run_reshard_crash"]


@dataclass
class ReshardReport:
    """Everything :func:`run_reshard_crash` measured, plus the verdict."""

    scenario: str = "reshard-crash"
    protocol: str = "gryff-rsc"
    model: str = "rsc"
    crash_phase: str = "mid_copy"
    phase1_ops: int = 0
    phase2_ops: int = 0
    crashed: bool = False
    #: Placement recovered from the journal equals the pre-flip snapshot.
    recovered_matches_preflip: bool = False
    recovered_version: int = 0
    unfinished_migration: Optional[str] = None
    #: The resumed migration completed (flip + purge) in phase 2.
    resumed: bool = False
    final_epoch: int = 0
    final_unfinished: Optional[str] = None
    keys_copied: int = 0
    pause_ms: float = 0.0
    #: Offline checker verdict over the merged phase-1 + phase-2 history.
    merged_ops: int = 0
    satisfied: bool = False
    violation: Optional[str] = None
    trace_paths: List[str] = field(default_factory=list)
    journal_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        """The scenario's guarantee: the controller crashed where asked,
        the journal recovered the exact pre-flip placement, the resumed
        migration completed, and the merged history is clean — migrations
        are ``expect_clean``, so there are no excusable violations."""
        return (self.phase1_ops > 0 and self.phase2_ops > 0
                and self.crashed and self.recovered_matches_preflip
                and self.unfinished_migration is not None
                and self.resumed and self.final_unfinished is None
                and self.satisfied)

    def describe(self) -> str:
        lines = [
            f"scenario {self.scenario} [live] protocol={self.protocol} "
            f"model={self.model}: {'OK' if self.ok else 'FAILED'}",
            f"  phase 1: {self.phase1_ops} ops, controller crashed at "
            f"{self.crash_phase}: {self.crashed}",
            f"  recovery: pre-flip placement restored="
            f"{self.recovered_matches_preflip} (version "
            f"{self.recovered_version}, unfinished "
            f"{self.unfinished_migration})",
            f"  phase 2: {self.phase2_ops} ops, resumed migration "
            f"completed={self.resumed} (epoch {self.final_epoch}, "
            f"{self.keys_copied} key(s) copied, pause "
            f"{self.pause_ms:.1f} ms)",
            f"  merged check: {self.merged_ops} ops — "
            + ("SATISFIED" if self.satisfied
               else f"VIOLATED ({self.violation})"),
        ]
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "backend": "live",
            "protocol": self.protocol,
            "model": self.model,
            "ok": self.ok,
            "crash_phase": self.crash_phase,
            "phase1_ops": self.phase1_ops,
            "phase2_ops": self.phase2_ops,
            "crashed": self.crashed,
            "recovered_matches_preflip": self.recovered_matches_preflip,
            "recovered_version": self.recovered_version,
            "unfinished_migration": self.unfinished_migration,
            "resumed": self.resumed,
            "final_epoch": self.final_epoch,
            "final_unfinished": self.final_unfinished,
            "keys_copied": self.keys_copied,
            "pause_ms": self.pause_ms,
            "merged_ops": self.merged_ops,
            "satisfied": self.satisfied,
            "violation": self.violation,
            "traces": list(self.trace_paths),
            "journal": self.journal_path,
        }


async def _run_async(trace_dir: str, *, seed: int,
                     duration_ms: float) -> ReshardReport:
    from repro.fleet import FleetSpec, MigrationPlan, recover_placement
    from repro.net.cluster import LiveProcess
    from repro.net.load import run_load

    report = ReshardReport()
    fleet = FleetSpec.build(protocol=report.protocol, num_groups=2,
                            base_port=0, placement_seed=3)
    initial = fleet.placement.copy()
    plan = MigrationPlan.parse("500:split:0.5:g1")
    journal = os.path.join(trace_dir, "reshard.journal")
    trace1 = os.path.join(trace_dir, "reshard-phase1.jsonl")
    trace2 = os.path.join(trace_dir, "reshard-phase2.jsonl")
    report.journal_path = journal
    report.trace_paths = [trace1, trace2]

    server = LiveProcess(fleet.merged_spec(),
                         node_configs=fleet.node_configs())
    await server.start()
    try:
        summary1 = await run_load(
            fleet, num_clients=3, duration_ms=duration_ms, seed=seed,
            trace_path=trace1, client_prefix="reshard1",
            migrations=[plan], migration_journal=journal,
            migration_crash_phase=report.crash_phase)
        report.phase1_ops = summary1["ops"]
        report.crashed = bool(summary1["migration"]["crashed"])

        placement, unfinished = recover_placement(journal, initial)
        report.recovered_version = placement.version
        report.unfinished_migration = unfinished
        report.recovered_matches_preflip = (
            placement.to_dict() == initial.to_dict())

        # Resume from the recovered placement: a fresh controller re-runs
        # the same plan (the copy is idempotent) while new load arrives.
        fleet.placement = placement
        summary2 = await run_load(
            fleet, num_clients=3, duration_ms=duration_ms, seed=seed + 1,
            trace_path=trace2, client_prefix="reshard2",
            migrations=[MigrationPlan(at_ms=300.0, kind=plan.kind,
                                      frac_lo=plan.frac_lo,
                                      frac_hi=plan.frac_hi, dst=plan.dst)],
            migration_journal=journal)
        report.phase2_ops = summary2["ops"]
        migrations = summary2["migration"]["migrations"]
        if migrations and not summary2["migration"]["crashed"]:
            report.resumed = True
            report.keys_copied = migrations[0]["keys_copied"]
            report.pause_ms = migrations[0]["pause_ms"]
    finally:
        await server.stop()

    final_placement, final_unfinished = recover_placement(journal, initial)
    report.final_epoch = final_placement.version
    report.final_unfinished = final_unfinished
    return report


def _check_merged(report: ReshardReport) -> None:
    from repro.net.check import check_trace
    from repro.net.recorder import read_merged_traces

    _meta, history = read_merged_traces(report.trace_paths)
    report.merged_ops = len(history)
    result = check_trace(history, report.protocol, report.model)
    report.satisfied = bool(result)
    report.violation = None if result else result.reason


def run_reshard_crash(trace_dir: Optional[str] = None, *, seed: int = 13,
                      duration_ms: float = 1800.0) -> ReshardReport:
    """Run the scenario; see the module docstring.  ``trace_dir`` receives
    the two phase traces and the migration journal (a temp dir when
    ``None``)."""
    if trace_dir is None:
        trace_dir = tempfile.mkdtemp(prefix="repro-reshard-")
    else:
        os.makedirs(trace_dir, exist_ok=True)
    report = asyncio.run(_run_async(trace_dir, seed=seed,
                                    duration_ms=duration_ms))
    _check_merged(report)
    return report
